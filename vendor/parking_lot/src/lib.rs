//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset it uses: a [`Mutex`] whose `lock()` returns the guard
//! directly (no poisoning in the API). Backed by `std::sync::Mutex`;
//! poisoned locks are transparently recovered, matching parking_lot's
//! poison-free semantics.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// Guard released on drop; derefs to the protected value.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
