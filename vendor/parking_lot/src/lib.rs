//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset it uses: a [`Mutex`] and an [`RwLock`] whose `lock()` /
//! `read()` / `write()` return the guard directly (no poisoning in the
//! API). Backed by the `std::sync` primitives; poisoned locks are
//! transparently recovered, matching parking_lot's poison-free semantics.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// Guard released on drop; derefs to the protected value.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without lock poisoning: any number of concurrent
/// readers, or one writer.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

/// Shared-access guard released on drop; derefs to the protected value.
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;

/// Exclusive-access guard released on drop; derefs mutably.
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires shared read access, blocking while a writer holds the
    /// lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until all other guards
    /// are released.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (7, 7)); // concurrent readers coexist
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *l.write() += 1;
                    let _ = *l.read();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 4000);
    }
}
