//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of criterion's API the micro-benchmarks use:
//! [`black_box`], [`Criterion::bench_function`], [`Bencher::iter`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: after a short calibration, each benchmark runs
//! several timed samples and reports the **median ns/iteration** (medians
//! resist scheduler noise better than means). Environment knobs:
//!
//! * `CRITERION_SAMPLE_MS` — target milliseconds per sample (default 20);
//! * `CRITERION_SAMPLES` — samples per benchmark (default 7);
//! * `CRITERION_JSON` — if set, writes `{"results": [{name, ns_per_iter,
//!   iters_per_sec}]}` to the given path on exit (used by the repo's
//!   `BENCH_micro.json` tracking);
//! * a positional CLI argument filters benchmarks by substring, matching
//!   `cargo bench -- <filter>`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// An opaque identity function preventing the optimizer from deleting a
/// computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch-size hint for [`Bencher::iter_batched`], mirroring real
/// criterion's enum. The shim times each call individually, so the hint
/// only exists for call compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are small; criterion would batch many per allocation.
    SmallInput,
    /// Inputs are large; criterion would batch few.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// One benchmark's timing context.
pub struct Bencher {
    sample_target: Duration,
    samples: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    measured_ns: f64,
}

impl Bencher {
    fn new(sample_target: Duration, samples: usize) -> Self {
        Bencher {
            sample_target,
            samples,
            measured_ns: f64::NAN,
        }
    }

    /// Times `routine` against fresh inputs produced by `setup`, with
    /// both the setup cost and the **drop of the routine's output**
    /// excluded from the measurement (matching real criterion's
    /// `iter_batched` semantics; the batch-size hint is accepted for
    /// call compatibility and ignored).
    ///
    /// Used by benchmarks whose routine consumes or mutates its input —
    /// e.g. splicing a batch into a cloned version chain — where timing
    /// `clone + routine + teardown` would dilute the comparison being
    /// made. Routines should return any bulky state they want dropped
    /// off the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut timed = |iters: u64| {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                let out = black_box(routine(input));
                elapsed += start.elapsed();
                drop(out); // off the clock
            }
            elapsed
        };

        // Calibrate the per-call cost (setup excluded) to size a sample.
        let mut iters: u64 = 1;
        loop {
            let elapsed = timed(iters);
            if elapsed >= self.sample_target / 4 || iters >= 1 << 40 {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let target = self.sample_target.as_secs_f64();
                iters = ((target / per_iter.max(1e-12)) as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(8);
        }

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            samples_ns.push(timed(iters).as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.measured_ns = samples_ns[samples_ns.len() / 2];
    }

    /// Times `routine`, storing the median ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count filling ~one sample window.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_target / 4 || iters >= 1 << 40 {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let target = self.sample_target.as_secs_f64();
                iters = ((target / per_iter.max(1e-12)) as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(8);
        }

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.measured_ns = samples_ns[samples_ns.len() / 2];
    }
}

/// One finished benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_target: Duration,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20u64);
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(7usize)
            .max(1);
        Criterion {
            filter: None,
            sample_target: Duration::from_millis(sample_ms),
            samples,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (cargo-bench style:
    /// flags are ignored, a positional argument is a name filter).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        c
    }

    /// Runs one benchmark (skipped unless it matches the filter).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher::new(self.sample_target, self.samples);
        f(&mut b);
        let ns = b.measured_ns;
        if ns.is_nan() {
            println!("{name:<40} (no measurement: routine never called iter)");
            return self;
        }
        let per_sec = 1e9 / ns.max(1e-9);
        println!("{name:<40} {ns:>14.1} ns/iter {per_sec:>16.0} iter/s");
        self.results.push(BenchResult {
            name: name.to_string(),
            ns_per_iter: ns,
        });
        self
    }

    /// Finishes the run: writes the JSON report when `CRITERION_JSON`
    /// is set.
    pub fn finish(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let mut out = String::from("{\n  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_iter\": {:.2}, \"iters_per_sec\": {:.0}}}{}\n",
                r.name,
                r.ns_per_iter,
                1e9 / r.ns_per_iter.max(1e-9),
                sep
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion: failed to write {path}: {e}");
        }
    }

    /// Completed results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Groups benchmark target functions under one entry function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Expands to `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::remove_var("CRITERION_JSON");
        let mut c = Criterion {
            filter: None,
            sample_target: Duration::from_micros(200),
            samples: 3,
            results: Vec::new(),
        };
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].ns_per_iter > 0.0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            sample_target: Duration::from_micros(100),
            samples: 1,
            results: Vec::new(),
        };
        c.bench_function("other", |b| b.iter(|| 1u64));
        assert!(c.results().is_empty());
    }
}
