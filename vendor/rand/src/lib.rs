//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of `rand`'s API the code base uses: [`rngs::SmallRng`]
//! (a xoshiro256++ generator), [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen`] over the common scalar types, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic for a given
//! seed, which is all the simulator and tests rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Sources of randomness: a 64-bit output stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<G: RngCore>(rng: &mut G) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<G: RngCore>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<G: RngCore>(rng: &mut G) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`], generic over the element type
/// so integer literals infer from the call site like upstream `rand`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

#[inline]
fn uniform_below<G: RngCore>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift (Lemire) without the rejection step: the tiny bias is
    // irrelevant for simulation workloads and keeps sampling branch-free.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
sample_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn full_coverage_of_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
