//! Vendored minimal stand-in for the `crossbeam-channel` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset it uses: [`unbounded`] MPMC channels whose [`Sender`] and
//! [`Receiver`] are both `Clone + Send + Sync` (unlike `std::sync::mpsc`,
//! whose sender cannot be shared behind an `Arc` across threads), with
//! blocking [`Receiver::recv`] and [`Receiver::recv_timeout`].
//!
//! Built on a mutex + condvar; throughput is adequate for the in-process
//! cluster runtime this repo drives with it.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half; cloneable and shareable across threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable and shareable across threads.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned when sending into a channel with no receivers left.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

impl<T> Sender<T> {
    /// Enqueues a message, failing if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders += 1;
        drop(inner);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .ready
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .ready
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Non-blocking receive attempt.
    pub fn try_recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.queue.pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers += 1;
        drop(inner);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u32>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Disconnected);
    }

    #[test]
    fn senders_shared_across_threads() {
        let (tx, rx) = unbounded();
        let tx = StdArc::new(tx);
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let tx = StdArc::clone(&tx);
            handles.push(std::thread::spawn(move || tx.send(i).unwrap()));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }
}
