//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest's API its property tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, range / tuple / `any` /
//! collection / option strategies, [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its generated inputs via
//!   the panic message (`Debug`-formatted by the assertion), but is not
//!   minimized;
//! * **deterministic** — each test runs a fixed number of cases (default
//!   256, override with `PROPTEST_CASES`) from a seed derived from the
//!   test's name, so failures reproduce exactly.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The deterministic RNG driving every strategy.
pub mod test_runner {
    /// SplitMix64-based generator; deliberately tiny.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for one test case, mixing the test's name hash
        /// with the case index so every case sees a fresh stream.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `bound` (which must be non-zero).
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Per-file configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Cases each property runs.
        pub cases: u64,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u64) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Number of cases each property runs: the `PROPTEST_CASES`
    /// environment variable wins over `configured`.
    pub fn cases_with(configured: u64) -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(configured)
    }

    /// Number of cases with the default configuration.
    pub fn cases() -> u64 {
        cases_with(ProptestConfig::default().cases)
    }
}

/// Strategies: generators of arbitrary values.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Strategy for any value of a type ([`crate::arbitrary::any`]).
    pub struct AnyStrategy<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` and the types it supports.
pub mod arbitrary {
    use super::strategy::AnyStrategy;
    use super::test_runner::TestRng;

    /// Types with a full-range generator.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// A strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A size specification: fixed or ranged.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<T>`: ~25% `None`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy to also produce `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs many generated cases.
///
/// The attribute list is captured wholesale (it includes the `#[test]`
/// the caller writes) and re-emitted on the expanded zero-argument test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases_with(($cfg).cases);
                for case in 0..cases {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    { $body }
                }
            }
        )*
    };
    ($( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    { $body }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

// `Range` is re-exported so macro expansions referencing strategies keep
// working without extra imports in user code.
#[doc(hidden)]
pub type __Range<T> = Range<T>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u64..10, v in crate::collection::vec(0u8..4, 1..9)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_and_map(pair in (0u32..3, 0u32..3).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(pair <= 22);
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![0u64..1, 10u64..11]) {
            prop_assert!(x == 0u64 || x == 10u64);
        }

        #[test]
        fn option_of_mixes(o in crate::option::of(1u8..2)) {
            prop_assert!(o.is_none() || o == Some(1));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
