//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of the `bytes` API it actually uses:
//! [`Bytes`] (a cheaply-cloneable immutable byte buffer) and [`BytesMut`]
//! (a growable buffer that freezes into `Bytes`). Semantics match the
//! upstream crate for this subset; swap in the real dependency by removing
//! the `[patch]`-free path dependency once a registry is reachable.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
///
/// Static slices are stored without allocation; owned data is shared via
/// an `Arc`, so `clone` is a reference-count bump in both cases.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer.
    #[inline]
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a static slice without copying.
    #[inline]
    pub const fn from_static(slice: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(slice),
        }
    }

    /// Copies a slice into a new shared buffer.
    #[inline]
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(slice)),
        }
    }

    /// The buffer contents.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    /// Number of bytes in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    #[inline]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    #[inline]
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    #[inline]
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    #[inline]
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    #[inline]
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[inline]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    #[inline]
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`] without copying.
    #[inline]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_shared_compare_equal() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn bytes_mut_freezes() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"ab");
        m.extend_from_slice(b"cd");
        assert_eq!(m.len(), 4);
        assert_eq!(m.freeze(), Bytes::from_static(b"abcd"));
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\n");
        assert_eq!(format!("{b:?}"), "b\"a\\n\"");
    }
}
