//! **Wren** — a complete Rust reproduction of *"Wren: Nonblocking Reads in
//! a Partitioned Transactional Causally Consistent Data Store"*
//! (Spirovska, Didona, Zwaenepoel — DSN 2018).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `wren-core` | CANToR transactions, BDT, BiST (the paper's contribution) |
//! | [`cure`] | `wren-cure` | the Cure and H-Cure baselines |
//! | [`protocol`] | `wren-protocol` | data model, messages, binary codec, framing |
//! | [`net`] | `wren-net` | TCP transport primitives: handshake, outboxes, framed reads |
//! | [`clock`] | `wren-clock` | hybrid logical clocks, version vectors |
//! | [`storage`] | `wren-storage` | multi-version chains with GC |
//! | [`sim`] | `wren-sim` | deterministic discrete-event simulator |
//! | [`rt`] | `wren-rt` | threaded cluster with a blocking `Session` API |
//! | [`workload`] | `wren-workload` | YCSB-style zipfian transaction mixes |
//! | [`harness`] | `wren-harness` | experiment runner behind every figure |
//!
//! # Quickstart
//!
//! Run the examples:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example photo_album
//! cargo run --release --example social_graph
//! cargo run --release --example geo_visibility
//! cargo run --release --example blocking_anatomy
//! cargo run --release --example parallel_reads
//! cargo run --release --example tcp_cluster
//! ```
//!
//! Reproduce the paper's figures:
//!
//! ```bash
//! cargo bench --workspace            # quick sweep
//! WREN_FULL=1 cargo bench --workspace  # paper-scale sweep
//! ```

#![forbid(unsafe_code)]

pub use wren_clock as clock;
pub use wren_core as core;
pub use wren_cure as cure;
pub use wren_harness as harness;
pub use wren_net as net;
pub use wren_protocol as protocol;
pub use wren_rt as rt;
pub use wren_sim as sim;
pub use wren_storage as storage;
pub use wren_workload as workload;
