//! The photo-album anomaly (the paper's §II-C causal-snapshot example,
//! originally from COPS): Alice removes Bob from her album's access list
//! and *then* adds a private photo. Under causal consistency Bob must
//! never observe the new photo together with the old permissive ACL.
//!
//! This example hammers the scenario across many rounds on a live
//! threaded cluster and asserts the anomaly never materializes.
//!
//! ```bash
//! cargo run --release --example photo_album
//! ```

use bytes::Bytes;
use std::time::Duration;
use wren_protocol::Key;
use wren_rt::ClusterBuilder;

const ACL: Key = Key(100); // "friends" | "private"
const PHOTO: Key = Key(201); // album content

fn main() {
    let cluster = ClusterBuilder::new()
        .dcs(1)
        .partitions(4)
        .gossip_tick(Duration::from_millis(2))
        .build();

    let mut alice = cluster.session(0);
    let mut bob = cluster.session(0);

    // Initial state: album is visible to friends, photo not yet posted.
    alice.begin().expect("begin");
    alice.write(ACL, Bytes::from_static(b"friends"));
    alice.commit().expect("commit");

    let rounds = 200;
    let mut bob_saw_photo = 0;
    for round in 0..rounds {
        // Alice: first restrict the ACL, then post the photo — two causally
        // ordered transactions.
        alice.begin().expect("begin");
        alice.write(ACL, Bytes::from_static(b"private"));
        alice.commit().expect("commit");

        alice.begin().expect("begin");
        alice.write(PHOTO, Bytes::from_static(b"embarrassing.jpg"));
        alice.commit().expect("commit");

        // Bob reads photo and ACL in ONE transaction: a causal snapshot
        // may be stale, but if it contains the photo it MUST contain the
        // ACL write that causally preceded it.
        bob.begin().expect("begin");
        let vals = bob.read(&[PHOTO, ACL]).expect("read");
        bob.commit().expect("commit");

        let photo = &vals[0].1;
        let acl = &vals[1].1;
        if photo.as_deref() == Some(b"embarrassing.jpg".as_slice()) {
            bob_saw_photo += 1;
            assert_eq!(
                acl.as_deref(),
                Some(b"private".as_slice()),
                "ANOMALY at round {round}: Bob sees the photo with the old ACL!"
            );
        }

        // Reset for the next round.
        alice.begin().expect("begin");
        alice.write(ACL, Bytes::from_static(b"friends"));
        alice.write(PHOTO, Bytes::from_static(b"none"));
        alice.commit().expect("commit");
        std::thread::sleep(Duration::from_millis(2));
    }

    println!(
        "ran {rounds} rounds; Bob observed the photo {bob_saw_photo} times, \
         never with the stale ACL — causal snapshots hold."
    );
    cluster.shutdown();
}
