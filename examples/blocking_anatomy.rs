//! The anatomy of a blocked read (the paper's Fig. 1): replays the exact
//! scenario of §III-A against both protocols' state machines, step by
//! step, printing what each server does.
//!
//! Client c2 commits a transaction T2 writing x and y; before the commit
//! is applied, client c1's transaction T1 tries to read x and y.
//! * Under **Cure**, c1's snapshot (the coordinator's current clock) may
//!   cover T2's in-flight commit, so the read must WAIT.
//! * Under **Wren**, c1's snapshot is the local stable snapshot, already
//!   installed everywhere — the read returns immediately (with slightly
//!   older versions).
//!
//! ```bash
//! cargo run --release --example blocking_anatomy
//! ```

use bytes::Bytes;
use wren_clock::SkewedClock;
use wren_core::{WrenClient, WrenConfig, WrenServer};
use wren_cure::{CureClient, CureConfig, CureServer};
use wren_protocol::{ClientId, Dest, Key, Outgoing, ServerId};

fn key_on_partition(p: u16, n: u16) -> Key {
    (0..).map(Key).find(|k| k.partition(n).0 == p).unwrap()
}

fn main() {
    let n = 2u16;
    let x = key_on_partition(0, n); // partition p_x
    let y = key_on_partition(1, n); // partition p_y
    println!("two partitions; x lives on p0, y on p1\n");

    cure_scenario(x, y, n);
    println!();
    wren_scenario(x, y, n);
}

/// Drives the Cure state machines manually, showing the read parking.
fn cure_scenario(x: Key, y: Key, n: u16) {
    println!("--- Cure (Fig. 1a): the read blocks ---");
    let cfg = CureConfig::cure(1, n);
    let mut servers: Vec<CureServer> = (0..n)
        .map(|p| CureServer::new(ServerId::new(0, p), cfg, SkewedClock::perfect()))
        .collect();
    let coord = ServerId::new(0, 0);
    let mut c2 = CureClient::new(ClientId(2), coord, 1);
    let mut c1 = CureClient::new(ClientId(1), coord, 1);
    let mut inbox: Vec<(ClientId, wren_protocol::CureMsg)> = Vec::new();
    let mut now = 1_000u64;

    let route = |servers: &mut Vec<CureServer>,
                     from: Dest,
                     to: ServerId,
                     msg: wren_protocol::CureMsg,
                     now: u64,
                     inbox: &mut Vec<(ClientId, wren_protocol::CureMsg)>| {
        let mut queue = vec![(from, to, msg)];
        while let Some((from, to, msg)) = queue.pop() {
            let mut out = Vec::new();
            servers[to.partition.index()].handle(from, msg, now, &mut out);
            for Outgoing { to: dest, msg } in out {
                match dest {
                    Dest::Server(s) => queue.push((Dest::Server(to), s, msg)),
                    Dest::Client(c) => inbox.push((c, msg)),
                }
            }
        }
    };

    // T2 commits x and y but the commit is NOT yet applied anywhere.
    route(&mut servers, Dest::Client(c2.id()), coord, c2.start(), now, &mut inbox);
    c2.on_start_resp(inbox.pop().unwrap().1);
    c2.write([(x, Bytes::from_static(b"X2")), (y, Bytes::from_static(b"Y2"))]);
    now += 10;
    route(&mut servers, Dest::Client(c2.id()), coord, c2.commit(), now, &mut inbox);
    c2.on_commit_resp(inbox.pop().unwrap().1);
    println!("t={now}µs  c2 committed T2 (writes X2, Y2); commit not yet applied");

    // T1 starts: its snapshot takes the coordinator's CURRENT clock.
    now += 10;
    route(&mut servers, Dest::Client(c1.id()), coord, c1.start(), now, &mut inbox);
    c1.on_start_resp(inbox.pop().unwrap().1);
    let read = c1.read(&[x, y]).request.unwrap();
    now += 10;
    route(&mut servers, Dest::Client(c1.id()), coord, read, now, &mut inbox);
    println!(
        "t={now}µs  c1's T1 reads x,y → p0 pending reads: {}, p1 pending reads: {}",
        servers[0].pending_reads(),
        servers[1].pending_reads()
    );
    assert!(
        servers[0].pending_reads() + servers[1].pending_reads() > 0,
        "expected at least one parked read"
    );
    assert!(inbox.is_empty(), "no response can arrive while parked");

    // Only after the apply tick does the read unblock.
    now += 2_000;
    for p in 0..n as usize {
        let mut out = Vec::new();
        servers[p].on_replication_tick(now, &mut out);
        for Outgoing { to: dest, msg } in out {
            match dest {
                Dest::Server(s) => {
                    let mut out2 = Vec::new();
                    let from = servers[p].id();
                    servers[s.partition.index()].handle(Dest::Server(from), msg, now, &mut out2);
                    for Outgoing { to: d2, msg } in out2 {
                        if let Dest::Client(c) = d2 {
                            inbox.push((c, msg));
                        }
                    }
                }
                Dest::Client(c) => inbox.push((c, msg)),
            }
        }
    }
    let resp = inbox.pop().expect("read finally answered").1;
    let vals = c1.on_read_resp(resp);
    println!(
        "t={now}µs  apply tick ran → read unblocks after ~2ms, returns {:?}",
        vals.iter()
            .map(|(_, v)| v.as_ref().map(|b| String::from_utf8_lossy(b).into_owned()))
            .collect::<Vec<_>>()
    );
    let blocked: Vec<_> = (0..n as usize)
        .flat_map(|p| servers[p].blocked_samples().to_vec())
        .collect();
    println!("          blocked for: {:?} µs", blocked.iter().map(|(_, d)| d).collect::<Vec<_>>());
}

/// The same scenario against Wren: the read completes instantly.
fn wren_scenario(x: Key, y: Key, n: u16) {
    println!("--- Wren (Fig. 1b): the read never blocks ---");
    let cfg = WrenConfig::new(1, n);
    let mut servers: Vec<WrenServer> = (0..n)
        .map(|p| WrenServer::new(ServerId::new(0, p), cfg, SkewedClock::perfect()))
        .collect();
    let coord = ServerId::new(0, 0);
    let mut c2 = WrenClient::new(ClientId(2), coord);
    let mut c1 = WrenClient::new(ClientId(1), coord);
    let mut inbox: Vec<(ClientId, wren_protocol::WrenMsg)> = Vec::new();
    let mut now = 1_000u64;

    let route = |servers: &mut Vec<WrenServer>,
                     from: Dest,
                     to: ServerId,
                     msg: wren_protocol::WrenMsg,
                     now: u64,
                     inbox: &mut Vec<(ClientId, wren_protocol::WrenMsg)>| {
        let mut queue = vec![(from, to, msg)];
        while let Some((from, to, msg)) = queue.pop() {
            let mut out = Vec::new();
            servers[to.partition.index()].handle(from, msg, now, &mut out);
            for Outgoing { to: dest, msg } in out {
                match dest {
                    Dest::Server(s) => queue.push((Dest::Server(to), s, msg)),
                    Dest::Client(c) => inbox.push((c, msg)),
                }
            }
        }
    };

    route(&mut servers, Dest::Client(c2.id()), coord, c2.start(), now, &mut inbox);
    c2.on_start_resp(inbox.pop().unwrap().1);
    c2.write([(x, Bytes::from_static(b"X2")), (y, Bytes::from_static(b"Y2"))]);
    now += 10;
    route(&mut servers, Dest::Client(c2.id()), coord, c2.commit(), now, &mut inbox);
    c2.on_commit_resp(inbox.pop().unwrap().1);
    println!("t={now}µs  c2 committed T2 (writes X2, Y2); commit not yet applied");

    now += 10;
    route(&mut servers, Dest::Client(c1.id()), coord, c1.start(), now, &mut inbox);
    c1.on_start_resp(inbox.pop().unwrap().1);
    let read = c1.read(&[x, y]).request.unwrap();
    now += 10;
    route(&mut servers, Dest::Client(c1.id()), coord, read, now, &mut inbox);
    let resp = inbox.pop().expect("Wren answers immediately").1;
    let vals = c1.on_read_resp(resp);
    println!(
        "t={now}µs  read returns IMMEDIATELY with the stable snapshot: {:?}",
        vals.iter()
            .map(|(_, v)| v.as_ref().map(|b| String::from_utf8_lossy(b).into_owned()))
            .collect::<Vec<_>>()
    );
    println!(
        "          (older versions — here the keys are still unwritten in the stable \
         snapshot — in exchange for zero blocking; c2 itself would read X2/Y2 from its cache)"
    );
}
