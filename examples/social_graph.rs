//! Symmetric-friendship invariant (the paper's §II-C atomicity example):
//! when A befriends B, both edge records are written in ONE transaction,
//! so no snapshot ever shows a one-sided friendship.
//!
//! Several writer sessions concurrently add and remove friendships while
//! reader sessions continuously check symmetry.
//!
//! ```bash
//! cargo run --release --example social_graph
//! ```

use bytes::Bytes;
use std::time::Duration;
use wren_protocol::Key;
use wren_rt::ClusterBuilder;

/// Edge key for "x is a friend of y".
fn edge(x: u64, y: u64) -> Key {
    Key(1_000 + x * 100 + y)
}

const YES: &[u8] = b"friend";
const NO: &[u8] = b"none";

fn main() {
    let cluster = ClusterBuilder::new().dcs(1).partitions(4).build();
    let users: Vec<u64> = (0..4).collect();

    // Initialize all edges to "none".
    let mut init = cluster.session(0);
    init.begin().expect("begin");
    for &a in &users {
        for &b in &users {
            if a != b {
                init.write(edge(a, b), Bytes::from_static(NO));
            }
        }
    }
    init.commit().expect("commit");

    let mut writer = cluster.session(0);
    let mut reader = cluster.session(0);
    let mut checks = 0u64;
    let mut flips = 0u64;

    for round in 0..150 {
        // Flip one friendship atomically: BOTH directions in one tx.
        let a = users[round % users.len()];
        let b = users[(round + 1) % users.len()];
        let state = if round % 2 == 0 { YES } else { NO };
        writer.begin().expect("begin");
        writer.write(edge(a, b), Bytes::copy_from_slice(state));
        writer.write(edge(b, a), Bytes::copy_from_slice(state));
        writer.commit().expect("commit");
        flips += 1;

        // Reader checks EVERY pair for symmetry within one causal snapshot.
        reader.begin().expect("begin");
        for &x in &users {
            for &y in &users {
                if x < y {
                    let vals = reader.read(&[edge(x, y), edge(y, x)]).expect("read");
                    let fwd = vals[0].1.clone();
                    let back = vals[1].1.clone();
                    assert_eq!(
                        fwd, back,
                        "asymmetric friendship {x}<->{y} observed at round {round}"
                    );
                    checks += 1;
                }
            }
        }
        reader.commit().expect("commit");
        std::thread::sleep(Duration::from_millis(1));
    }

    println!(
        "performed {flips} atomic friendship flips and {checks} symmetry checks — \
         no snapshot ever showed a one-sided edge."
    );
    cluster.shutdown();
}
