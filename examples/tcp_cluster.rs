//! TCP cluster walkthrough: the Wren engines behind real sockets.
//!
//! What this demo does, step by step:
//!
//! 1. **Build a TCP-mode cluster** (`ClusterBuilder::new().tcp()`): one
//!    `TcpListener` per partition on 127.0.0.1, all served by a fixed
//!    pool of epoll reactor threads (default 2 — thread count does not
//!    grow with connections), and every protocol hop —
//!    client↔coordinator, read slices, 2PC, replication, gossip —
//!    encoded, length-prefix framed, written to a socket, read back and
//!    decoded. The partition engines (writer thread + read-worker pool)
//!    are byte-for-byte the ones the channel transport drives.
//! 2. **Join by address only** (`Session::connect_tcp`): a session is
//!    built from nothing but the listener addresses printed in step 1 —
//!    no handle to the `Cluster` object. Run the same calls from a
//!    different process on this machine and they behave identically;
//!    that is the point: the cluster boundary is now the socket, not
//!    the address space.
//! 3. **Transact over the wire**: read-your-writes through the client
//!    cache, multi-partition snapshot reads fanned out to the read
//!    workers, cross-session visibility once BiST stabilizes a write.
//! 4. **Read the metrics** (`Cluster::metrics`): one merged snapshot of
//!    every layer the run just exercised — commit-stage and read-slice
//!    histograms from the partition engines, socket-boundary counters
//!    from the fabric, session-op latencies — with tail percentiles,
//!    Prometheus rendering and per-partition trace rings.
//! 5. **Measure all three transports** (`wren_harness::run_rt`): the
//!    same closed-loop workload over channels, reactor TCP and
//!    threaded TCP. Channel→TCP is the end-to-end price of
//!    serialization plus kernel round-trips — the cost the paper's
//!    cluster experiments pay on every operation; reactor→threaded is
//!    the thread-topology difference at the same wire cost, and it
//!    lives in the tail (p99/p999), which the mean hides.
//! 6. **Shut down deterministically**: listeners closed, in-flight
//!    connections severed, every reactor thread joined. Run it twice;
//!    `shutdown` is idempotent.
//!
//! ```bash
//! cargo run --release --example tcp_cluster
//! ```

use bytes::Bytes;
use std::time::{Duration, Instant};
use wren::harness::{run_rt, RtSpec, RtTransport};
use wren::protocol::{ClientId, Key, ServerId};
use wren::rt::{ClusterBuilder, Session};

fn main() {
    // --- 1. A 1-DC × 4-partition cluster, served over loopback TCP.
    let cluster = ClusterBuilder::new().dcs(1).partitions(4).tcp().build();
    println!("cluster listening (DC-major partition order):");
    for (i, addr) in cluster.server_addrs().iter().enumerate() {
        println!("  partition {i}: {addr}");
    }

    // --- 2. Join with addresses only, like a remote process would.
    let mut session = Session::connect_tcp(
        cluster.server_addrs().to_vec(),
        cluster.n_partitions(),
        ClientId(1_000_000), // disjoint from cluster-assigned ids
        ServerId::new(0, 0),
        Duration::from_secs(5),
    );

    // --- 3a. Read-your-writes over the wire.
    session.begin().unwrap();
    session.write(Key(1), Bytes::from_static(b"over-tcp"));
    session.commit().unwrap();
    session.begin().unwrap();
    let v = session.read_one(Key(1)).unwrap();
    session.commit().unwrap();
    println!("\nread-your-writes over TCP: {:?}", v.as_deref());

    // --- 3b. A multi-partition snapshot read (fans out to every
    // partition's read workers, each hop a framed socket round).
    session.begin().unwrap();
    for k in 2..10u64 {
        session.write(Key(k), Bytes::from(format!("v{k}").into_bytes()));
    }
    session.commit().unwrap();
    session.begin().unwrap();
    let keys: Vec<Key> = (2..10).map(Key).collect();
    let snapshot = session.read(&keys).unwrap();
    session.commit().unwrap();
    println!(
        "multi-partition snapshot: {} keys, all present: {}",
        snapshot.len(),
        snapshot.iter().all(|(_, v)| v.is_some())
    );

    // --- 3c. Cross-session visibility: a second TCP session sees the
    // write once BiST stabilizes it (two gossip scalars per exchange).
    let mut observer = cluster.session(0);
    let started = Instant::now();
    loop {
        observer.begin().unwrap();
        let seen = observer.read_one(Key(1)).unwrap();
        observer.commit().unwrap();
        if seen.as_deref() == Some(b"over-tcp".as_slice()) {
            println!(
                "cross-session visibility after {:?} (replication + BiST)",
                started.elapsed()
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // --- 4. Reading the metrics. `Cluster::metrics()` merges every
    // layer into one snapshot: partition registries use unprefixed
    // names (`commit_prepare_micros` below is the histogram across all
    // four partitions), the fabric's counters are `tcp_*`, session-op
    // latencies `session_*`. Quantiles come from log-linear buckets
    // (~1% relative error) — cheap enough to leave on in production.
    // For live monitoring, `ClusterBuilder::metrics_every(d)` logs the
    // interval deltas to stderr, `MetricsSnapshot::render_prometheus()`
    // feeds a scraper, and `Cluster::dump_traces()` explains a failure
    // from each partition's last ~512 lifecycle events.
    let snap = cluster.metrics();
    println!("\nwhat the wire run cost, from the merged metrics snapshot:");
    for name in ["session_commit_micros", "commit_prepare_micros", "read_slice_micros"] {
        if let Some(h) = snap.histogram(name) {
            println!(
                "  {name}: n={} p50={}us p99={}us max={}us",
                h.count,
                h.p50(),
                h.p99(),
                h.max
            );
        }
    }
    println!(
        "  frames on the wire: {} out / {} in ({} conns accepted, 0 dropped: {})",
        snap.counter("tcp_frames_out"),
        snap.counter("tcp_frames_in"),
        snap.counter("tcp_conns_accepted"),
        snap.counter("tcp_dropped_frames") == 0
    );
    drop(observer);
    drop(session);
    cluster.shutdown();
    drop(cluster);

    // --- 5. The transport bill: same closed-loop workload, all three
    // transports. (Loopback TCP still pays encode + frame + two syscall
    // crossings per hop; real NICs would add propagation on top.)
    println!("\nclosed-loop comparison (4 sessions x 300 tx, 1 DC x 4 partitions):");
    println!(
        "  {:<14} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "transport", "tx/s", "mean ms", "p50 ms", "p99 ms", "p999 ms"
    );
    for (name, transport) in [
        ("channel", RtTransport::Channel),
        ("tcp-reactor", RtTransport::Tcp),
        ("tcp-threaded", RtTransport::TcpThreaded),
        ("tcp-uring", RtTransport::TcpUring),
    ] {
        let result = run_rt(&RtSpec {
            dcs: 1,
            partitions: 4,
            read_workers: 2,
            transport,
            sessions_per_dc: 4,
            txs_per_session: 300,
            keys: 256,
            reads_per_tx: 3,
            writes_per_tx: 2,
            fsync: None,
        });
        println!(
            "  {:<14} {:>12.0} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name,
            result.throughput,
            result.mean_latency_ms,
            result.p50_latency_ms,
            result.p99_latency_ms,
            result.p999_latency_ms
        );
    }

    // --- 6. Deterministic teardown already happened for the demo
    // cluster (shutdown + drop joined every thread); run_rt tears its
    // clusters down internally the same way.
    println!("\ndone: all listeners closed, every transport thread joined.");
}
