//! Geo-replication visibility study (a runnable miniature of Fig. 7b):
//! measures how long updates take to become visible locally and remotely
//! in Wren vs. Cure on the simulated AWS topology.
//!
//! ```bash
//! cargo run --release --example geo_visibility
//! ```

use wren_harness::{cdf, run, ExperimentSpec, SystemKind, Topology};
use wren_workload::WorkloadSpec;

fn main() {
    let mut topology = Topology::aws(3, 4);
    topology.visibility_sample_every = 2;
    let spec = ExperimentSpec {
        topology,
        workload: WorkloadSpec {
            keys_per_partition: 1_000,
            ..WorkloadSpec::default()
        },
        threads_per_client: 4,
        warmup_micros: 400_000,
        measure_micros: 2_000_000,
        seed: 11,
    };

    println!("running Wren and Cure on 3 simulated AWS regions (Virginia, Oregon, Ireland)...");
    let wren = run(SystemKind::Wren, &spec);
    let cure = run(SystemKind::Cure, &spec);

    let stats = |label: &str, samples: &[u64]| {
        if samples.is_empty() {
            println!("  {label}: no samples");
            return;
        }
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1000.0;
        let curve = cdf(samples, 4);
        println!(
            "  {label}: mean {:>6.1} ms | p25 {:>6.1} | p50 {:>6.1} | p75 {:>6.1} | p100 {:>6.1}",
            mean,
            curve[0].0 as f64 / 1000.0,
            curve[1].0 as f64 / 1000.0,
            curve[2].0 as f64 / 1000.0,
            curve[3].0 as f64 / 1000.0,
        );
    };

    println!("\nupdate visibility latency (how long until an update enters snapshots):");
    stats("Wren  local ", &wren.visibility_local);
    stats("Cure  local ", &cure.visibility_local);
    stats("Wren  remote", &wren.visibility_remote);
    stats("Cure  remote", &cure.visibility_remote);

    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64 / 1000.0;
    println!(
        "\nthe trade-off the paper describes (§V-G): Wren delays local visibility by ~{:.1} ms \
         (Cure: immediate) and remote visibility by {:.0}% (vs Cure), in exchange for \
         nonblocking reads: Wren blocked {} reads, Cure blocked {} ({}% of its transactions).",
        mean(&wren.visibility_local),
        (mean(&wren.visibility_remote) / mean(&cure.visibility_remote) - 1.0) * 100.0,
        wren.blocking.blocked_txs,
        cure.blocking.blocked_txs,
        (cure.blocking.blocked_fraction * 100.0) as u32,
    );
}
