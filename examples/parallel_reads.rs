//! Parallel reads: the per-partition read engine serving slice requests
//! from worker threads, concurrently with the writer thread that runs
//! the mutating protocol.
//!
//! The demo seeds a 4-partition cluster, then drives the same fixed
//! read-only workload (concurrent sessions issuing multi-key
//! transactions that fan out to every partition) against increasing
//! read-worker pool sizes, printing the throughput of each
//! configuration. `read_workers(0)` is the pre-engine baseline — every
//! slice queues behind commits, replication, gossip and GC on the
//! partition's single thread.
//!
//! Expect the spread to grow with the host's core count: on a
//! single-core machine the configurations tie (the engine adds no new
//! CPUs, only the freedom to use them), while on a multi-core host the
//! worker pools pull ahead as reads stop queuing behind the writer.
//!
//! ```bash
//! cargo run --release --example parallel_reads
//! ```

use bytes::Bytes;
use std::time::{Duration, Instant};
use wren_protocol::Key;
use wren_rt::ClusterBuilder;

const PARTITIONS: u16 = 4;
const KEYS: u64 = 64;
const READER_SESSIONS: usize = 4;
const TXS_PER_SESSION: usize = 250;

/// Builds a cluster with the given pool size, seeds it, and times the
/// read workload. Returns read transactions per second.
fn run(read_workers: usize) -> f64 {
    let cluster = ClusterBuilder::new()
        .dcs(1)
        .partitions(PARTITIONS)
        .read_workers(read_workers)
        .build();

    // Seed every key, then wait until the writes are stable (reads at
    // the stable snapshot see them without the writer's client cache).
    let mut writer = cluster.session(0);
    writer.begin().expect("begin");
    for k in 0..KEYS {
        writer.write(Key(k), Bytes::from_static(b"seed"));
    }
    writer.commit().expect("commit");

    let mut probe = cluster.session(0);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        probe.begin().expect("begin");
        let vals = probe.read(&[Key(0), Key(KEYS - 1)]).expect("read");
        probe.commit().expect("commit");
        if vals.iter().all(|(_, v)| v.is_some()) {
            break;
        }
        assert!(Instant::now() < deadline, "seed never became stable");
        std::thread::sleep(Duration::from_millis(1));
    }

    // The measured phase: concurrent sessions, each reading all keys in
    // multi-key transactions that slice across all four partitions.
    let keys: Vec<Key> = (0..KEYS).map(Key).collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..READER_SESSIONS {
            let mut session = cluster.session(0);
            let keys = &keys;
            s.spawn(move || {
                for _ in 0..TXS_PER_SESSION {
                    session.begin().expect("begin");
                    let items = session.read(keys).expect("read");
                    session.commit().expect("commit");
                    assert!(items.iter().all(|(_, v)| v.is_some()));
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let stats = cluster.stop();
    let slices: u64 = stats.iter().map(|s| s.slices_served).sum();
    let txs = (READER_SESSIONS * TXS_PER_SESSION) as f64;
    let tps = txs / elapsed.as_secs_f64();
    println!(
        "  read_workers={read_workers}: {txs:.0} read txs in {:>6.1} ms -> {tps:>8.0} tx/s \
         ({slices} slices served)",
        elapsed.as_secs_f64() * 1e3,
    );
    tps
}

fn main() {
    println!(
        "parallel read engine: {READER_SESSIONS} reader sessions x {TXS_PER_SESSION} \
         transactions over {PARTITIONS} partitions ({} cores available)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut results = Vec::new();
    for workers in [0usize, 1, 2, 4] {
        results.push((workers, run(workers)));
    }
    let (_, base) = results[0];
    println!("\nspeedup vs read_workers=0:");
    for (workers, tps) in &results {
        println!("  read_workers={workers}: {:.2}x", tps / base);
    }
}
