//! Quickstart: spin up an in-process geo-replicated Wren cluster, run
//! interactive read-write transactions, and watch the CANToR guarantees in
//! action.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use bytes::Bytes;
use std::thread::sleep;
use std::time::Duration;
use wren_protocol::Key;
use wren_rt::ClusterBuilder;

fn main() {
    // 2 data centers × 4 partitions, the paper's tick intervals.
    let cluster = ClusterBuilder::new()
        .dcs(2)
        .partitions(4)
        .gossip_tick(Duration::from_millis(5))
        .build();
    println!(
        "cluster up: {} DCs x {} partitions",
        cluster.n_dcs(),
        cluster.n_partitions()
    );

    // A session in DC 0 writes a multi-key transaction atomically.
    let mut alice = cluster.session(0);
    alice.begin().expect("begin");
    alice.write(Key(1), Bytes::from_static(b"alice-profile"));
    alice.write(Key(2), Bytes::from_static(b"alice-avatar"));
    let ct = alice.commit().expect("commit");
    println!("alice committed two keys at timestamp {ct}");

    // Alice reads her own writes immediately — even before the cluster's
    // stable snapshot includes them — thanks to the client-side cache.
    alice.begin().expect("begin");
    let vals = alice.read(&[Key(1), Key(2)]).expect("read");
    println!("alice reads back: {vals:?}");
    assert_eq!(vals[0].1.as_deref(), Some(b"alice-profile".as_slice()));
    assert_eq!(vals[1].1.as_deref(), Some(b"alice-avatar".as_slice()));
    println!(
        "  (served from: cache hits = {}, server reads = {})",
        alice.stats().hits_cache,
        alice.stats().server_reads
    );
    alice.commit().expect("commit");

    // A session in the *other* DC sees the writes once they are
    // geo-replicated and stable there — always atomically: both keys or
    // neither.
    let mut bob = cluster.session(1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        bob.begin().expect("begin");
        let vals = bob.read(&[Key(1), Key(2)]).expect("read");
        bob.commit().expect("commit");
        let seen: Vec<bool> = vals.iter().map(|(_, v)| v.is_some()).collect();
        assert!(
            seen.iter().all(|s| *s) || seen.iter().all(|s| !*s),
            "atomicity violated: partial transaction visible: {vals:?}"
        );
        if seen.iter().all(|s| *s) {
            println!("bob (DC 1) sees both keys: {vals:?}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replication did not converge in time"
        );
        sleep(Duration::from_millis(5));
    }

    cluster.shutdown();
    println!("done.");
}
