//! Property-based torn-checkpoint suite: simulate a crash at an
//! arbitrary point of checkpoint rotation and require recovery to be
//! total and exact — the newest generation is either fully intact and
//! loaded, or invisible and the *previous* generation loads instead.
//! Never a panic, never a frankenstein payload, never falling forward
//! onto damaged bytes.
//!
//! Together with `wal_properties.rs` this is the disk contract the
//! kill-and-restart oracle relies on: a crash mid-rotate can only cost
//! the newest checkpoint, and the generation chain always has a valid
//! floor to rebuild from.

use proptest::prelude::*;
use std::path::PathBuf;
use wren_storage::checkpoint::{
    checkpoint_path, load_latest, prune_generations, wal_path, write_checkpoint,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("wren-ckptprop-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncating the newest checkpoint at any byte makes it invisible
    /// (unless nothing was actually cut), and recovery falls back to
    /// the previous generation byte-for-byte.
    #[test]
    fn truncated_rotation_falls_back_exactly(
        // Fractions past 1.0 clamp to "no cut", exercising the intact
        // case (the vendored proptest lacks inclusive float ranges).
        (old, new, cut_frac) in (arb_payload(), arb_payload(), 0.0f64..1.1)
    ) {
        let dir = tmp_dir("trunc");
        write_checkpoint(&dir, 1, &old).unwrap();
        write_checkpoint(&dir, 2, &new).unwrap();
        let p = checkpoint_path(&dir, 2);
        let bytes = std::fs::read(&p).unwrap();
        let cut = (((bytes.len() as f64) * cut_frac) as usize).min(bytes.len());
        std::fs::write(&p, &bytes[..cut]).unwrap();

        let got = load_latest(&dir).expect("generation 1 is always recoverable");
        if cut == bytes.len() {
            prop_assert_eq!(got, (2, new));
        } else {
            prop_assert_eq!(got, (1, old));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// One flipped bit anywhere in the newest checkpoint file always
    /// invalidates it — every header field, the payload CRC and the end
    /// marker are load-bearing — so recovery falls back to the previous
    /// generation rather than surfacing damaged bytes.
    #[test]
    fn any_bit_flip_in_newest_falls_back(
        (old, new, flip_frac, bit) in (arb_payload(), arb_payload(), 0.0f64..1.0, 0u8..8)
    ) {
        let dir = tmp_dir("flip");
        write_checkpoint(&dir, 1, &old).unwrap();
        write_checkpoint(&dir, 2, &new).unwrap();
        let p = checkpoint_path(&dir, 2);
        let mut bytes = std::fs::read(&p).unwrap();
        let pos = (((bytes.len() - 1) as f64) * flip_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&p, &bytes).unwrap();

        prop_assert_eq!(load_latest(&dir), Some((1, old)));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A crash before the rename leaves only `ckpt.N.tmp`: whatever its
    /// contents, it is invisible to recovery, and the next prune sweeps
    /// it while the real generation (and its WAL) survives.
    #[test]
    fn leftover_tmp_is_invisible_and_swept(
        (old, junk) in (arb_payload(), proptest::collection::vec(any::<u8>(), 0..512))
    ) {
        let dir = tmp_dir("tmpfile");
        write_checkpoint(&dir, 3, &old).unwrap();
        std::fs::write(wal_path(&dir, 3), b"").unwrap();
        std::fs::write(dir.join("ckpt.4.tmp"), &junk).unwrap();

        prop_assert_eq!(load_latest(&dir), Some((3, old.clone())));
        prune_generations(&dir, 2);
        prop_assert!(!dir.join("ckpt.4.tmp").exists(), "tmp must be swept");
        prop_assert_eq!(load_latest(&dir), Some((3, old)));
        prop_assert!(wal_path(&dir, 3).exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
