//! Property tests for the striped store and the batched write path.
//!
//! Two oracles:
//!
//! * **sharded vs flat** — a [`ShardedStore`] fed the same inserts,
//!   batch applies and GC sweeps as a flat [`MvStore`] must be
//!   observationally identical under every snapshot bound (striping is
//!   pure layout);
//! * **batched vs one-at-a-time** — `apply_batch` must leave every chain
//!   exactly as repeated `insert` calls would, including
//!   commit-timestamp ties (the replication case: a batch shares one
//!   commit timestamp, ties resolved by `(dc, tx)`).

use proptest::prelude::*;
use wren_clock::Timestamp;
use wren_storage::{MvStore, ShardedStore, SnapshotBound, VersionChain, Versioned};

#[derive(Clone, Debug, PartialEq)]
struct V {
    ct: u64,
    sr: u8,
    tx: u64,
    rdt: u64,
}

impl Versioned for V {
    fn order_key(&self) -> (Timestamp, u8, u64) {
        (Timestamp::from_micros(self.ct), self.sr, self.tx)
    }

    fn remote_dep(&self) -> Timestamp {
        Timestamp::from_micros(self.rdt)
    }
}

fn ts(micros: u64) -> Timestamp {
    Timestamp::from_micros(micros)
}

/// Keyed inserts over a small key domain with commit-timestamp ties
/// (few distinct cts, `(sr, tx)` breaking them). Transaction ids are
/// made unique in a post-pass, as in the real system, so "which
/// identical twin survives" never becomes observable oracle noise.
fn arb_keyed(max: usize) -> impl Strategy<Value = Vec<(u64, V)>> {
    proptest::collection::vec(
        (0u64..12, 0u64..40, 0u8..3, 0u64..8, 0u64..40)
            .prop_map(|(k, ct, sr, tx, rdt)| (k, V { ct, sr, tx, rdt: rdt.min(ct) })),
        1..max,
    )
    .prop_map(|mut items| {
        for (i, (_, v)) in items.iter_mut().enumerate() {
            v.tx += (i as u64) << 3;
        }
        items
    })
}

fn chain_keys(c: &VersionChain<V>) -> Vec<(Timestamp, u8, u64)> {
    c.iter().map(Versioned::order_key).collect()
}

/// Every chain of `a` appears identically in `b` and vice versa.
fn assert_same_contents(a: &ShardedStore<u64, V>, b: &MvStore<u64, V>) {
    assert_eq!(a.stats().keys, b.stats().keys);
    assert_eq!(a.stats().versions, b.stats().versions);
    for (k, chain) in b.iter() {
        let sharded = a.chain(k).expect("key present in sharded store");
        assert_eq!(chain_keys(sharded), chain_keys(chain), "key {k}");
    }
}

proptest! {
    /// Sharded and flat stores agree on every read, under every bound
    /// shape, for the same random insert sequence.
    #[test]
    fn sharded_reads_match_flat_store(
        items in arb_keyed(60),
        stripes in 1usize..10,
        cutoff in 0u64..40,
        local_dc in 0u8..3,
        lt in 0u64..40,
        rt in 0u64..40,
    ) {
        let mut sharded: ShardedStore<u64, V> = ShardedStore::with_stripes(stripes);
        let mut flat: MvStore<u64, V> = MvStore::new();
        for (k, v) in &items {
            sharded.insert(*k, v.clone());
            flat.insert(*k, v.clone());
        }
        assert_same_contents(&sharded, &flat);
        for bound in [
            SnapshotBound::all(),
            SnapshotBound::at_most(ts(cutoff)),
            SnapshotBound::bist(local_dc, ts(lt), ts(rt)),
        ] {
            for k in 0u64..12 {
                let s = sharded.latest_visible(&k, &bound).map(Versioned::order_key);
                let f = flat.latest_visible(&k, &bound).map(Versioned::order_key);
                prop_assert_eq!(s, f, "bound {:?}, key {}", bound, k);
                prop_assert_eq!(
                    sharded.newest(&k).map(Versioned::order_key),
                    flat.newest(&k).map(Versioned::order_key)
                );
            }
        }
    }

    /// GC on the sharded store (full sweep and stripe-by-stripe sweep)
    /// removes exactly what the flat store removes.
    #[test]
    fn sharded_collect_matches_flat_store(
        items in arb_keyed(60),
        stripes in 1usize..10,
        watermark in 0u64..40,
        stripewise in 0u8..2,
    ) {
        let mut sharded: ShardedStore<u64, V> = ShardedStore::with_stripes(stripes);
        let mut flat: MvStore<u64, V> = MvStore::new();
        for (k, v) in &items {
            sharded.insert(*k, v.clone());
            flat.insert(*k, v.clone());
        }
        let bound = SnapshotBound::at_most(ts(watermark));
        let removed_flat = flat.collect(&bound);
        let removed_sharded = if stripewise == 1 {
            (0..sharded.n_stripes()).map(|i| sharded.collect_stripe(i, &bound)).sum()
        } else {
            sharded.collect(&bound)
        };
        prop_assert_eq!(removed_sharded, removed_flat);
        prop_assert_eq!(sharded.stats().collected, flat.stats().collected);
        assert_same_contents(&sharded, &flat);
    }

    /// Store-level `apply_batch` (which sorts internally) leaves every
    /// chain exactly as one-at-a-time `insert` calls would — including
    /// commit-timestamp ties within and across batches.
    #[test]
    fn apply_batch_matches_insert_oracle(
        batches in proptest::collection::vec(arb_keyed(40), 1..4),
        stripes in 1usize..10,
    ) {
        let mut batched: ShardedStore<u64, V> = ShardedStore::with_stripes(stripes);
        let mut flat_batched: MvStore<u64, V> = MvStore::new();
        let mut oracle: MvStore<u64, V> = MvStore::new();
        for batch in &batches {
            let mut items = batch.clone();
            let mut flat_items = batch.clone();
            let applied = batched.apply_batch(&mut items);
            prop_assert_eq!(applied, batch.len());
            prop_assert!(items.is_empty(), "apply_batch must drain its input");
            flat_batched.apply_batch(&mut flat_items);
            for (k, v) in batch {
                oracle.insert(*k, v.clone());
            }
        }
        assert_same_contents(&batched, &oracle);
        prop_assert_eq!(flat_batched.stats().versions, oracle.stats().versions);
        for (k, chain) in oracle.iter() {
            let b = flat_batched.chain(k).expect("key present");
            prop_assert_eq!(chain_keys(b), chain_keys(chain));
        }
    }

    /// Chain-level `apply_batch` on a **replication-shaped run** — every
    /// version sharing one commit timestamp, landing mid-chain — equals
    /// the insert oracle, whatever already sits in the chain (including
    /// same-ct entries from other DCs, which interleave the run).
    #[test]
    fn chain_apply_batch_matches_insert_with_shared_ct(
        existing in proptest::collection::vec(
            // The tx range overlaps the batch's on purpose: an existing
            // same-ct same-origin entry can then land strictly *inside*
            // the run's key span, exercising the post-splice resort.
            (0u64..40, 0u8..3, 0u64..1000, 0u64..40)
                .prop_map(|(ct, sr, tx, rdt)| V { ct, sr, tx, rdt: rdt.min(ct) }),
            0..30,
        ),
        batch_ct in 0u64..40,
        batch_txs in proptest::collection::vec(0u64..1000, 1..16),
    ) {
        // The batch: one shared ct, origin DC 1, distinct tx ids.
        let mut batch_txs = batch_txs;
        batch_txs.sort_unstable();
        batch_txs.dedup();
        let run: Vec<V> = batch_txs
            .iter()
            .map(|&tx| V { ct: batch_ct, sr: 1, tx, rdt: 0 })
            .collect();

        let mut chain = VersionChain::new();
        let mut oracle = VersionChain::new();
        for v in &existing {
            chain.insert(v.clone());
            oracle.insert(v.clone());
        }
        let mut sorted = run.clone();
        sorted.sort_unstable_by_key(Versioned::order_key);
        chain.apply_batch(&mut sorted);
        prop_assert!(sorted.is_empty());
        for v in &run {
            oracle.insert(v.clone());
        }
        prop_assert_eq!(chain_keys(&chain), chain_keys(&oracle));
        prop_assert_eq!(chain.len(), existing.len() + run.len());
    }

    /// Interleaving batch applies with GC keeps sharded and flat stores
    /// in lockstep (the server's real access pattern: replicate → read →
    /// collect → replicate …).
    #[test]
    fn interleaved_apply_and_collect_stay_in_lockstep(
        rounds in proptest::collection::vec(
            (arb_keyed(24), 0u64..40),
            1..4,
        ),
        stripes in 1usize..10,
    ) {
        let mut sharded: ShardedStore<u64, V> = ShardedStore::with_stripes(stripes);
        let mut flat: MvStore<u64, V> = MvStore::new();
        for (batch, watermark) in &rounds {
            let mut items = batch.clone();
            sharded.apply_batch(&mut items);
            for (k, v) in batch {
                flat.insert(*k, v.clone());
            }
            let bound = SnapshotBound::at_most(ts(*watermark));
            prop_assert_eq!(sharded.collect(&bound), flat.collect(&bound));
            assert_same_contents(&sharded, &flat);
        }
    }
}
