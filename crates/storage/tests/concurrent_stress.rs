//! Stress/oracle test for [`ConcurrentShardedStore`]: N reader threads
//! run against one writer doing `insert` / `apply_batch` / `collect`,
//! exactly the op mix a partition engine's writer thread performs.
//!
//! The writer works in **rounds**. Round `r` installs one version of
//! every key at commit time `ct(r)`, then publishes the stable watermark
//! `lst = ct(r)`. Because every round covers every key, the expected
//! answer of `latest_visible(k, at_most(lst))` is *computable from the
//! observed watermark alone*: it must be exactly the version written in
//! the round whose commit time equals the watermark. That turns each
//! concurrent read into a precise oracle check:
//!
//! * a **future** version (`ct > lst`) would mean the bound leaked
//!   not-yet-stable state;
//! * a **stale** version (`ct < lst`) would mean a published watermark
//!   was not backed by installed writes (the release/acquire pairing on
//!   the stable atomics failed);
//! * a **torn** version (value inconsistent with its commit time) would
//!   mean the stripe locks failed to isolate a splice.
//!
//! After the threads join, the whole store is compared stripe-for-stripe
//! against a single-threaded [`MvStore`] oracle replaying the same
//! script, GC included.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wren_clock::Timestamp;
use wren_storage::{ConcurrentShardedStore, MvStore, SnapshotBound, Versioned};

/// A version whose value encodes its round, so readers can detect torn
/// or misplaced versions: a version at commit time `ct(r)` must carry
/// payload `r`.
#[derive(Clone, Debug, PartialEq)]
struct V {
    ct: u64,
    payload: u64,
}

impl Versioned for V {
    fn order_key(&self) -> (Timestamp, u8, u64) {
        (Timestamp::from_micros(self.ct), 0, self.payload)
    }
}

const KEYS: u64 = 256;
/// Rounds the writer runs; debug builds are ~10× slower per op, so CI's
/// `cargo test` (debug) gets a shorter run than `--release`.
const ROUNDS: u64 = if cfg!(debug_assertions) { 400 } else { 2_000 };
const READERS: usize = 4;
/// GC trails the published watermark by this many rounds.
const GC_LAG: u64 = 8;

fn ct_of_round(r: u64) -> u64 {
    10 + r * 10
}

fn round_of_ct(ct: u64) -> u64 {
    (ct - 10) / 10
}

/// One round's writes. Even rounds go through one-at-a-time `insert`,
/// odd rounds through `apply_batch` (all versions of a batch share one
/// commit time, like a replication batch).
fn apply_round<S: RoundSink>(store: &mut S, r: u64) {
    let ct = ct_of_round(r);
    if r.is_multiple_of(2) {
        for k in 0..KEYS {
            store.insert_one(k, V { ct, payload: r });
        }
    } else {
        let mut batch: Vec<(u64, V)> =
            (0..KEYS).map(|k| (k, V { ct, payload: r })).collect();
        store.apply_batch_all(&mut batch);
    }
    if r >= GC_LAG {
        let watermark = Timestamp::from_micros(ct_of_round(r - GC_LAG));
        store.collect_at(&SnapshotBound::at_most(watermark));
    }
}

/// The script runs identically against the concurrent store and the
/// flat single-threaded oracle.
trait RoundSink {
    fn insert_one(&mut self, k: u64, v: V);
    fn apply_batch_all(&mut self, batch: &mut Vec<(u64, V)>);
    fn collect_at(&mut self, bound: &SnapshotBound<'_>);
}

impl RoundSink for Arc<ConcurrentShardedStore<u64, V>> {
    fn insert_one(&mut self, k: u64, v: V) {
        self.insert(k, v);
    }
    fn apply_batch_all(&mut self, batch: &mut Vec<(u64, V)>) {
        self.apply_batch(batch);
    }
    fn collect_at(&mut self, bound: &SnapshotBound<'_>) {
        self.collect(bound);
    }
}

impl RoundSink for MvStore<u64, V> {
    fn insert_one(&mut self, k: u64, v: V) {
        self.insert(k, v);
    }
    fn apply_batch_all(&mut self, batch: &mut Vec<(u64, V)>) {
        self.apply_batch(batch);
    }
    fn collect_at(&mut self, bound: &SnapshotBound<'_>) {
        self.collect(bound);
    }
}

#[test]
fn readers_against_writer_match_the_oracle() {
    let store = Arc::new(ConcurrentShardedStore::<u64, V>::new());
    let done = Arc::new(AtomicBool::new(false));
    // Rounds below this index may have been garbage-collected. Readers
    // are not tracked in a GC watermark here (unlike the protocol, where
    // the oldest *active transaction* holds GC back), so a reader whose
    // sampled bound falls behind the sweep must be able to tell a
    // GC-overtaken read from a genuinely lost version.
    let gc_floor = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|seed| {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            let gc_floor = Arc::clone(&gc_floor);
            std::thread::spawn(move || {
                let mut checked = 0u64;
                // Cheap xorshift so each reader walks keys differently.
                let mut x = 0x9e3779b9u64 + seed as u64;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let lst = store.lst();
                    if lst.is_zero() {
                        // Nothing published yet.
                        if finished {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    let bound = SnapshotBound::at_most(lst);
                    let expect_round = round_of_ct(lst.physical_micros());
                    'reads: for _ in 0..64 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % KEYS;
                        let Some(v) = store.latest_visible(&k, &bound) else {
                            // Only legal if GC has swept past our bound
                            // since we sampled it; then resample.
                            assert!(
                                expect_round < gc_floor.load(Ordering::Acquire),
                                "nothing visible for key {k} at bound {lst:?} \
                                 though the watermark was published"
                            );
                            break 'reads;
                        };
                        // Neither future, nor stale, nor torn (see module
                        // docs). The store may have published a *newer*
                        // watermark since we sampled `lst`, so the oracle
                        // is: exactly the round named by our bound.
                        assert!(
                            v.ct <= lst.physical_micros(),
                            "future version {v:?} at bound {lst:?}"
                        );
                        assert_eq!(
                            round_of_ct(v.ct),
                            expect_round,
                            "stale version {v:?} at bound {lst:?}"
                        );
                        assert_eq!(
                            v.payload,
                            round_of_ct(v.ct),
                            "torn version {v:?}: payload disagrees with ct"
                        );
                        checked += 1;
                    }
                    if finished {
                        break;
                    }
                }
                checked
            })
        })
        .collect();

    // The writer: rounds of insert/apply_batch/collect, publishing the
    // stable watermark after each fully-installed round.
    let mut writer_store = Arc::clone(&store);
    for r in 0..ROUNDS {
        if r >= GC_LAG {
            // `apply_round` is about to sweep below round r - GC_LAG;
            // announce it before the sweep so readers can classify a
            // missing version (store-then-collect, paired with the
            // readers' load-after-miss through the stripe lock edge).
            gc_floor.store(r - GC_LAG, Ordering::Release);
        }
        apply_round(&mut writer_store, r);
        let ct = Timestamp::from_micros(ct_of_round(r));
        store.publish_stable(ct, ct);
    }
    done.store(true, Ordering::Release);

    let total_checked: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        total_checked >= READERS as u64 * 64,
        "readers barely ran ({total_checked} checks)"
    );

    // Final-state oracle: replay the same script single-threaded and
    // compare every chain.
    let mut oracle: MvStore<u64, V> = MvStore::new();
    for r in 0..ROUNDS {
        apply_round(&mut oracle, r);
    }
    let ostats = oracle.stats();
    let cstats = store.stats();
    assert_eq!(cstats.keys, ostats.keys, "key count diverges from oracle");
    assert_eq!(
        cstats.versions, ostats.versions,
        "version count diverges from oracle"
    );
    assert_eq!(
        cstats.collected, ostats.collected,
        "GC tally diverges from oracle"
    );
    for k in 0..KEYS {
        let oracle_chain: Vec<V> = oracle
            .chain(&k)
            .expect("oracle holds every key")
            .iter()
            .cloned()
            .collect();
        let concurrent_chain: Vec<V> = store.with_chain(&k, |c| {
            c.expect("store holds every key").iter().cloned().collect()
        });
        assert_eq!(concurrent_chain, oracle_chain, "chain diverges for key {k}");
    }
}

/// The writer-side behaviours (batch vs single insert, stripe GC) agree
/// with the flat oracle even without concurrency — a cheap determinism
/// guard that failures in the threaded test can be diffed against.
#[test]
fn script_replay_is_deterministic() {
    let mut a = Arc::new(ConcurrentShardedStore::<u64, V>::with_stripes(4));
    let mut b: MvStore<u64, V> = MvStore::new();
    for r in 0..40 {
        apply_round(&mut a, r);
        apply_round(&mut b, r);
    }
    assert_eq!(a.stats().versions, b.stats().versions);
    assert_eq!(a.stats().collected, b.stats().collected);
    for k in 0..KEYS {
        let flat: Vec<V> = b.chain(&k).unwrap().iter().cloned().collect();
        let conc: Vec<V> = a.with_chain(&k, |c| c.unwrap().iter().cloned().collect());
        assert_eq!(conc, flat, "key {k}");
    }
}
