//! Property-based corruption suite for the write-ahead log: for
//! arbitrary record streams and arbitrary damage — truncation at any
//! byte, a single bit flip anywhere, garbage appended past the seal —
//! recovery must be **total** (no panic, no error for damaged-tail
//! shapes) and must return exactly a *valid prefix* of what was
//! appended: every recovered record is byte-identical to the one
//! written at that position, and no record invented from garbage or
//! damage is ever surfaced past a corrupted one.
//!
//! These are the byte-layer guarantees `wren-core`'s typed replay and
//! the kill-and-restart oracle build on: a crash can only cost a tail,
//! never the middle, and never yields frankenstein records.

use proptest::prelude::*;
use std::path::PathBuf;
use wren_storage::wal::{read_records, Wal, RECORD_HEADER_LEN};
use wren_storage::FsyncPolicy;

fn tmp(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "wren-walprop-{tag}-{}-{case}.wal",
        std::process::id()
    ))
}

/// Writes `payloads` as a sealed log and returns the file's bytes.
fn write_log(path: &PathBuf, payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut wal = Wal::create(path, FsyncPolicy::Off).unwrap();
    for p in payloads {
        wal.append(p);
    }
    wal.seal().unwrap();
    std::fs::read(path).unwrap()
}

/// Byte offset where record `i` starts in the encoded log.
fn record_offset(payloads: &[Vec<u8>], i: usize) -> usize {
    payloads[..i]
        .iter()
        .map(|p| RECORD_HEADER_LEN + p.len())
        .sum()
}

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Cutting the file at any byte recovers exactly the records that
    /// fit wholly below the cut — the valid prefix — and flags the tear
    /// iff bytes were actually lost mid-record.
    #[test]
    fn truncation_at_any_byte_yields_exact_valid_prefix(
        (payloads, cut_frac) in (arb_payloads(), 0.0f64..1.0)
    ) {
        let path = tmp("trunc", 0);
        let bytes = write_log(&path, &payloads);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let rec = read_records(&path).expect("total: truncation is not an I/O error");
        let intact = (0..=payloads.len())
            .rev()
            .find(|&i| record_offset(&payloads, i) <= cut)
            .unwrap();
        prop_assert_eq!(&rec.records, &payloads[..intact].to_vec());
        prop_assert_eq!(rec.valid_len as usize, record_offset(&payloads, intact));
        prop_assert_eq!(rec.torn, cut != record_offset(&payloads, intact));
        std::fs::remove_file(&path).ok();
    }

    /// One flipped bit anywhere: recovery still returns a prefix of the
    /// written records, each byte-identical, and every record strictly
    /// before the damaged one survives. (The flip can only shorten the
    /// prefix from its own record onward — CRC and length guards refuse
    /// to manufacture data.)
    #[test]
    fn single_bit_flip_never_corrupts_the_prefix(
        (payloads, flip_frac, bit) in (arb_payloads(), 0.0f64..1.0, 0u8..8)
    ) {
        let path = tmp("flip", 1);
        let mut bytes = write_log(&path, &payloads);
        let pos = (((bytes.len() - 1) as f64) * flip_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let rec = read_records(&path).expect("total: bit rot is not an I/O error");
        // Which record was hit?
        let damaged = (0..payloads.len())
            .find(|&i| pos < record_offset(&payloads, i + 1))
            .unwrap();
        prop_assert!(rec.records.len() <= payloads.len());
        prop_assert_eq!(&rec.records[..], &payloads[..rec.records.len()]);
        prop_assert!(
            rec.records.len() >= damaged,
            "flip at byte {pos} (record {damaged}) destroyed earlier records: \
             only {} of {} survived",
            rec.records.len(),
            payloads.len()
        );
        std::fs::remove_file(&path).ok();
    }

    /// Garbage appended past the sealed log never becomes a record: the
    /// original stream reads back intact and the tail reads as torn.
    #[test]
    fn appended_garbage_reads_as_torn_tail(
        (payloads, garbage) in (arb_payloads(), proptest::collection::vec(any::<u8>(), 1..64))
    ) {
        let path = tmp("garbage", 2);
        let mut bytes = write_log(&path, &payloads);
        let clean_len = bytes.len();
        bytes.extend_from_slice(&garbage);
        std::fs::write(&path, &bytes).unwrap();

        let rec = read_records(&path).expect("total");
        prop_assert_eq!(&rec.records, &payloads);
        prop_assert_eq!(rec.valid_len as usize, clean_len);
        prop_assert!(rec.torn);
        std::fs::remove_file(&path).ok();
    }

    /// Reopening a damaged log truncates exactly the torn tail, and
    /// appends then resume from the clean boundary: old prefix + new
    /// records read back with no seam.
    #[test]
    fn reopen_truncates_tear_and_appends_cleanly(
        (payloads, cut_frac, fresh) in (
            arb_payloads(),
            0.0f64..1.0,
            proptest::collection::vec(any::<u8>(), 0..32),
        )
    ) {
        let path = tmp("reopen", 3);
        let bytes = write_log(&path, &payloads);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let (mut wal, recovered) = Wal::open_for_append(&path, FsyncPolicy::Off).unwrap();
        let intact = recovered.len();
        prop_assert_eq!(&recovered, &payloads[..intact].to_vec());
        wal.append(&fresh);
        wal.seal().unwrap();
        drop(wal);

        let rec = read_records(&path).expect("total");
        let mut want = payloads[..intact].to_vec();
        want.push(fresh);
        prop_assert_eq!(&rec.records, &want);
        prop_assert!(!rec.torn, "reopen must leave no torn bytes behind");
        std::fs::remove_file(&path).ok();
    }

    /// Power-cut oracle for the group-commit policies: append one
    /// record per commit point under `EveryN(n)` or
    /// `Window { max_bytes }`, then emulate the cut by truncating the
    /// file to `synced_len` (an abrupt *process* kill keeps OS-buffered
    /// bytes; losing power does not — only the fsynced prefix
    /// survives). Recovery must yield exactly the records the policy
    /// promised were durable: the commit points up to the last
    /// policy-triggered fsync, computed independently here, and
    /// `synced_len` must land on precisely that record boundary.
    #[test]
    fn power_cut_preserves_exactly_the_fsynced_prefix(
        (payloads, pick, n, max_bytes) in (
            arb_payloads(),
            any::<bool>(),
            2u32..5,
            16usize..128,
        )
    ) {
        let path = tmp("powercut", 4);
        let policy = if pick {
            FsyncPolicy::EveryN(n)
        } else {
            FsyncPolicy::Window {
                max_delay: std::time::Duration::from_secs(3600),
                max_bytes,
            }
        };
        let mut wal = Wal::create(&path, policy).unwrap();
        // Replay the policy's own promise alongside the appends.
        let mut durable = 0usize; // records covered by the last fsync
        let mut pending = 0usize; // commit points since it (EveryN)
        let mut unsynced = 0usize; // bytes since it (Window)
        for (i, p) in payloads.iter().enumerate() {
            wal.append(p);
            wal.commit_point().unwrap();
            match policy {
                FsyncPolicy::EveryN(n) => {
                    pending += 1;
                    if pending == n as usize {
                        pending = 0;
                        durable = i + 1;
                    }
                }
                FsyncPolicy::Window { max_bytes, .. } => {
                    unsynced += RECORD_HEADER_LEN + p.len();
                    if unsynced >= max_bytes {
                        unsynced = 0;
                        durable = i + 1;
                    }
                }
                _ => unreachable!(),
            }
        }
        let synced = wal.synced_len();
        prop_assert_eq!(
            synced as usize,
            record_offset(&payloads, durable),
            "fsync must land exactly on the policy's record boundary"
        );
        drop(wal); // kill -9: no seal, no flush
        // The power cut: everything past the last fsync evaporates.
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(synced).unwrap();
        drop(file);

        let rec = read_records(&path).expect("total");
        prop_assert_eq!(&rec.records, &payloads[..durable].to_vec());
        prop_assert!(!rec.torn, "the fsynced prefix has no torn bytes");
        std::fs::remove_file(&path).ok();
    }
}
