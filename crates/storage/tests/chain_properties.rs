//! Property-based tests for version chains: LWW ordering, visibility and
//! GC invariants under arbitrary insertion orders.
//!
//! The binary-search read path is checked against a **naive linear-scan
//! oracle** (`iter().filter(admits).max_by_key(order_key)`): for every
//! randomized insertion order — including commit-timestamp ties broken by
//! `(dc, tx)` — and every bound shape (`at_most`, `bist`, `vector`), the
//! indexed `latest_visible`/`collect` must agree with the oracle exactly.

use proptest::prelude::*;
use wren_clock::{Timestamp, VersionVector};
use wren_storage::{MvStore, SnapshotBound, VersionChain, Versioned};

#[derive(Clone, Debug, PartialEq)]
struct V {
    ct: u64,
    sr: u8,
    tx: u64,
    rdt: u64,
}

impl Versioned for V {
    fn order_key(&self) -> (Timestamp, u8, u64) {
        (Timestamp::from_micros(self.ct), self.sr, self.tx)
    }

    fn remote_dep(&self) -> Timestamp {
        Timestamp::from_micros(self.rdt)
    }
}

fn ts(micros: u64) -> Timestamp {
    Timestamp::from_micros(micros)
}

/// Narrow domains on purpose: commit-timestamp ties (resolved by `(dc,
/// tx)`) must actually occur. A strategy-level post-pass makes every
/// transaction id unique, as in the real system — `(ct, sr, tx)` is a
/// globally unique key there, and full-key duplicates would make "which
/// equal-key twin survives" observable noise in the oracle comparison.
fn arb_versions(max: usize) -> impl Strategy<Value = Vec<V>> {
    proptest::collection::vec(
        (0u64..500, 0u8..3, 0u64..8, 0u64..500)
            .prop_map(|(ct, sr, tx, rdt)| V { ct, sr, tx, rdt: rdt.min(ct) }),
        1..max,
    )
    .prop_map(|mut versions| {
        for (i, v) in versions.iter_mut().enumerate() {
            // Keep the low bits random (ties exercised), high bits unique.
            v.tx += (i as u64) << 3;
        }
        versions
    })
}

/// The linear-scan oracle: the LWW-max among versions a bound admits.
fn oracle<'a>(versions: &'a [V], bound: &SnapshotBound<'_>) -> Option<&'a V> {
    versions
        .iter()
        .filter(|v| bound.admits(&v.order_key(), v.remote_dep()))
        .max_by_key(|v| v.order_key())
}

fn build_chain(versions: &[V]) -> VersionChain<V> {
    let mut chain = VersionChain::new();
    for v in versions {
        chain.insert(v.clone());
    }
    chain
}

proptest! {
    /// Whatever the insertion order, the chain is sorted newest-first by
    /// the LWW key, and `newest` is the global maximum.
    #[test]
    fn chain_is_always_lww_sorted(versions in arb_versions(40)) {
        let chain = build_chain(&versions);
        let keys: Vec<_> = chain.iter().map(Versioned::order_key).collect();
        for w in keys.windows(2) {
            prop_assert!(w[0] >= w[1], "chain out of order: {:?}", keys);
        }
        let max = versions.iter().map(Versioned::order_key).max().unwrap();
        prop_assert_eq!(chain.newest().unwrap().order_key(), max);
    }

    /// Binary-search `latest_visible` matches the linear-scan oracle for
    /// plain commit-timestamp cutoffs.
    #[test]
    fn latest_visible_matches_oracle_at_most(
        versions in arb_versions(40),
        cutoff in 0u64..500,
    ) {
        let chain = build_chain(&versions);
        let bound = SnapshotBound::at_most(ts(cutoff));
        let visible = chain.latest_visible(&bound);
        let expected = oracle(&versions, &bound);
        match (visible, expected) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert_eq!(a.order_key(), b.order_key()),
            (a, b) => prop_assert!(false, "mismatch: {:?} vs {:?}", a, b),
        }
    }

    /// Binary-search `latest_visible` matches the oracle for Wren's BiST
    /// bounds, whose per-origin refinement is *not* a pure key prefix.
    #[test]
    fn latest_visible_matches_oracle_bist(
        versions in arb_versions(40),
        local_dc in 0u8..3,
        lt in 0u64..500,
        rt in 0u64..500,
    ) {
        let chain = build_chain(&versions);
        let bound = SnapshotBound::bist(local_dc, ts(lt), ts(rt));
        let visible = chain.latest_visible(&bound);
        let expected = oracle(&versions, &bound);
        match (visible, expected) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert_eq!(a.order_key(), b.order_key()),
            (a, b) => prop_assert!(false, "mismatch: {:?} vs {:?}", a, b),
        }
    }

    /// Binary-search `latest_visible` matches the oracle for Cure's
    /// vector bounds.
    #[test]
    fn latest_visible_matches_oracle_vector(
        versions in arb_versions(40),
        e0 in 0u64..500,
        e1 in 0u64..500,
        e2 in 0u64..500,
    ) {
        let chain = build_chain(&versions);
        let vv = VersionVector::from_entries(vec![ts(e0), ts(e1), ts(e2)]);
        let bound = SnapshotBound::vector(&vv);
        let visible = chain.latest_visible(&bound);
        let expected = oracle(&versions, &bound);
        match (visible, expected) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert_eq!(a.order_key(), b.order_key()),
            (a, b) => prop_assert!(false, "mismatch: {:?} vs {:?}", a, b),
        }
    }

    /// `collect` drops exactly the versions older than the oracle's
    /// newest-visible version, for every bound shape.
    #[test]
    fn collect_matches_oracle(
        versions in arb_versions(40),
        local_dc in 0u8..3,
        lt in 0u64..500,
        rt in 0u64..500,
    ) {
        let mut chain = build_chain(&versions);
        let bound = SnapshotBound::bist(local_dc, ts(lt), ts(rt));
        let expected_keep = match oracle(&versions, &bound) {
            // Keep the newest visible and everything newer.
            Some(newest_visible) => {
                let pivot = newest_visible.order_key();
                versions.iter().filter(|v| v.order_key() >= pivot).count()
            }
            // Nothing visible: everything is retained.
            None => versions.len(),
        };
        let removed = chain.collect(&bound);
        prop_assert_eq!(chain.len(), expected_keep);
        prop_assert_eq!(removed, versions.len() - expected_keep);
    }

    /// After GC at any watermark, every read at a snapshot at or above the
    /// watermark returns the same result as before GC.
    #[test]
    fn gc_preserves_reads_at_or_above_watermark(
        versions in arb_versions(40),
        watermark in 0u64..500,
        probe in 0u64..500,
    ) {
        let mut chain = build_chain(&versions);
        let probe = probe.max(watermark); // only snapshots ≥ watermark are promised
        let before = chain.latest_visible(&SnapshotBound::at_most(ts(probe))).cloned();
        chain.collect(&SnapshotBound::at_most(ts(watermark)));
        let after = chain.latest_visible(&SnapshotBound::at_most(ts(probe))).cloned();
        prop_assert_eq!(before, after);
    }

    /// GC never removes the newest version and never leaves the chain in
    /// an unsorted state.
    #[test]
    fn gc_keeps_newest_and_order(
        versions in arb_versions(40),
        watermark in 0u64..500,
    ) {
        let mut chain = build_chain(&versions);
        let newest_before = chain.newest().unwrap().order_key();
        chain.collect(&SnapshotBound::at_most(ts(watermark)));
        prop_assert_eq!(chain.newest().unwrap().order_key(), newest_before);
        let keys: Vec<_> = chain.iter().map(Versioned::order_key).collect();
        for w in keys.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// Store-level: stats track contents; collect sums per-chain removals.
    #[test]
    fn store_stats_are_consistent(
        keys in proptest::collection::vec(0u64..8, 1..60),
        versions in arb_versions(60),
        watermark in 0u64..500,
    ) {
        let inserts: Vec<(u64, V)> = keys
            .iter()
            .zip(versions.iter().cycle())
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        let mut store: MvStore<u64, V> = MvStore::new();
        for (k, v) in &inserts {
            store.insert(*k, v.clone());
        }
        let before = store.stats();
        prop_assert_eq!(before.versions, inserts.len());
        let removed = store.collect(&SnapshotBound::at_most(ts(watermark)));
        let after = store.stats();
        prop_assert_eq!(after.versions + removed, before.versions);
        prop_assert_eq!(after.collected, removed as u64);
        let recount: usize = store.iter().map(|(_, c)| c.len()).sum();
        prop_assert_eq!(after.versions, recount);
    }
}
