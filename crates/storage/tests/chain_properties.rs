//! Property-based tests for version chains: LWW ordering, visibility and
//! GC invariants under arbitrary insertion orders.

use proptest::prelude::*;
use wren_clock::Timestamp;
use wren_storage::{MvStore, VersionChain, Versioned};

#[derive(Clone, Debug, PartialEq)]
struct V {
    ct: u64,
    sr: u8,
    tx: u64,
}

impl Versioned for V {
    fn order_key(&self) -> (Timestamp, u8, u64) {
        (Timestamp::from_micros(self.ct), self.sr, self.tx)
    }
}

fn arb_version() -> impl Strategy<Value = V> {
    (0u64..500, 0u8..3, 0u64..1000).prop_map(|(ct, sr, tx)| V { ct, sr, tx })
}

proptest! {
    /// Whatever the insertion order, the chain is sorted newest-first by
    /// the LWW key, and `newest` is the global maximum.
    #[test]
    fn chain_is_always_lww_sorted(versions in proptest::collection::vec(arb_version(), 1..40)) {
        let mut chain = VersionChain::new();
        for v in &versions {
            chain.insert(v.clone());
        }
        let keys: Vec<_> = chain.iter().map(Versioned::order_key).collect();
        for w in keys.windows(2) {
            prop_assert!(w[0] >= w[1], "chain out of order: {:?}", keys);
        }
        let max = versions.iter().map(Versioned::order_key).max().unwrap();
        prop_assert_eq!(chain.newest().unwrap().order_key(), max);
    }

    /// `latest_visible` returns exactly the LWW-max among versions
    /// passing the predicate.
    #[test]
    fn latest_visible_is_lww_max_of_predicate(
        versions in proptest::collection::vec(arb_version(), 1..40),
        cutoff in 0u64..500,
    ) {
        let mut chain = VersionChain::new();
        for v in &versions {
            chain.insert(v.clone());
        }
        let visible = chain.latest_visible(|v| v.ct <= cutoff);
        let expected = versions
            .iter()
            .filter(|v| v.ct <= cutoff)
            .max_by_key(|v| v.order_key());
        match (visible, expected) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert_eq!(a.order_key(), b.order_key()),
            (a, b) => prop_assert!(false, "mismatch: {:?} vs {:?}", a.map(|v| v.ct), b.map(|v| v.ct)),
        }
    }

    /// After GC at any watermark, every read at a snapshot at or above the
    /// watermark returns the same result as before GC.
    #[test]
    fn gc_preserves_reads_at_or_above_watermark(
        versions in proptest::collection::vec(arb_version(), 1..40),
        watermark in 0u64..500,
        probe in 0u64..500,
    ) {
        let mut chain = VersionChain::new();
        for v in &versions {
            chain.insert(v.clone());
        }
        let probe = probe.max(watermark); // only snapshots ≥ watermark are promised
        let before = chain.latest_visible(|v| v.ct <= probe).cloned();
        chain.collect(|v| v.ct <= watermark);
        let after = chain.latest_visible(|v| v.ct <= probe).cloned();
        prop_assert_eq!(before, after);
    }

    /// GC never removes the newest version and never leaves the chain in
    /// an unsorted state.
    #[test]
    fn gc_keeps_newest_and_order(
        versions in proptest::collection::vec(arb_version(), 1..40),
        watermark in 0u64..500,
    ) {
        let mut chain = VersionChain::new();
        for v in &versions {
            chain.insert(v.clone());
        }
        let newest_before = chain.newest().unwrap().order_key();
        chain.collect(|v| v.ct <= watermark);
        prop_assert_eq!(chain.newest().unwrap().order_key(), newest_before);
        let keys: Vec<_> = chain.iter().map(Versioned::order_key).collect();
        for w in keys.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// Store-level: stats track contents; collect sums per-chain removals.
    #[test]
    fn store_stats_are_consistent(
        inserts in proptest::collection::vec((0u64..8, arb_version()), 1..60),
        watermark in 0u64..500,
    ) {
        let mut store: MvStore<u64, V> = MvStore::new();
        for (k, v) in &inserts {
            store.insert(*k, v.clone());
        }
        let before = store.stats();
        prop_assert_eq!(before.versions, inserts.len());
        let removed = store.collect(|v| v.ct <= watermark);
        let after = store.stats();
        prop_assert_eq!(after.versions + removed, before.versions);
        prop_assert_eq!(after.collected, removed as u64);
    }
}
