use crate::{VersionChain, Versioned};
use std::collections::HashMap;
use std::hash::Hash;

/// Aggregate statistics of a store, for capacity and GC reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of keys with at least one version.
    pub keys: usize,
    /// Total versions currently retained.
    pub versions: usize,
    /// Total versions removed by garbage collection since creation.
    pub collected: u64,
}

/// One partition's worth of multi-versioned data: a map from key to
/// [`VersionChain`].
///
/// Generic over the key and the version type so Wren items (two scalar
/// timestamps) and Cure items (dependency vectors) share the same storage.
#[derive(Clone, Debug)]
pub struct MvStore<K, V> {
    chains: HashMap<K, VersionChain<V>>,
    collected: u64,
}

impl<K, V> Default for MvStore<K, V> {
    fn default() -> Self {
        MvStore {
            chains: HashMap::new(),
            collected: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, V: Versioned> MvStore<K, V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        MvStore {
            chains: HashMap::new(),
            collected: 0,
        }
    }

    /// Inserts a new version of `key`.
    pub fn insert(&mut self, key: K, version: V) {
        self.chains.entry(key).or_default().insert(version);
    }

    /// The newest version of `key` satisfying the snapshot predicate
    /// `visible`, or `None` if the key has no visible version.
    pub fn latest_visible<F: Fn(&V) -> bool>(&self, key: &K, visible: F) -> Option<&V> {
        self.chains.get(key).and_then(|c| c.latest_visible(visible))
    }

    /// The newest version of `key` outright.
    pub fn newest(&self, key: &K) -> Option<&V> {
        self.chains.get(key).and_then(|c| c.newest())
    }

    /// The full chain for `key`, if any version exists.
    pub fn chain(&self, key: &K) -> Option<&VersionChain<V>> {
        self.chains.get(key)
    }

    /// Runs garbage collection over every chain with the oldest-active-
    /// snapshot predicate (see [`VersionChain::collect`]). Returns the
    /// number of versions removed by this call.
    pub fn collect<F: Fn(&V) -> bool>(&mut self, visible_at_oldest: F) -> usize {
        let mut removed = 0;
        for chain in self.chains.values_mut() {
            removed += chain.collect(&visible_at_oldest);
        }
        self.collected += removed as u64;
        removed
    }

    /// Current statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            keys: self.chains.len(),
            versions: self.chains.values().map(|c| c.len()).sum(),
            collected: self.collected,
        }
    }

    /// Iterates over all `(key, chain)` pairs (e.g. for convergence
    /// checks in tests).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &VersionChain<V>)> {
        self.chains.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wren_clock::Timestamp;

    #[derive(Clone, Debug)]
    struct V(u64);
    impl Versioned for V {
        fn order_key(&self) -> (Timestamp, u8, u64) {
            (Timestamp::from_micros(self.0), 0, 0)
        }
    }

    #[test]
    fn insert_and_read_across_keys() {
        let mut s: MvStore<u64, V> = MvStore::new();
        s.insert(1, V(10));
        s.insert(1, V(20));
        s.insert(2, V(5));
        assert_eq!(s.newest(&1).unwrap().0, 20);
        assert_eq!(s.latest_visible(&1, |v| v.0 <= 15).unwrap().0, 10);
        assert!(s.latest_visible(&3, |_| true).is_none());
        assert_eq!(s.stats().keys, 2);
        assert_eq!(s.stats().versions, 3);
    }

    #[test]
    fn collect_reports_removed() {
        let mut s: MvStore<u64, V> = MvStore::new();
        for ct in [10, 20, 30] {
            s.insert(1, V(ct));
        }
        for ct in [15, 25] {
            s.insert(2, V(ct));
        }
        let removed = s.collect(|v| v.0 <= 26);
        // key 1: visible=20, drop 10 → 1 removed. key 2: visible=25, drop 15 → 1 removed.
        assert_eq!(removed, 2);
        assert_eq!(s.stats().collected, 2);
        assert_eq!(s.stats().versions, 3);
    }

    #[test]
    fn iter_visits_all_chains() {
        let mut s: MvStore<u64, V> = MvStore::new();
        s.insert(1, V(1));
        s.insert(2, V(2));
        assert_eq!(s.iter().count(), 2);
    }
}
