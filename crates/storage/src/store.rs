use crate::{FxBuildHasher, SnapshotBound, VersionChain, Versioned};
use std::collections::HashMap;
use std::hash::Hash;

/// Aggregate statistics of a store, for capacity and GC reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of keys with at least one version.
    pub keys: usize,
    /// Total versions currently retained.
    pub versions: usize,
    /// Total versions removed by garbage collection since creation.
    pub collected: u64,
}

/// One partition's worth of multi-versioned data: a map from key to
/// [`VersionChain`].
///
/// Generic over the key and the version type so Wren items (two scalar
/// timestamps) and Cure items (dependency vectors) share the same storage.
///
/// The map hashes with [`FxHasher`](crate::FxHasher) rather than the
/// standard library's SipHash: keys are workload integers, and the read
/// path is the system's hottest loop. The retained-version count is
/// maintained incrementally on [`insert`](MvStore::insert) /
/// [`collect`](MvStore::collect), so [`stats`](MvStore::stats) is O(1)
/// instead of a scan over every chain.
#[derive(Clone, Debug)]
pub struct MvStore<K, V> {
    chains: HashMap<K, VersionChain<V>, FxBuildHasher>,
    versions: usize,
    collected: u64,
    /// Reusable buffer for one key's run during [`apply_batch`]
    /// (capacity survives across calls, so steady-state batch apply
    /// allocates nothing).
    ///
    /// [`apply_batch`]: MvStore::apply_batch
    run_scratch: Vec<V>,
}

impl<K, V> Default for MvStore<K, V> {
    fn default() -> Self {
        MvStore {
            chains: HashMap::default(),
            versions: 0,
            collected: 0,
            run_scratch: Vec::new(),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Versioned> MvStore<K, V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        MvStore::default()
    }

    /// Inserts a new version of `key`.
    pub fn insert(&mut self, key: K, version: V) {
        self.chains.entry(key).or_default().insert(version);
        self.versions += 1;
    }

    /// Applies a batch of versions, splicing each key's run into its
    /// chain with one binary search and at most one bulk shift
    /// ([`VersionChain::apply_batch`]).
    ///
    /// `items` is drained (capacity kept for reuse). The batch is sorted
    /// once by `(key, order key)`; replication batches share one commit
    /// timestamp, so a key written by several transactions in the batch
    /// pays a single chain search instead of one per version. Returns the
    /// number of versions applied.
    pub fn apply_batch(&mut self, items: &mut Vec<(K, V)>) -> usize
    where
        K: Ord,
    {
        if items.is_empty() {
            return 0;
        }
        let applied = items.len();
        items.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.order_key().cmp(&b.1.order_key()))
        });
        let mut run = std::mem::take(&mut self.run_scratch);
        debug_assert!(run.is_empty());
        let mut drain = items.drain(..);
        let (mut cur_key, first) = drain.next().expect("non-empty checked");
        run.push(first);
        for (k, v) in drain {
            if k == cur_key {
                run.push(v);
            } else {
                let done_key = std::mem::replace(&mut cur_key, k);
                self.chains.entry(done_key).or_default().apply_batch(&mut run);
                run.push(v);
            }
        }
        self.chains.entry(cur_key).or_default().apply_batch(&mut run);
        self.run_scratch = run;
        self.versions += applied;
        applied
    }

    /// Inserts a version of `key` only if no version with the same LWW
    /// order key exists ([`VersionChain::insert_if_new`]). Returns
    /// whether the insert happened. Used by WAL replay, which may
    /// re-apply already-applied replication records.
    pub fn insert_if_new(&mut self, key: K, version: V) -> bool {
        let inserted = self.chains.entry(key).or_default().insert_if_new(version);
        if inserted {
            self.versions += 1;
        }
        inserted
    }

    /// The newest version of `key` inside the snapshot `bound`, or `None`
    /// if the key has no visible version.
    pub fn latest_visible(&self, key: &K, bound: &SnapshotBound<'_>) -> Option<&V> {
        self.chains.get(key).and_then(|c| c.latest_visible(bound))
    }

    /// The newest version of `key` outright.
    pub fn newest(&self, key: &K) -> Option<&V> {
        self.chains.get(key).and_then(|c| c.newest())
    }

    /// The full chain for `key`, if any version exists.
    pub fn chain(&self, key: &K) -> Option<&VersionChain<V>> {
        self.chains.get(key)
    }

    /// Runs garbage collection over every chain with the oldest-active-
    /// snapshot bound (see [`VersionChain::collect`]). Chains already at
    /// length ≤ 1 are skipped outright. Returns the number of versions
    /// removed by this call.
    pub fn collect(&mut self, oldest_snapshot: &SnapshotBound<'_>) -> usize {
        let mut removed = 0;
        for chain in self.chains.values_mut() {
            if chain.len() > 1 {
                removed += chain.collect(oldest_snapshot);
            }
        }
        self.versions -= removed;
        self.collected += removed as u64;
        removed
    }

    /// Current statistics (O(1): counters are maintained incrementally).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            keys: self.chains.len(),
            versions: self.versions,
            collected: self.collected,
        }
    }

    /// Iterates over all `(key, chain)` pairs (e.g. for convergence
    /// checks in tests).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &VersionChain<V>)> {
        self.chains.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wren_clock::Timestamp;

    #[derive(Clone, Debug)]
    struct V(u64);
    impl Versioned for V {
        fn order_key(&self) -> (Timestamp, u8, u64) {
            (Timestamp::from_micros(self.0), 0, 0)
        }
    }

    fn at_most(ct: u64) -> SnapshotBound<'static> {
        SnapshotBound::at_most(Timestamp::from_micros(ct))
    }

    #[test]
    fn insert_and_read_across_keys() {
        let mut s: MvStore<u64, V> = MvStore::new();
        s.insert(1, V(10));
        s.insert(1, V(20));
        s.insert(2, V(5));
        assert_eq!(s.newest(&1).unwrap().0, 20);
        assert_eq!(s.latest_visible(&1, &at_most(15)).unwrap().0, 10);
        assert!(s.latest_visible(&3, &SnapshotBound::all()).is_none());
        assert_eq!(s.stats().keys, 2);
        assert_eq!(s.stats().versions, 3);
    }

    #[test]
    fn collect_reports_removed() {
        let mut s: MvStore<u64, V> = MvStore::new();
        for ct in [10, 20, 30] {
            s.insert(1, V(ct));
        }
        for ct in [15, 25] {
            s.insert(2, V(ct));
        }
        let removed = s.collect(&at_most(26));
        // key 1: visible=20, drop 10 → 1 removed. key 2: visible=25, drop 15 → 1 removed.
        assert_eq!(removed, 2);
        assert_eq!(s.stats().collected, 2);
        assert_eq!(s.stats().versions, 3);
    }

    #[test]
    fn stats_stay_consistent_across_interleaved_inserts_and_collects() {
        let mut s: MvStore<u64, V> = MvStore::new();
        let mut expected_live = 0usize;
        let mut expected_collected = 0u64;
        for round in 0u64..8 {
            // Grow a few chains…
            for k in 0..4u64 {
                for i in 0..5u64 {
                    s.insert(k, V(round * 100 + i * 10));
                    expected_live += 1;
                }
            }
            // …then GC at a watermark inside this round's versions.
            let removed = s.collect(&at_most(round * 100 + 25));
            expected_live -= removed;
            expected_collected += removed as u64;
            let stats = s.stats();
            assert_eq!(stats.versions, expected_live, "round {round}");
            assert_eq!(stats.collected, expected_collected, "round {round}");
            // The incremental count must equal a full recount.
            let recount: usize = s.iter().map(|(_, c)| c.len()).sum();
            assert_eq!(stats.versions, recount, "round {round}");
        }
    }

    #[test]
    fn iter_visits_all_chains() {
        let mut s: MvStore<u64, V> = MvStore::new();
        s.insert(1, V(1));
        s.insert(2, V(2));
        assert_eq!(s.iter().count(), 2);
    }
}
