//! Checkpoint files: atomically-written snapshots that bound WAL
//! replay.
//!
//! Sits between the byte-level [`wal`](crate::wal) and the typed
//! durability layer in `wren-core`: a checkpoint here is an opaque
//! payload (the core layer encodes the full server state into it) with
//! enough framing to make two things true:
//!
//! 1. **A checkpoint is valid or invisible.** The file is written to a
//!    temp name, CRC'd, end-marked, fsynced, then renamed into place
//!    (and the directory fsynced), so a crash mid-write leaves either
//!    the old generation or a complete new one — never a half file.
//! 2. **A corrupt checkpoint falls back, not forward.** Loading scans
//!    generations newest-first and takes the first one that passes the
//!    magic/CRC/end-marker checks; [`prune_generations`] therefore
//!    always keeps one older generation around as the fallback.
//!
//! File layout (little-endian):
//! `[magic u32][seq u64][payload_len u64][crc u32][payload][end magic u32]`.
//!
//! Generations pair with WAL files by sequence number: `ckpt.N`
//! captures all state up to the moment `wal.N` began, so recovery is
//! "load newest valid `ckpt.N`, replay `wal.N`" (plus any newer log
//! whose checkpoint never completed).

use crate::wal::{crc32, MAX_RECORD_LEN};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// First bytes of a checkpoint file.
const MAGIC: u32 = 0x57C4_0001; // "Wren Checkpoint v1"
/// Trailing marker proving the payload was written to the end.
const END_MAGIC: u32 = 0x57C4_EE0F;
/// Fixed header bytes ahead of the payload.
const HEADER_LEN: usize = 4 + 8 + 8 + 4;

/// Name of checkpoint generation `seq` inside a durability directory.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt.{seq}"))
}

/// Name of WAL generation `seq` inside a durability directory.
pub fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal.{seq}"))
}

/// Atomically writes checkpoint generation `seq` with the given opaque
/// payload: temp file + CRC + end marker + fsync + rename + directory
/// fsync.
pub fn write_checkpoint(dir: &Path, seq: u64, payload: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(format!("ckpt.{seq}.tmp"));
    let final_path = checkpoint_path(dir, seq);
    {
        let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.extend_from_slice(&seq.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(payload).to_le_bytes());
        f.write_all(&header)?;
        f.write_all(payload)?;
        f.write_all(&END_MAGIC.to_le_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &final_path)?;
    // Make the rename itself durable.
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Reads checkpoint generation `seq`, returning its payload — or `None`
/// if the file is missing, truncated, oversized, mis-CRC'd or lacks the
/// end marker. Total: corruption is a `None`, never a panic.
pub fn read_checkpoint(dir: &Path, seq: u64) -> Option<Vec<u8>> {
    let mut f = File::open(checkpoint_path(dir, seq)).ok()?;
    let file_len = f.metadata().ok()?.len();
    if file_len < (HEADER_LEN + 4) as u64 {
        return None;
    }
    let mut header = [0u8; HEADER_LEN];
    f.read_exact(&mut header).ok()?;
    if u32::from_le_bytes(header[..4].try_into().unwrap()) != MAGIC {
        return None;
    }
    if u64::from_le_bytes(header[4..12].try_into().unwrap()) != seq {
        return None;
    }
    let payload_len = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let crc = u32::from_le_bytes(header[20..24].try_into().unwrap());
    // Checkpoints hold a whole store, so allow a larger budget than one
    // WAL record — but still bounded, and checked against the actual
    // file length before allocating.
    if payload_len > 64 * MAX_RECORD_LEN as u64
        || (HEADER_LEN as u64 + payload_len + 4) != file_len
    {
        return None;
    }
    let mut payload = vec![0u8; payload_len as usize];
    f.read_exact(&mut payload).ok()?;
    let mut end = [0u8; 4];
    f.read_exact(&mut end).ok()?;
    if u32::from_le_bytes(end) != END_MAGIC || crc32(&payload) != crc {
        return None;
    }
    Some(payload)
}

/// Lists the checkpoint generation numbers present in `dir`, ascending.
pub fn list_generations(dir: &Path) -> Vec<u64> {
    let mut seqs = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return seqs };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name.strip_prefix("ckpt.") {
            if let Ok(seq) = seq.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    seqs
}

/// Loads the newest *valid* checkpoint in `dir`: scans generations
/// newest-first, skipping any that fail validation. Returns
/// `(seq, payload)`.
pub fn load_latest(dir: &Path) -> Option<(u64, Vec<u8>)> {
    for seq in list_generations(dir).into_iter().rev() {
        if let Some(payload) = read_checkpoint(dir, seq) {
            return Some((seq, payload));
        }
    }
    None
}

/// Deletes checkpoint + WAL generations older than `keep_from` (i.e.
/// everything with `seq < keep_from`). Callers pass `latest - 1` so the
/// previous generation survives as the corruption fallback.
///
/// The sweep walks the directory listing itself rather than the
/// checkpoint index, so it also reclaims what a checkpoint-driven scan
/// would orphan forever:
///
/// * **WAL generations whose checkpoint never existed** (the initial
///   `wal.0`, or a `wal.N` whose `ckpt.N` crashed before the rename) —
///   once `keep_from` passes them, their contents are fully covered by
///   a newer checkpoint, so they are dead weight;
/// * **leftover `ckpt.N.tmp` files** from a crash mid-write: never
///   renamed into place, invisible to recovery, referenced by nothing.
///   (A live tmp can't be caught: [`write_checkpoint`] renames its tmp
///   away before any caller prunes, and a durability directory has one
///   writer.)
pub fn prune_generations(dir: &Path, keep_from: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let dead = if name.starts_with("ckpt.") && name.ends_with(".tmp") {
            true
        } else if let Some(seq) = name.strip_prefix("ckpt.").and_then(|s| s.parse::<u64>().ok()) {
            seq < keep_from
        } else if let Some(seq) = name.strip_prefix("wal.").and_then(|s| s.parse::<u64>().ok()) {
            seq < keep_from
        } else {
            false
        };
        if dead {
            std::fs::remove_file(entry.path()).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wren-ckpt-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmp_dir("round-trip");
        write_checkpoint(&dir, 3, b"snapshot-bytes").unwrap();
        assert_eq!(read_checkpoint(&dir, 3).unwrap(), b"snapshot-bytes");
        assert_eq!(load_latest(&dir).unwrap(), (3, b"snapshot-bytes".to_vec()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        write_checkpoint(&dir, 1, b"old-but-good").unwrap();
        write_checkpoint(&dir, 2, b"new-and-doomed").unwrap();
        // Flip a payload byte in generation 2.
        let p = checkpoint_path(&dir, 2);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[HEADER_LEN + 2] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(read_checkpoint(&dir, 2), None);
        assert_eq!(load_latest(&dir).unwrap(), (1, b"old-but-good".to_vec()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_checkpoint_is_invisible() {
        let dir = tmp_dir("truncated");
        write_checkpoint(&dir, 7, &[9u8; 4096]).unwrap();
        let p = checkpoint_path(&dir, 7);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(read_checkpoint(&dir, 7), None);
        assert_eq!(load_latest(&dir), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_sweeps_orphan_wals_and_leftover_tmps() {
        let dir = tmp_dir("orphans");
        // Generation 0 never had a checkpoint (the initial WAL), and a
        // crash mid-write of generation 2 left its tmp behind.
        std::fs::write(wal_path(&dir, 0), b"orphan").unwrap();
        write_checkpoint(&dir, 1, b"one").unwrap();
        std::fs::write(wal_path(&dir, 1), b"").unwrap();
        std::fs::write(dir.join("ckpt.2.tmp"), b"half-written").unwrap();
        write_checkpoint(&dir, 2, b"two").unwrap();
        std::fs::write(wal_path(&dir, 2), b"").unwrap();
        // Unrelated files survive the sweep untouched.
        std::fs::write(dir.join("notes.txt"), b"keep me").unwrap();

        prune_generations(&dir, 1); // keep 1 (fallback) and 2
        assert!(!wal_path(&dir, 0).exists(), "orphan wal.0 must be swept");
        assert!(!dir.join("ckpt.2.tmp").exists(), "leftover tmp must be swept");
        assert_eq!(list_generations(&dir), vec![1, 2]);
        assert!(wal_path(&dir, 1).exists());
        assert!(wal_path(&dir, 2).exists());
        assert!(dir.join("notes.txt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_fallback_generation() {
        let dir = tmp_dir("prune");
        for seq in 1..=4u64 {
            write_checkpoint(&dir, seq, &[seq as u8]).unwrap();
            std::fs::write(wal_path(&dir, seq), b"").unwrap();
        }
        prune_generations(&dir, 3); // keep 3 and 4 (+ their WALs)
        assert_eq!(list_generations(&dir), vec![3, 4]);
        assert!(!wal_path(&dir, 2).exists());
        assert!(wal_path(&dir, 3).exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
