//! Write-ahead log: CRC-framed, length-prefixed records on disk.
//!
//! This module is the bottom layer of the durability stack, and it is
//! deliberately **byte-oriented**: it knows nothing about the Wren
//! protocol. The layering mirrors `wren-net`'s sans-io split:
//!
//! * **`wal` (here)** — append-only record files. Each record is
//!   `[u32 len][u32 crc32][payload]`, little-endian, with the CRC taken
//!   over the payload alone. Reading is *total*: a torn tail, a bad
//!   length, garbage bytes or a flipped bit never panic — the reader
//!   returns the longest prefix of valid records plus the offset where
//!   validity ended, and [`Wal::open_for_append`] truncates the tail so
//!   the next append continues from a clean boundary.
//! * **[`checkpoint`](crate::checkpoint)** — atomically-written
//!   snapshot files that bound how much log must be replayed.
//! * **`wren-core::durability`** — the typed record set (commits,
//!   replication batches, stable advances) encoded with the protocol
//!   codec, plus replay that rebuilds a server atop the newest
//!   checkpoint.
//!
//! Group commit is expressed through [`Wal::commit_point`]: appends
//! accumulate in a user-space buffer and a commit point makes them
//! durable according to the [`FsyncPolicy`] — every point
//! (`Always`), every nth point (`EveryN`), within a time/byte window
//! (`Window`), or only at [`Wal::seal`] (`Off`). Under `Window` the
//! bytes go to the OS at each commit point but the fsync is *deferred*:
//! the caller holds the acknowledgements, polls
//! [`Wal::sync_deadline`], and closes the window with
//! [`Wal::sync_now`] — one fsync amortized across every commit point
//! the window collected (the count lands in the `group_commit_size`
//! histogram, see [`Wal::instrument`]). Dropping a `Wal` without
//! sealing deliberately does **not** flush: that is exactly the
//! abrupt-kill semantics crash tests rely on.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Hard ceiling on one WAL record's payload (and, via the alias in
/// `wren_protocol::frame::MAX_FRAME_LEN`, on one wire frame). A length
/// prefix above this is rejected *before* any buffering, so a corrupt
/// or hostile length field can never drive an allocation.
pub const MAX_RECORD_LEN: usize = 64 * 1024 * 1024;

/// Bytes of record header: `u32` length + `u32` CRC.
pub const RECORD_HEADER_LEN: usize = 8;

/// Soft cap on the user-space buffer between syncs (under
/// [`FsyncPolicy::Off`] and between the group commits of
/// [`FsyncPolicy::EveryN`]): past this, a commit point writes the
/// buffer to the OS (without syncing) so a rarely-syncing log cannot
/// grow memory without bound.
const BUFFER_CAP: usize = 8 * 1024 * 1024;

/// When a batch of appends becomes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Write + fsync at every commit point. No acknowledged record is
    /// ever lost to an abrupt kill.
    Always,
    /// Write + fsync at every `n`th commit point (group commit): up to
    /// `n - 1` acknowledged commit points may be lost on a kill.
    EveryN(u32),
    /// Group commit by **window**: each commit point hands its bytes to
    /// the OS immediately, but the fsync is deferred until either
    /// `max_bytes` of unsynced records accumulate or `max_delay` passes
    /// since the first unsynced commit point — whichever comes first.
    /// The *caller* closes the time edge: it polls
    /// [`Wal::sync_deadline`] and calls [`Wal::sync_now`] when the
    /// deadline fires, holding acknowledgements until then. Nothing
    /// acknowledged after a sync is lost to a kill, because nothing is
    /// acknowledged before its sync.
    Window {
        /// Longest a commit point may wait for its fsync.
        max_delay: Duration,
        /// Unsynced bytes that force an immediate fsync.
        max_bytes: usize,
    },
    /// Only seal/rotation flushes. Fastest; a kill loses everything
    /// since the last seal or checkpoint.
    Off,
}

/// An append-only record log backed by one file.
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Records appended but not yet handed to the OS.
    buf: Vec<u8>,
    /// Commit points since the last flush (for [`FsyncPolicy::EveryN`]).
    points: u32,
    /// Commit points folded into the next fsync, across every policy —
    /// the group-commit size recorded at each sync.
    points_since_sync: u64,
    /// Bytes handed to the OS (written, synced or not).
    written_len: u64,
    /// Durable log length in bytes (what a reader would recover).
    synced_len: u64,
    /// When the first unsynced commit point of the open window landed
    /// (for [`FsyncPolicy::Window`]); `None` when no window is open.
    window_since: Option<Instant>,
    /// Optional instrumentation (see [`Wal::instrument`]).
    fsync_micros: Option<wren_obs::Histogram>,
    append_bytes: Option<wren_obs::Histogram>,
    group_commit_size: Option<wren_obs::Histogram>,
}

/// CRC-32 (IEEE 802.3, the `crc32` of zlib/gzip) over `bytes`.
/// Hand-rolled table-driven implementation — no dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: [u32; 256] = build_crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

impl Wal {
    /// Creates a fresh, empty log at `path`, truncating any existing
    /// file.
    pub fn create(path: impl Into<PathBuf>, policy: FsyncPolicy) -> std::io::Result<Wal> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Wal {
            file,
            path,
            policy,
            buf: Vec::new(),
            points: 0,
            points_since_sync: 0,
            written_len: 0,
            synced_len: 0,
            window_since: None,
            fsync_micros: None,
            append_bytes: None,
            group_commit_size: None,
        })
    }

    /// Opens an existing log for appending, first scanning it with
    /// [`read_records`] and **truncating the torn tail** (anything after
    /// the last valid record) so appends resume from a clean boundary.
    ///
    /// Returns the recovered record payloads along with the log.
    pub fn open_for_append(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> std::io::Result<(Wal, Vec<Vec<u8>>)> {
        let path = path.into();
        let recovered = read_records(&path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(false) // set_len below trims exactly the torn tail
            .open(&path)?;
        file.set_len(recovered.valid_len)?;
        file.sync_all()?;
        file.seek(SeekFrom::End(0))?;
        let synced_len = recovered.valid_len;
        Ok((
            Wal {
                file,
                path,
                policy,
                buf: Vec::new(),
                points: 0,
                points_since_sync: 0,
                written_len: synced_len,
                synced_len,
                window_since: None,
                fsync_micros: None,
                append_bytes: None,
                group_commit_size: None,
            },
            recovered.records,
        ))
    }

    /// Appends one record (buffered; durable only after a commit point
    /// under the policy, or [`Wal::seal`]).
    ///
    /// Panics if `payload` exceeds [`MAX_RECORD_LEN`] — the typed layer
    /// above chunks its batches well below the ceiling.
    pub fn append(&mut self, payload: &[u8]) {
        assert!(
            payload.len() <= MAX_RECORD_LEN,
            "WAL record of {} bytes exceeds MAX_RECORD_LEN ({MAX_RECORD_LEN})",
            payload.len()
        );
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        if let Some(h) = &self.append_bytes {
            h.record(payload.len() as u64);
        }
    }

    /// Attaches latency/size instrumentation: `fsync_micros` records
    /// each synchronous flush (write + fsync) in microseconds,
    /// `append_bytes` each appended record's payload size, and
    /// `group_commit_size` how many commit points each fsync made
    /// durable at once (1 under `Always`, `n` under `EveryN`, variable
    /// under `Window`). Recording is lock-free and uninstrumented logs
    /// pay one `Option` branch.
    pub fn instrument(
        &mut self,
        fsync_micros: wren_obs::Histogram,
        append_bytes: wren_obs::Histogram,
        group_commit_size: wren_obs::Histogram,
    ) {
        self.fsync_micros = Some(fsync_micros);
        self.append_bytes = Some(append_bytes);
        self.group_commit_size = Some(group_commit_size);
    }

    /// Marks a commit point: everything appended so far is eligible to
    /// become durable, per the fsync policy.
    pub fn commit_point(&mut self) -> std::io::Result<()> {
        self.points_since_sync += 1;
        match self.policy {
            FsyncPolicy::Always => self.flush(true),
            FsyncPolicy::EveryN(n) => {
                self.points += 1;
                if self.points >= n.max(1) {
                    self.points = 0;
                    self.flush(true)
                } else if self.buf.len() > BUFFER_CAP {
                    // Same memory backstop as `Off`: huge commit points
                    // must not pile up in user space waiting for the
                    // nth — hand them to the OS unsynced.
                    self.flush(false)
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Window { max_bytes, .. } => {
                // Bytes reach the OS at every commit point; only the
                // fsync is deferred.
                self.flush(false)?;
                if self.written_len - self.synced_len >= max_bytes as u64 {
                    self.flush(true)
                } else {
                    if self.window_since.is_none() {
                        self.window_since = Some(Instant::now());
                    }
                    Ok(())
                }
            }
            FsyncPolicy::Off => {
                if self.buf.len() > BUFFER_CAP {
                    self.flush(false)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// When the open group-commit window must be closed with
    /// [`Wal::sync_now`] (only under [`FsyncPolicy::Window`]). `None`
    /// when every acknowledged-to-be-committed byte is already synced.
    pub fn sync_deadline(&self) -> Option<Instant> {
        match self.policy {
            FsyncPolicy::Window { max_delay, .. } => {
                self.window_since.map(|since| since + max_delay)
            }
            _ => None,
        }
    }

    /// Forces an fsync of everything written so far, closing any open
    /// group-commit window. The policy is unchanged; this is the
    /// deadline edge of [`FsyncPolicy::Window`].
    pub fn sync_now(&mut self) -> std::io::Result<()> {
        self.flush(true)
    }

    /// Writes the buffer to the OS; `sync` additionally fsyncs.
    fn flush(&mut self, sync: bool) -> std::io::Result<()> {
        let start = self.fsync_micros.is_some().then(std::time::Instant::now);
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.written_len += self.buf.len() as u64;
            self.buf.clear();
        }
        if sync {
            self.file.sync_data()?;
            self.synced_len = self.file.stream_position()?;
            self.window_since = None;
            if let (Some(h), Some(t)) = (&self.fsync_micros, start) {
                h.record(t.elapsed().as_micros() as u64);
            }
            if self.points_since_sync > 0 {
                if let Some(h) = &self.group_commit_size {
                    h.record(self.points_since_sync);
                }
                self.points_since_sync = 0;
            }
        }
        Ok(())
    }

    /// Flushes and fsyncs everything buffered, regardless of policy.
    /// A sealed log loses nothing; this is the graceful-stop path.
    pub fn seal(&mut self) -> std::io::Result<()> {
        // Flush first: if the sync fails, `points` still reflects the
        // pending commit points so a retried seal (or a later EveryN
        // commit point) does not silently stretch the group.
        self.flush(true)?;
        self.points = 0;
        Ok(())
    }

    /// Bytes known durable (fsynced). What an abrupt kill preserves.
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Bytes handed to the OS but not yet fsynced — acknowledged under
    /// `EveryN`, held-unacknowledged under `Window`; either way lost to
    /// a power cut (though not to a mere process kill).
    pub fn unsynced_len(&self) -> u64 {
        self.written_len - self.synced_len
    }

    /// Bytes sitting in the user-space buffer — lost on an abrupt kill.
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Outcome of scanning a log file: the valid-prefix records and where
/// the prefix ends.
pub struct RecoveredLog {
    /// Payloads of every valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset at which validity ended (`file length` iff the log
    /// is wholly intact).
    pub valid_len: u64,
    /// True if bytes past `valid_len` existed (torn tail / corruption).
    pub torn: bool,
}

/// Reads every valid record from the file at `path`. **Total**: any
/// corruption — truncated header, truncated payload, length above
/// [`MAX_RECORD_LEN`], CRC mismatch, trailing garbage — terminates the
/// scan at the last valid record instead of failing. A missing file
/// reads as an empty log.
pub fn read_records(path: impl AsRef<Path>) -> std::io::Result<RecoveredLog> {
    let mut file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(RecoveredLog { records: Vec::new(), valid_len: 0, torn: false })
        }
        Err(e) => return Err(e),
    };
    let file_len = file.metadata()?.len();
    let mut records = Vec::new();
    let mut offset = 0u64;
    let mut header = [0u8; RECORD_HEADER_LEN];
    loop {
        if offset + RECORD_HEADER_LEN as u64 > file_len {
            break;
        }
        file.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        // Oversized length ⇒ reject before allocating or reading the
        // payload (shared guard with the frame decoder).
        if len > MAX_RECORD_LEN {
            break;
        }
        if offset + (RECORD_HEADER_LEN + len) as u64 > file_len {
            break;
        }
        let mut payload = vec![0u8; len];
        file.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            break;
        }
        offset += (RECORD_HEADER_LEN + len) as u64;
        records.push(payload);
    }
    Ok(RecoveredLog { records, valid_len: offset, torn: offset != file_len })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wren-wal-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_seal_read_round_trip() {
        let path = tmp("round-trip");
        let mut wal = Wal::create(&path, FsyncPolicy::Off).unwrap();
        wal.append(b"alpha");
        wal.append(b"");
        wal.append(&[7u8; 1000]);
        wal.commit_point().unwrap();
        wal.seal().unwrap();
        let log = read_records(&path).unwrap();
        assert!(!log.torn);
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.records[0], b"alpha");
        assert_eq!(log.records[1], b"");
        assert_eq!(log.records[2], vec![7u8; 1000]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsealed_buffer_is_lost_under_off() {
        let path = tmp("lost-buffer");
        let mut wal = Wal::create(&path, FsyncPolicy::Off).unwrap();
        wal.append(b"volatile");
        wal.commit_point().unwrap();
        drop(wal); // abrupt kill: no seal
        let log = read_records(&path).unwrap();
        assert!(log.records.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn always_policy_survives_drop() {
        let path = tmp("always");
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        wal.append(b"durable");
        wal.commit_point().unwrap();
        assert_eq!(wal.buffered_len(), 0);
        drop(wal);
        let log = read_records(&path).unwrap();
        assert_eq!(log.records, vec![b"durable".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_n_groups_commits() {
        let path = tmp("every-n");
        let mut wal = Wal::create(&path, FsyncPolicy::EveryN(3)).unwrap();
        for i in 0..5u8 {
            wal.append(&[i]);
            wal.commit_point().unwrap();
        }
        drop(wal); // points 0..2 flushed at the 3rd commit point; 3..4 lost
        let log = read_records(&path).unwrap();
        assert_eq!(log.records.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn window_syncs_on_byte_threshold() {
        let path = tmp("window-bytes");
        let policy = FsyncPolicy::Window {
            max_delay: Duration::from_secs(3600),
            max_bytes: 64,
        };
        let mut wal = Wal::create(&path, policy).unwrap();
        let hist = wren_obs::Histogram::default();
        wal.instrument(
            wren_obs::Histogram::default(),
            wren_obs::Histogram::default(),
            hist.clone(),
        );
        // 16-byte payload + 8-byte header = 24 bytes per commit point.
        wal.append(&[1u8; 16]);
        wal.commit_point().unwrap();
        assert_eq!(wal.synced_len(), 0, "first point opens a window");
        assert_eq!(wal.unsynced_len(), 24);
        assert!(wal.sync_deadline().is_some());

        wal.append(&[2u8; 16]);
        wal.commit_point().unwrap();
        assert_eq!(wal.unsynced_len(), 48, "still under max_bytes");

        wal.append(&[3u8; 16]);
        wal.commit_point().unwrap();
        // 72 >= 64: the byte edge forces the fsync.
        assert_eq!(wal.unsynced_len(), 0);
        assert_eq!(wal.synced_len(), 72);
        assert!(wal.sync_deadline().is_none(), "window closed");
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1, "one group commit");
        assert_eq!(snap.sum, 3, "covering three commit points");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn window_deadline_closed_by_sync_now() {
        let path = tmp("window-deadline");
        let policy = FsyncPolicy::Window {
            max_delay: Duration::from_millis(5),
            max_bytes: usize::MAX,
        };
        let mut wal = Wal::create(&path, policy).unwrap();
        wal.append(b"held");
        wal.commit_point().unwrap();
        let deadline = wal.sync_deadline().expect("open window");
        assert!(deadline <= Instant::now() + Duration::from_millis(5));
        wal.sync_now().unwrap();
        assert!(wal.sync_deadline().is_none());
        assert_eq!(wal.unsynced_len(), 0);
        let log = read_records(&path).unwrap();
        assert_eq!(log.records, vec![b"held".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_size_recorded_under_every_n() {
        let path = tmp("group-size");
        let mut wal = Wal::create(&path, FsyncPolicy::EveryN(3)).unwrap();
        let hist = wren_obs::Histogram::default();
        wal.instrument(
            wren_obs::Histogram::default(),
            wren_obs::Histogram::default(),
            hist.clone(),
        );
        for i in 0..5u8 {
            wal.append(&[i]);
            wal.commit_point().unwrap();
        }
        // Points 0..2 grouped into the 3rd-point fsync; 3..4 settle at
        // the seal.
        wal.seal().unwrap();
        let snap = hist.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 5);
        assert_eq!(snap.max, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_n_spills_oversized_buffer_without_sync() {
        let path = tmp("every-n-spill");
        let mut wal = Wal::create(&path, FsyncPolicy::EveryN(1_000_000)).unwrap();
        // One commit point far past BUFFER_CAP must not sit in user
        // space waiting for the millionth point.
        wal.append(&vec![0u8; BUFFER_CAP + 1]);
        wal.commit_point().unwrap();
        wal.append(b"tiny");
        wal.commit_point().unwrap();
        assert_eq!(wal.buffered_len(), 12, "big record spilled to the OS");
        assert_eq!(wal.synced_len(), 0, "spill is a write, not an fsync");
        assert!(wal.unsynced_len() > BUFFER_CAP as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncated_on_reopen() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        wal.append(b"keep-me");
        wal.commit_point().unwrap();
        drop(wal);
        // Simulate a torn append: half a header.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop(f);

        let (mut wal, recovered) = Wal::open_for_append(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered, vec![b"keep-me".to_vec()]);
        wal.append(b"and-me");
        wal.commit_point().unwrap();
        drop(wal);
        let log = read_records(&path).unwrap();
        assert!(!log.torn);
        assert_eq!(log.records, vec![b"keep-me".to_vec(), b"and-me".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_length_rejected_before_buffering() {
        let path = tmp("oversize");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes()); // absurd len
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let log = read_records(&path).unwrap();
        assert!(log.records.is_empty());
        assert!(log.torn);
        assert_eq!(log.valid_len, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reads_empty() {
        let log = read_records(tmp("never-created")).unwrap();
        assert!(log.records.is_empty());
        assert!(!log.torn);
    }
}
