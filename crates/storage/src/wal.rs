//! Write-ahead log: CRC-framed, length-prefixed records on disk.
//!
//! This module is the bottom layer of the durability stack, and it is
//! deliberately **byte-oriented**: it knows nothing about the Wren
//! protocol. The layering mirrors `wren-net`'s sans-io split:
//!
//! * **`wal` (here)** — append-only record files. Each record is
//!   `[u32 len][u32 crc32][payload]`, little-endian, with the CRC taken
//!   over the payload alone. Reading is *total*: a torn tail, a bad
//!   length, garbage bytes or a flipped bit never panic — the reader
//!   returns the longest prefix of valid records plus the offset where
//!   validity ended, and [`Wal::open_for_append`] truncates the tail so
//!   the next append continues from a clean boundary.
//! * **[`checkpoint`](crate::checkpoint)** — atomically-written
//!   snapshot files that bound how much log must be replayed.
//! * **`wren-core::durability`** — the typed record set (commits,
//!   replication batches, stable advances) encoded with the protocol
//!   codec, plus replay that rebuilds a server atop the newest
//!   checkpoint.
//!
//! Group commit is expressed through [`Wal::commit_point`]: appends
//! accumulate in a user-space buffer and a commit point makes them
//! durable according to the [`FsyncPolicy`] — every point, every nth
//! point, or only at [`Wal::seal`]. Dropping a `Wal` without sealing
//! deliberately does **not** flush: that is exactly the abrupt-kill
//! semantics crash tests rely on.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Hard ceiling on one WAL record's payload (and, via the alias in
/// `wren_protocol::frame::MAX_FRAME_LEN`, on one wire frame). A length
/// prefix above this is rejected *before* any buffering, so a corrupt
/// or hostile length field can never drive an allocation.
pub const MAX_RECORD_LEN: usize = 64 * 1024 * 1024;

/// Bytes of record header: `u32` length + `u32` CRC.
pub const RECORD_HEADER_LEN: usize = 8;

/// Soft cap on the user-space buffer under [`FsyncPolicy::Off`]: past
/// this, a commit point writes the buffer to the OS (without syncing)
/// so an idle-fsync log cannot grow memory without bound.
const BUFFER_CAP: usize = 8 * 1024 * 1024;

/// When a batch of appends becomes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Write + fsync at every commit point. No acknowledged record is
    /// ever lost to an abrupt kill.
    Always,
    /// Write + fsync at every `n`th commit point (group commit): up to
    /// `n - 1` acknowledged commit points may be lost on a kill.
    EveryN(u32),
    /// Only seal/rotation flushes. Fastest; a kill loses everything
    /// since the last seal or checkpoint.
    Off,
}

/// An append-only record log backed by one file.
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Records appended but not yet handed to the OS.
    buf: Vec<u8>,
    /// Commit points since the last flush (for [`FsyncPolicy::EveryN`]).
    points: u32,
    /// Durable log length in bytes (what a reader would recover).
    synced_len: u64,
    /// Optional instrumentation (see [`Wal::instrument`]).
    fsync_micros: Option<wren_obs::Histogram>,
    append_bytes: Option<wren_obs::Histogram>,
}

/// CRC-32 (IEEE 802.3, the `crc32` of zlib/gzip) over `bytes`.
/// Hand-rolled table-driven implementation — no dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: [u32; 256] = build_crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

impl Wal {
    /// Creates a fresh, empty log at `path`, truncating any existing
    /// file.
    pub fn create(path: impl Into<PathBuf>, policy: FsyncPolicy) -> std::io::Result<Wal> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Wal {
            file,
            path,
            policy,
            buf: Vec::new(),
            points: 0,
            synced_len: 0,
            fsync_micros: None,
            append_bytes: None,
        })
    }

    /// Opens an existing log for appending, first scanning it with
    /// [`read_records`] and **truncating the torn tail** (anything after
    /// the last valid record) so appends resume from a clean boundary.
    ///
    /// Returns the recovered record payloads along with the log.
    pub fn open_for_append(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> std::io::Result<(Wal, Vec<Vec<u8>>)> {
        let path = path.into();
        let recovered = read_records(&path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(false) // set_len below trims exactly the torn tail
            .open(&path)?;
        file.set_len(recovered.valid_len)?;
        file.sync_all()?;
        file.seek(SeekFrom::End(0))?;
        let synced_len = recovered.valid_len;
        Ok((
            Wal {
                file,
                path,
                policy,
                buf: Vec::new(),
                points: 0,
                synced_len,
                fsync_micros: None,
                append_bytes: None,
            },
            recovered.records,
        ))
    }

    /// Appends one record (buffered; durable only after a commit point
    /// under the policy, or [`Wal::seal`]).
    ///
    /// Panics if `payload` exceeds [`MAX_RECORD_LEN`] — the typed layer
    /// above chunks its batches well below the ceiling.
    pub fn append(&mut self, payload: &[u8]) {
        assert!(
            payload.len() <= MAX_RECORD_LEN,
            "WAL record of {} bytes exceeds MAX_RECORD_LEN ({MAX_RECORD_LEN})",
            payload.len()
        );
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        if let Some(h) = &self.append_bytes {
            h.record(payload.len() as u64);
        }
    }

    /// Attaches latency/size instrumentation: `fsync_micros` records
    /// each synchronous flush (write + fsync) in microseconds,
    /// `append_bytes` each appended record's payload size. Recording is
    /// lock-free and uninstrumented logs pay one `Option` branch.
    pub fn instrument(&mut self, fsync_micros: wren_obs::Histogram, append_bytes: wren_obs::Histogram) {
        self.fsync_micros = Some(fsync_micros);
        self.append_bytes = Some(append_bytes);
    }

    /// Marks a commit point: everything appended so far is eligible to
    /// become durable, per the fsync policy.
    pub fn commit_point(&mut self) -> std::io::Result<()> {
        match self.policy {
            FsyncPolicy::Always => self.flush(true),
            FsyncPolicy::EveryN(n) => {
                self.points += 1;
                if self.points >= n.max(1) {
                    self.points = 0;
                    self.flush(true)
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Off => {
                if self.buf.len() > BUFFER_CAP {
                    self.flush(false)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Writes the buffer to the OS; `sync` additionally fsyncs.
    fn flush(&mut self, sync: bool) -> std::io::Result<()> {
        let start = self.fsync_micros.is_some().then(std::time::Instant::now);
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        if sync {
            self.file.sync_data()?;
            self.synced_len = self.file.stream_position()?;
            if let (Some(h), Some(t)) = (&self.fsync_micros, start) {
                h.record(t.elapsed().as_micros() as u64);
            }
        }
        Ok(())
    }

    /// Flushes and fsyncs everything buffered, regardless of policy.
    /// A sealed log loses nothing; this is the graceful-stop path.
    pub fn seal(&mut self) -> std::io::Result<()> {
        self.points = 0;
        self.flush(true)
    }

    /// Bytes known durable (fsynced). What an abrupt kill preserves.
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Bytes sitting in the user-space buffer — lost on an abrupt kill.
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Outcome of scanning a log file: the valid-prefix records and where
/// the prefix ends.
pub struct RecoveredLog {
    /// Payloads of every valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset at which validity ended (`file length` iff the log
    /// is wholly intact).
    pub valid_len: u64,
    /// True if bytes past `valid_len` existed (torn tail / corruption).
    pub torn: bool,
}

/// Reads every valid record from the file at `path`. **Total**: any
/// corruption — truncated header, truncated payload, length above
/// [`MAX_RECORD_LEN`], CRC mismatch, trailing garbage — terminates the
/// scan at the last valid record instead of failing. A missing file
/// reads as an empty log.
pub fn read_records(path: impl AsRef<Path>) -> std::io::Result<RecoveredLog> {
    let mut file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(RecoveredLog { records: Vec::new(), valid_len: 0, torn: false })
        }
        Err(e) => return Err(e),
    };
    let file_len = file.metadata()?.len();
    let mut records = Vec::new();
    let mut offset = 0u64;
    let mut header = [0u8; RECORD_HEADER_LEN];
    loop {
        if offset + RECORD_HEADER_LEN as u64 > file_len {
            break;
        }
        file.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        // Oversized length ⇒ reject before allocating or reading the
        // payload (shared guard with the frame decoder).
        if len > MAX_RECORD_LEN {
            break;
        }
        if offset + (RECORD_HEADER_LEN + len) as u64 > file_len {
            break;
        }
        let mut payload = vec![0u8; len];
        file.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            break;
        }
        offset += (RECORD_HEADER_LEN + len) as u64;
        records.push(payload);
    }
    Ok(RecoveredLog { records, valid_len: offset, torn: offset != file_len })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wren-wal-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_seal_read_round_trip() {
        let path = tmp("round-trip");
        let mut wal = Wal::create(&path, FsyncPolicy::Off).unwrap();
        wal.append(b"alpha");
        wal.append(b"");
        wal.append(&[7u8; 1000]);
        wal.commit_point().unwrap();
        wal.seal().unwrap();
        let log = read_records(&path).unwrap();
        assert!(!log.torn);
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.records[0], b"alpha");
        assert_eq!(log.records[1], b"");
        assert_eq!(log.records[2], vec![7u8; 1000]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsealed_buffer_is_lost_under_off() {
        let path = tmp("lost-buffer");
        let mut wal = Wal::create(&path, FsyncPolicy::Off).unwrap();
        wal.append(b"volatile");
        wal.commit_point().unwrap();
        drop(wal); // abrupt kill: no seal
        let log = read_records(&path).unwrap();
        assert!(log.records.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn always_policy_survives_drop() {
        let path = tmp("always");
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        wal.append(b"durable");
        wal.commit_point().unwrap();
        assert_eq!(wal.buffered_len(), 0);
        drop(wal);
        let log = read_records(&path).unwrap();
        assert_eq!(log.records, vec![b"durable".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_n_groups_commits() {
        let path = tmp("every-n");
        let mut wal = Wal::create(&path, FsyncPolicy::EveryN(3)).unwrap();
        for i in 0..5u8 {
            wal.append(&[i]);
            wal.commit_point().unwrap();
        }
        drop(wal); // points 0..2 flushed at the 3rd commit point; 3..4 lost
        let log = read_records(&path).unwrap();
        assert_eq!(log.records.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncated_on_reopen() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        wal.append(b"keep-me");
        wal.commit_point().unwrap();
        drop(wal);
        // Simulate a torn append: half a header.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop(f);

        let (mut wal, recovered) = Wal::open_for_append(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered, vec![b"keep-me".to_vec()]);
        wal.append(b"and-me");
        wal.commit_point().unwrap();
        drop(wal);
        let log = read_records(&path).unwrap();
        assert!(!log.torn);
        assert_eq!(log.records, vec![b"keep-me".to_vec(), b"and-me".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_length_rejected_before_buffering() {
        let path = tmp("oversize");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes()); // absurd len
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let log = read_records(&path).unwrap();
        assert!(log.records.is_empty());
        assert!(log.torn);
        assert_eq!(log.valid_len, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reads_empty() {
        let log = read_records(tmp("never-created")).unwrap();
        assert!(log.records.is_empty());
        assert!(!log.torn);
    }
}
