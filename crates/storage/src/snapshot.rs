//! First-class snapshot bounds: the storage-level visibility rules of
//! both protocols, expressed as data instead of closures.
//!
//! The seed implementation had readers pass `|v| v.ct <= bound` closures
//! to [`VersionChain::latest_visible`](crate::VersionChain::latest_visible).
//! That forced a linear scan: the chain cannot see inside an opaque
//! predicate, so it has to test every version. A [`SnapshotBound`] makes
//! the structure explicit — every rule both protocols use is a *commit-
//! timestamp ceiling* (no version above it can ever be visible) plus a
//! cheap per-version refinement — which lets the chain binary-search to
//! the ceiling and only run the refinement on the handful of versions at
//! or below it.

use crate::chain::OrderKey;
use wren_clock::{Timestamp, VersionVector};

/// A snapshot's visibility rule against stored versions.
///
/// Construct one with [`SnapshotBound::all`], [`SnapshotBound::at_most`],
/// [`SnapshotBound::bist`] (Wren's two-scalar snapshot) or
/// [`SnapshotBound::vector`] (Cure's per-DC dependency vector). The
/// commit-timestamp ceiling is precomputed at construction so per-version
/// checks stay branch-cheap.
#[derive(Clone, Debug)]
pub struct SnapshotBound<'a> {
    ceiling: Timestamp,
    rule: Rule<'a>,
}

#[derive(Clone, Debug)]
enum Rule<'a> {
    /// Everything is visible.
    All,
    /// Visible iff commit timestamp ≤ ceiling, regardless of origin.
    AtMost,
    /// Wren's BiST rule (§IV-B): a local-origin version is visible iff
    /// `ut ≤ lt ∧ rdt ≤ rt`; a remote-origin one iff `ut ≤ rt ∧ rdt ≤ lt`.
    Bist {
        local_dc: u8,
        lt: Timestamp,
        rt: Timestamp,
    },
    /// Cure's rule: visible iff `ut ≤ snapshot[origin DC]`.
    Vector(&'a VersionVector),
}

impl<'a> SnapshotBound<'a> {
    /// A bound admitting every version (causally-unconstrained reader).
    #[inline]
    pub fn all() -> Self {
        SnapshotBound {
            ceiling: Timestamp::MAX,
            rule: Rule::All,
        }
    }

    /// Admits versions whose commit timestamp is at most `bound`,
    /// regardless of origin.
    #[inline]
    pub fn at_most(bound: Timestamp) -> Self {
        SnapshotBound {
            ceiling: bound,
            rule: Rule::AtMost,
        }
    }

    /// Wren's snapshot `(lt, rt)` evaluated at a partition of DC
    /// `local_dc`: local-origin versions are bounded by `(lt, rt)` and
    /// remote-origin ones by `(rt, lt)` on their `(ut, rdt)` pair.
    #[inline]
    pub fn bist(local_dc: u8, lt: Timestamp, rt: Timestamp) -> Self {
        SnapshotBound {
            // Either branch requires ut ≤ max(lt, rt), so that max is a
            // sound ceiling for the binary-search cutoff.
            ceiling: lt.max(rt),
            rule: Rule::Bist { local_dc, lt, rt },
        }
    }

    /// Cure's snapshot vector: a version is visible iff its commit
    /// timestamp is covered by the entry of its origin DC.
    #[inline]
    pub fn vector(snapshot: &'a VersionVector) -> Self {
        SnapshotBound {
            ceiling: snapshot.iter().max().unwrap_or(Timestamp::ZERO),
            rule: Rule::Vector(snapshot),
        }
    }

    /// No version with a commit timestamp above this can be admitted.
    #[inline]
    pub fn ceiling(&self) -> Timestamp {
        self.ceiling
    }

    /// Whether a version with LWW key `key` and remote dependency time
    /// `remote_dep` is inside the snapshot.
    #[inline]
    pub fn admits(&self, key: &OrderKey, remote_dep: Timestamp) -> bool {
        let (ut, origin, _) = *key;
        match &self.rule {
            Rule::All => true,
            Rule::AtMost => ut <= self.ceiling,
            Rule::Bist { local_dc, lt, rt } => {
                if origin == *local_dc {
                    ut <= *lt && remote_dep <= *rt
                } else {
                    ut <= *rt && remote_dep <= *lt
                }
            }
            Rule::Vector(snapshot) => ut <= snapshot.get(origin as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(micros: u64) -> Timestamp {
        Timestamp::from_micros(micros)
    }

    #[test]
    fn all_admits_everything() {
        let b = SnapshotBound::all();
        assert_eq!(b.ceiling(), Timestamp::MAX);
        assert!(b.admits(&(Timestamp::MAX, 3, 9), Timestamp::MAX));
    }

    #[test]
    fn at_most_is_a_pure_prefix() {
        let b = SnapshotBound::at_most(ts(50));
        assert!(b.admits(&(ts(50), 0, 0), Timestamp::ZERO));
        assert!(!b.admits(&(ts(51), 0, 0), Timestamp::ZERO));
        assert_eq!(b.ceiling(), ts(50));
    }

    #[test]
    fn bist_swaps_bounds_by_origin() {
        let b = SnapshotBound::bist(1, ts(100), ts(40));
        // Local version: ut vs lt, rdt vs rt.
        assert!(b.admits(&(ts(90), 1, 0), ts(40)));
        assert!(!b.admits(&(ts(90), 1, 0), ts(41)));
        // Remote version: ut vs rt, rdt vs lt.
        assert!(b.admits(&(ts(40), 0, 0), ts(100)));
        assert!(!b.admits(&(ts(41), 0, 0), Timestamp::ZERO));
        assert_eq!(b.ceiling(), ts(100));
    }

    #[test]
    fn vector_bounds_by_origin_entry() {
        let vv = VersionVector::from_entries(vec![ts(10), ts(30)]);
        let b = SnapshotBound::vector(&vv);
        assert_eq!(b.ceiling(), ts(30));
        assert!(b.admits(&(ts(10), 0, 0), Timestamp::ZERO));
        assert!(!b.admits(&(ts(11), 0, 0), Timestamp::ZERO));
        assert!(b.admits(&(ts(30), 1, 0), Timestamp::ZERO));
    }
}
