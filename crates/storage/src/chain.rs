use wren_clock::Timestamp;

/// What the storage layer needs from a version: a total order for
/// last-writer-wins conflict resolution.
///
/// The key is `(commit timestamp, origin DC id, transaction id)` — the
/// paper resolves concurrent conflicting writes by update timestamp, with
/// ties settled by the originating DC and transaction identifier (§II-C).
pub trait Versioned {
    /// The last-writer-wins order key. Higher keys win.
    fn order_key(&self) -> (Timestamp, u8, u64);
}

/// The version chain of a single key, ordered newest-first by the
/// last-writer-wins key.
///
/// Insertion is O(1) for in-order commits (the common case: versions are
/// applied in increasing commit-timestamp order) and O(n) in the worst
/// case for out-of-order remote deliveries.
#[derive(Clone, Debug)]
pub struct VersionChain<V> {
    /// Newest first.
    versions: Vec<V>,
}

impl<V> Default for VersionChain<V> {
    fn default() -> Self {
        VersionChain {
            versions: Vec::new(),
        }
    }
}

impl<V: Versioned> VersionChain<V> {
    /// Creates an empty chain.
    pub fn new() -> Self {
        VersionChain {
            versions: Vec::new(),
        }
    }

    /// Number of versions currently retained.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the chain holds no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Inserts a version at its last-writer-wins position.
    pub fn insert(&mut self, v: V) {
        let key = v.order_key();
        // Common case: newest version appended at the front.
        let pos = self
            .versions
            .iter()
            .position(|existing| existing.order_key() <= key)
            .unwrap_or(self.versions.len());
        self.versions.insert(pos, v);
    }

    /// The newest version satisfying `visible`, i.e. the version a
    /// transaction with that snapshot predicate must read under
    /// last-writer-wins.
    pub fn latest_visible<F: Fn(&V) -> bool>(&self, visible: F) -> Option<&V> {
        self.versions.iter().find(|v| visible(v))
    }

    /// The newest version outright (what a causally-unconstrained reader
    /// would see).
    pub fn newest(&self) -> Option<&V> {
        self.versions.first()
    }

    /// Iterates newest to oldest.
    pub fn iter(&self) -> impl Iterator<Item = &V> {
        self.versions.iter()
    }

    /// Garbage-collects versions that no active or future snapshot can
    /// read.
    ///
    /// `visible_at_oldest` must be the visibility predicate of the oldest
    /// snapshot still visible to any running transaction (the aggregate
    /// minimum the partitions gossip, §IV-B "Garbage collection"). The
    /// chain keeps every version newer than the newest visible one, plus
    /// that version itself, and drops the rest — exactly the paper's rule
    /// ("keep all the versions up to and including the oldest one within
    /// S_old").
    ///
    /// Returns the number of versions removed.
    pub fn collect<F: Fn(&V) -> bool>(&mut self, visible_at_oldest: F) -> usize {
        let Some(idx) = self.versions.iter().position(|v| visible_at_oldest(v)) else {
            // No version is visible at the oldest snapshot: everything may
            // still become visible (all in the "future"), keep it all.
            return 0;
        };
        let removed = self.versions.len() - (idx + 1);
        self.versions.truncate(idx + 1);
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct V {
        ct: u64,
        sr: u8,
        tx: u64,
        tag: &'static str,
    }

    impl Versioned for V {
        fn order_key(&self) -> (Timestamp, u8, u64) {
            (Timestamp::from_micros(self.ct), self.sr, self.tx)
        }
    }

    fn v(ct: u64, tag: &'static str) -> V {
        V {
            ct,
            sr: 0,
            tx: 0,
            tag,
        }
    }

    #[test]
    fn insert_keeps_newest_first() {
        let mut c = VersionChain::new();
        c.insert(v(10, "a"));
        c.insert(v(30, "c"));
        c.insert(v(20, "b"));
        let tags: Vec<_> = c.iter().map(|x| x.tag).collect();
        assert_eq!(tags, vec!["c", "b", "a"]);
        assert_eq!(c.newest().unwrap().tag, "c");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn lww_tie_break_on_dc_then_tx() {
        let mut c = VersionChain::new();
        c.insert(V { ct: 10, sr: 0, tx: 5, tag: "low-dc" });
        c.insert(V { ct: 10, sr: 1, tx: 1, tag: "high-dc" });
        assert_eq!(c.newest().unwrap().tag, "high-dc");
        let mut c2 = VersionChain::new();
        c2.insert(V { ct: 10, sr: 0, tx: 5, tag: "tx5" });
        c2.insert(V { ct: 10, sr: 0, tx: 9, tag: "tx9" });
        assert_eq!(c2.newest().unwrap().tag, "tx9");
    }

    #[test]
    fn latest_visible_respects_snapshot() {
        let mut c = VersionChain::new();
        c.insert(v(10, "a"));
        c.insert(v(20, "b"));
        c.insert(v(30, "c"));
        let seen = c.latest_visible(|x| x.ct <= 25);
        assert_eq!(seen.unwrap().tag, "b");
        assert!(c.latest_visible(|x| x.ct <= 5).is_none());
    }

    #[test]
    fn collect_keeps_newest_visible_and_newer() {
        let mut c = VersionChain::new();
        for (ct, tag) in [(10, "a"), (20, "b"), (30, "c"), (40, "d")] {
            c.insert(v(ct, tag));
        }
        // Oldest active snapshot sees ct ≤ 25: keep b (newest visible), c, d.
        let removed = c.collect(|x| x.ct <= 25);
        assert_eq!(removed, 1);
        let tags: Vec<_> = c.iter().map(|x| x.tag).collect();
        assert_eq!(tags, vec!["d", "c", "b"]);
    }

    #[test]
    fn collect_keeps_everything_when_nothing_visible() {
        let mut c = VersionChain::new();
        c.insert(v(10, "a"));
        c.insert(v(20, "b"));
        assert_eq!(c.collect(|x| x.ct <= 5), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_chain_behaves() {
        let c: VersionChain<V> = VersionChain::new();
        assert!(c.is_empty());
        assert!(c.newest().is_none());
        assert!(c.latest_visible(|_| true).is_none());
    }
}
