use crate::SnapshotBound;
use wren_clock::Timestamp;

/// The last-writer-wins order key: `(commit timestamp, origin DC id,
/// transaction id)`. Higher keys win.
pub type OrderKey = (Timestamp, u8, u64);

/// What the storage layer needs from a version: a total order for
/// last-writer-wins conflict resolution, plus the remote dependency time
/// used by BiST snapshot bounds.
///
/// The order key is `(commit timestamp, origin DC id, transaction id)` —
/// the paper resolves concurrent conflicting writes by update timestamp,
/// with ties settled by the originating DC and transaction identifier
/// (§II-C).
pub trait Versioned {
    /// The last-writer-wins order key. Higher keys win.
    fn order_key(&self) -> OrderKey;

    /// The version's remote dependency time, consulted by
    /// [`SnapshotBound::bist`] bounds. Version types without one (e.g.
    /// Cure's vector-tagged items) keep the default of zero, which every
    /// bound admits.
    #[inline]
    fn remote_dep(&self) -> Timestamp {
        Timestamp::ZERO
    }
}

/// The version chain of a single key.
///
/// # Ordering invariant
///
/// Entries are stored **oldest-first, sorted ascending by the LWW order
/// key**, and each entry caches its key inline so comparisons never call
/// back into [`Versioned::order_key`]. Two consequences:
///
/// * **inserts are O(1)** in the common case — versions are applied in
///   increasing commit-timestamp order, so the newcomer's key usually
///   exceeds the current maximum and is pushed at the tail (a single key
///   comparison); out-of-order remote deliveries binary-search their slot;
/// * **reads are O(log n)**: a [`SnapshotBound`]'s ceiling cuts the chain
///   at a key prefix via `partition_point`, and the bound's per-origin
///   refinement only runs on versions at or below the ceiling, scanning
///   down from the newest candidate.
///
/// The public iteration order remains newest-first (the LWW winner
/// first), matching what readers and tests expect.
#[derive(Clone, Debug)]
pub struct VersionChain<V> {
    /// Oldest-first; ascending by cached order key.
    entries: Vec<(OrderKey, V)>,
}

impl<V> Default for VersionChain<V> {
    fn default() -> Self {
        VersionChain {
            entries: Vec::new(),
        }
    }
}

impl<V: Versioned> VersionChain<V> {
    /// Creates an empty chain.
    pub fn new() -> Self {
        VersionChain {
            entries: Vec::new(),
        }
    }

    /// Number of versions currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the chain holds no versions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a version at its last-writer-wins position.
    ///
    /// The fast path (in-order commit, the overwhelmingly common case) is
    /// a single cached-key comparison followed by a tail push; only
    /// out-of-order deliveries pay the binary search, and none of the
    /// paths re-derive the key through the [`Versioned`] trait per
    /// comparison.
    pub fn insert(&mut self, v: V) {
        let key = v.order_key();
        match self.entries.last() {
            Some((tail, _)) if key < *tail => {
                let pos = self.entries.partition_point(|(k, _)| *k <= key);
                self.entries.insert(pos, (key, v));
            }
            _ => self.entries.push((key, v)),
        }
    }

    /// Splices a **sorted run** of versions into the chain with a single
    /// binary search and at most one bulk shift.
    ///
    /// `run` must be sorted ascending by the LWW order key; it is drained
    /// (capacity is kept, so callers can reuse the buffer). The intended
    /// caller is replication apply: every version of a replication batch
    /// shares one commit timestamp, so all of a key's versions land at one
    /// splice point and the batched form turns `N × O(log n + shift)`
    /// one-at-a-time inserts into `O(log n + N)` plus a single shift.
    ///
    /// Out-of-run interleavings are still correct: if existing entries
    /// fall strictly between the run's first and last keys (possible only
    /// on commit-timestamp ties with a different origin DC or transaction
    /// id), the overlapping region is re-sorted after the splice.
    pub fn apply_batch(&mut self, run: &mut Vec<V>) {
        match run.len() {
            0 => return,
            1 => {
                let v = run.pop().expect("len checked");
                self.insert(v);
                return;
            }
            _ => {}
        }
        let first = run[0].order_key();
        let last = run[run.len() - 1].order_key();
        debug_assert!(
            run.windows(2).all(|w| w[0].order_key() <= w[1].order_key()),
            "apply_batch run must be sorted ascending by order key"
        );
        // Fast path: the whole run is newer than the tail (in-order
        // replication, the common case) — a bulk append.
        if self.entries.last().is_none_or(|(tail, _)| first > *tail) {
            self.entries.extend(run.drain(..).map(|v| (v.order_key(), v)));
            return;
        }
        let lo = self.entries.partition_point(|(k, _)| *k <= first);
        let hi = self.entries.partition_point(|(k, _)| *k <= last);
        let run_len = run.len();
        self.entries
            .splice(lo..lo, run.drain(..).map(|v| (v.order_key(), v)));
        if lo != hi {
            // Existing entries with keys inside (first, last] were pushed
            // behind the run by the splice; restore order locally.
            self.entries[lo..hi + run_len].sort_unstable_by_key(|e| e.0);
        }
    }

    /// Inserts a version only if no version with the same order key is
    /// already present. Returns whether the insert happened.
    ///
    /// This is the **replay-idempotence** primitive: WAL recovery may
    /// re-apply a replication batch the pre-crash process had already
    /// applied (or a second crash may replay a record twice), and the
    /// order key `(ct, origin DC, tx)` uniquely identifies a write, so
    /// "same key ⇒ same version" makes re-application a no-op.
    pub fn insert_if_new(&mut self, v: V) -> bool {
        let key = v.order_key();
        let pos = self.entries.partition_point(|(k, _)| *k < key);
        if self.entries.get(pos).is_some_and(|(k, _)| *k == key) {
            return false;
        }
        self.entries.insert(pos, (key, v));
        true
    }

    /// The newest version inside `bound`, i.e. the version a transaction
    /// with that snapshot must read under last-writer-wins.
    ///
    /// Binary-searches to the bound's commit-timestamp ceiling, then
    /// applies the bound's per-origin refinement downward from the newest
    /// candidate (versions above the ceiling can never be admitted).
    pub fn latest_visible(&self, bound: &SnapshotBound<'_>) -> Option<&V> {
        let ceiling = bound.ceiling();
        let mut idx = self.entries.partition_point(|(k, _)| k.0 <= ceiling);
        while idx > 0 {
            idx -= 1;
            let (key, v) = &self.entries[idx];
            if bound.admits(key, v.remote_dep()) {
                return Some(v);
            }
        }
        None
    }

    /// The newest version outright (what a causally-unconstrained reader
    /// would see).
    pub fn newest(&self) -> Option<&V> {
        self.entries.last().map(|(_, v)| v)
    }

    /// Iterates newest to oldest.
    pub fn iter(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().rev().map(|(_, v)| v)
    }

    /// Garbage-collects versions that no active or future snapshot can
    /// read.
    ///
    /// `oldest_snapshot` must be the bound of the oldest snapshot still
    /// visible to any running transaction (the aggregate minimum the
    /// partitions gossip, §IV-B "Garbage collection"). The chain keeps
    /// every version newer than the newest visible one, plus that version
    /// itself, and drops the rest — exactly the paper's rule ("keep all
    /// the versions up to and including the oldest one within S_old").
    ///
    /// Chains of length ≤ 1 return immediately: the rule always retains
    /// the newest version, so there is nothing to drop.
    ///
    /// Returns the number of versions removed.
    pub fn collect(&mut self, oldest_snapshot: &SnapshotBound<'_>) -> usize {
        if self.entries.len() <= 1 {
            return 0;
        }
        let ceiling = oldest_snapshot.ceiling();
        let mut idx = self.entries.partition_point(|(k, _)| k.0 <= ceiling);
        while idx > 0 {
            idx -= 1;
            let (key, v) = &self.entries[idx];
            if oldest_snapshot.admits(key, v.remote_dep()) {
                // `idx` is the newest visible version: keep it and
                // everything newer, drop the `idx` older entries.
                self.entries.drain(..idx);
                return idx;
            }
        }
        // No version visible at the oldest snapshot: everything may still
        // become visible (all in the "future"), keep it all.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct V {
        ct: u64,
        sr: u8,
        tx: u64,
        tag: &'static str,
    }

    impl Versioned for V {
        fn order_key(&self) -> OrderKey {
            (Timestamp::from_micros(self.ct), self.sr, self.tx)
        }
    }

    fn v(ct: u64, tag: &'static str) -> V {
        V {
            ct,
            sr: 0,
            tx: 0,
            tag,
        }
    }

    fn at_most(ct: u64) -> SnapshotBound<'static> {
        SnapshotBound::at_most(Timestamp::from_micros(ct))
    }

    #[test]
    fn insert_keeps_newest_first() {
        let mut c = VersionChain::new();
        c.insert(v(10, "a"));
        c.insert(v(30, "c"));
        c.insert(v(20, "b"));
        let tags: Vec<_> = c.iter().map(|x| x.tag).collect();
        assert_eq!(tags, vec!["c", "b", "a"]);
        assert_eq!(c.newest().unwrap().tag, "c");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn lww_tie_break_on_dc_then_tx() {
        let mut c = VersionChain::new();
        c.insert(V { ct: 10, sr: 0, tx: 5, tag: "low-dc" });
        c.insert(V { ct: 10, sr: 1, tx: 1, tag: "high-dc" });
        assert_eq!(c.newest().unwrap().tag, "high-dc");
        let mut c2 = VersionChain::new();
        c2.insert(V { ct: 10, sr: 0, tx: 5, tag: "tx5" });
        c2.insert(V { ct: 10, sr: 0, tx: 9, tag: "tx9" });
        assert_eq!(c2.newest().unwrap().tag, "tx9");
    }

    #[test]
    fn latest_visible_respects_snapshot() {
        let mut c = VersionChain::new();
        c.insert(v(10, "a"));
        c.insert(v(20, "b"));
        c.insert(v(30, "c"));
        let seen = c.latest_visible(&at_most(25));
        assert_eq!(seen.unwrap().tag, "b");
        assert!(c.latest_visible(&at_most(5)).is_none());
    }

    #[test]
    fn bist_bound_skips_origin_mismatched_versions() {
        // Remote version (sr=1) above rt sits newer than a visible local
        // one: the refinement must step past it, not give up at the
        // ceiling.
        let mut c = VersionChain::new();
        c.insert(V { ct: 40, sr: 0, tx: 0, tag: "local-old" });
        c.insert(V { ct: 50, sr: 1, tx: 0, tag: "remote-too-new" });
        c.insert(V { ct: 60, sr: 0, tx: 0, tag: "local-new" });
        // Ceiling is lt = 55, so ct = 50 sits below it and the downward
        // refinement must reject it via admits() (remote rule: ut ≤ rt =
        // 45 fails) and continue to the older local version.
        let bound = SnapshotBound::bist(
            0,
            Timestamp::from_micros(55),
            Timestamp::from_micros(45),
        );
        assert_eq!(c.latest_visible(&bound).unwrap().tag, "local-old");
    }

    #[test]
    fn collect_keeps_newest_visible_and_newer() {
        let mut c = VersionChain::new();
        for (ct, tag) in [(10, "a"), (20, "b"), (30, "c"), (40, "d")] {
            c.insert(v(ct, tag));
        }
        // Oldest active snapshot sees ct ≤ 25: keep b (newest visible), c, d.
        let removed = c.collect(&at_most(25));
        assert_eq!(removed, 1);
        let tags: Vec<_> = c.iter().map(|x| x.tag).collect();
        assert_eq!(tags, vec!["d", "c", "b"]);
    }

    #[test]
    fn collect_keeps_everything_when_nothing_visible() {
        let mut c = VersionChain::new();
        c.insert(v(10, "a"));
        c.insert(v(20, "b"));
        assert_eq!(c.collect(&at_most(5)), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn collect_early_outs_on_short_chains() {
        let mut c = VersionChain::new();
        assert_eq!(c.collect(&SnapshotBound::all()), 0);
        c.insert(v(10, "only"));
        assert_eq!(c.collect(&SnapshotBound::all()), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn insert_if_new_deduplicates_on_order_key() {
        let mut c = VersionChain::new();
        assert!(c.insert_if_new(V { ct: 10, sr: 1, tx: 3, tag: "first" }));
        assert!(!c.insert_if_new(V { ct: 10, sr: 1, tx: 3, tag: "dup" }));
        assert!(c.insert_if_new(V { ct: 10, sr: 1, tx: 4, tag: "other-tx" }));
        assert!(c.insert_if_new(V { ct: 5, sr: 0, tx: 0, tag: "older" }));
        assert_eq!(c.len(), 3);
        let tags: Vec<_> = c.iter().map(|x| x.tag).collect();
        assert_eq!(tags, vec!["other-tx", "first", "older"]);
    }

    #[test]
    fn empty_chain_behaves() {
        let c: VersionChain<V> = VersionChain::new();
        assert!(c.is_empty());
        assert!(c.newest().is_none());
        assert!(c.latest_visible(&SnapshotBound::all()).is_none());
    }
}
