//! Key-hash-striped storage: independent [`MvStore`] stripes behind one
//! snapshot-bound read/write API.
//!
//! One flat map per partition server was PR 1's design; a single stripe
//! is a contention point the moment anything wants to touch the store
//! from more than one place — a multi-threaded server slice, a GC sweep
//! that should not stall applies, a replication drain that only concerns
//! a handful of keys. A [`ShardedStore`] splits the key space into `S`
//! power-of-two stripes chosen by the **top bits** of the key's FxHash,
//! each wrapping an independent [`MvStore`]:
//!
//! * the stripe index uses the hash's *high* bits while the inner map's
//!   table index uses the *low* bits, so striping does not starve the
//!   per-stripe hash tables of entropy;
//! * stats roll up per stripe ([`ShardedStore::stats`] sums S O(1)
//!   counters; [`ShardedStore::stripe_stats`] exposes one stripe);
//! * GC can sweep the whole store ([`ShardedStore::collect`]) or a
//!   single stripe ([`ShardedStore::collect_stripe`]) — the unit a
//!   server amortizes across ticks without blocking unrelated keys;
//! * batch apply ([`ShardedStore::apply_batch`]) fans a replication
//!   batch out to per-stripe buckets and splices each key's run with one
//!   binary search (see [`VersionChain::apply_batch`]).
//!
//! Since PR 3 the protocol servers run on the lock-striped
//! [`ConcurrentShardedStore`](crate::ConcurrentShardedStore), which uses
//! the same stripe layout with an `RwLock` around each stripe. This
//! lock-free single-threaded variant remains the **reference point**:
//! the `sharded_store_*` micro benches pin striping at flat-map speed
//! against it, the property tests oracle it against the flat
//! [`MvStore`], and any change to stripe selection or batch bucketing
//! must land in both (the concurrent stress test cross-checks them).

use crate::{FxBuildHasher, MvStore, SnapshotBound, StoreStats, VersionChain, Versioned};
use std::hash::{BuildHasher, Hash};

/// Default stripe count: enough to spread a multi-threaded server's
/// slices without bloating small stores (each stripe is ~3 words empty).
const DEFAULT_STRIPES: usize = 16;

/// A partition's worth of multi-versioned data, striped by key hash.
///
/// Drop-in for [`MvStore`]: `insert` / `latest_visible` / `newest` /
/// `chain` / `collect` / `stats` / `iter` have identical signatures and
/// semantics (striping is invisible to readers). On top, it exposes the
/// stripe structure — [`n_stripes`](ShardedStore::n_stripes),
/// [`stripe_of`](ShardedStore::stripe_of),
/// [`collect_stripe`](ShardedStore::collect_stripe) — and the batched
/// write path [`apply_batch`](ShardedStore::apply_batch).
#[derive(Clone, Debug)]
pub struct ShardedStore<K, V> {
    stripes: Vec<MvStore<K, V>>,
    /// `64 - log2(stripe count)`: keys select a stripe by `hash >> shift`.
    shift: u32,
    hasher: FxBuildHasher,
    /// Per-stripe buckets reused across [`apply_batch`] calls.
    ///
    /// [`apply_batch`]: ShardedStore::apply_batch
    scratch: Vec<Vec<(K, V)>>,
}

impl<K, V> Default for ShardedStore<K, V> {
    fn default() -> Self {
        ShardedStore::with_stripes(DEFAULT_STRIPES)
    }
}

impl<K, V> ShardedStore<K, V> {
    /// Creates an empty store with the default stripe count.
    pub fn new() -> Self {
        ShardedStore::default()
    }

    /// Creates an empty store with at least `stripes` stripes, rounded up
    /// to a power of two (minimum 1).
    pub fn with_stripes(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        ShardedStore {
            stripes: (0..n).map(|_| MvStore::default()).collect(),
            shift: 64 - n.trailing_zeros(),
            hasher: FxBuildHasher::default(),
            scratch: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of stripes (always a power of two).
    pub fn n_stripes(&self) -> usize {
        self.stripes.len()
    }
}

impl<K: Eq + Hash + Clone, V: Versioned> ShardedStore<K, V> {
    /// The stripe index `key` maps to.
    ///
    /// Derived from the **top bits** of the key's FxHash: the inner maps
    /// index their tables with the same hash's low bits, so taking the
    /// stripe from the high end keeps the two selections independent.
    #[inline]
    pub fn stripe_of(&self, key: &K) -> usize {
        if self.shift == 64 {
            return 0; // single stripe: `hash >> 64` would be UB-shaped
        }
        (self.hasher.hash_one(key) >> self.shift) as usize
    }

    /// Read-only access to one stripe (tests, per-stripe reporting).
    ///
    /// # Panics
    ///
    /// Panics if `stripe >= n_stripes()`.
    pub fn stripe(&self, stripe: usize) -> &MvStore<K, V> {
        &self.stripes[stripe]
    }

    /// Inserts a new version of `key` into its stripe.
    pub fn insert(&mut self, key: K, version: V) {
        let s = self.stripe_of(&key);
        self.stripes[s].insert(key, version);
    }

    /// The newest version of `key` inside the snapshot `bound`.
    pub fn latest_visible(&self, key: &K, bound: &SnapshotBound<'_>) -> Option<&V> {
        self.stripes[self.stripe_of(key)].latest_visible(key, bound)
    }

    /// The newest version of `key` outright.
    pub fn newest(&self, key: &K) -> Option<&V> {
        self.stripes[self.stripe_of(key)].newest(key)
    }

    /// The full chain for `key`, if any version exists.
    pub fn chain(&self, key: &K) -> Option<&VersionChain<V>> {
        self.stripes[self.stripe_of(key)].chain(key)
    }

    /// Applies a batch of versions: items are bucketed by stripe, then
    /// each stripe splices its keys' runs with one chain search per key
    /// ([`MvStore::apply_batch`]). Both the stripe buckets and the
    /// per-key run buffer are reused across calls, so steady-state batch
    /// apply allocates nothing. `items` is drained (capacity kept).
    /// Returns the number of versions applied.
    pub fn apply_batch(&mut self, items: &mut Vec<(K, V)>) -> usize
    where
        K: Ord,
    {
        if items.is_empty() {
            return 0;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        for (k, v) in items.drain(..) {
            scratch[self.stripe_of(&k)].push((k, v));
        }
        let mut applied = 0;
        for (stripe, bucket) in self.stripes.iter_mut().zip(scratch.iter_mut()) {
            if !bucket.is_empty() {
                applied += stripe.apply_batch(bucket);
            }
        }
        self.scratch = scratch;
        applied
    }

    /// Runs garbage collection over every stripe (a full sweep, done
    /// stripe by stripe). Returns the number of versions removed.
    pub fn collect(&mut self, oldest_snapshot: &SnapshotBound<'_>) -> usize {
        self.stripes
            .iter_mut()
            .map(|s| s.collect(oldest_snapshot))
            .sum()
    }

    /// Garbage-collects a single stripe — the sweep unit a server can
    /// rotate across GC ticks so no tick stalls on the whole key space.
    /// Returns the number of versions removed.
    ///
    /// # Panics
    ///
    /// Panics if `stripe >= n_stripes()`.
    pub fn collect_stripe(
        &mut self,
        stripe: usize,
        oldest_snapshot: &SnapshotBound<'_>,
    ) -> usize {
        self.stripes[stripe].collect(oldest_snapshot)
    }

    /// Aggregate statistics: the sum of S O(1) per-stripe rollups.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in &self.stripes {
            let st = s.stats();
            total.keys += st.keys;
            total.versions += st.versions;
            total.collected += st.collected;
        }
        total
    }

    /// Statistics of one stripe (O(1)).
    ///
    /// # Panics
    ///
    /// Panics if `stripe >= n_stripes()`.
    pub fn stripe_stats(&self, stripe: usize) -> StoreStats {
        self.stripes[stripe].stats()
    }

    /// Iterates over all `(key, chain)` pairs, stripe by stripe.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &VersionChain<V>)> {
        self.stripes.iter().flat_map(|s| s.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wren_clock::Timestamp;

    #[derive(Clone, Debug, PartialEq)]
    struct V(u64);
    impl Versioned for V {
        fn order_key(&self) -> (Timestamp, u8, u64) {
            (Timestamp::from_micros(self.0), 0, self.0)
        }
    }

    fn at_most(ct: u64) -> SnapshotBound<'static> {
        SnapshotBound::at_most(Timestamp::from_micros(ct))
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(ShardedStore::<u64, V>::with_stripes(0).n_stripes(), 1);
        assert_eq!(ShardedStore::<u64, V>::with_stripes(1).n_stripes(), 1);
        assert_eq!(ShardedStore::<u64, V>::with_stripes(5).n_stripes(), 8);
        assert_eq!(ShardedStore::<u64, V>::new().n_stripes(), DEFAULT_STRIPES);
    }

    #[test]
    fn stripe_of_is_stable_and_in_range() {
        let s: ShardedStore<u64, V> = ShardedStore::with_stripes(8);
        for k in 0..1_000u64 {
            let idx = s.stripe_of(&k);
            assert!(idx < 8);
            assert_eq!(idx, s.stripe_of(&k));
        }
    }

    #[test]
    fn single_stripe_store_works() {
        let mut s: ShardedStore<u64, V> = ShardedStore::with_stripes(1);
        s.insert(1, V(10));
        s.insert(2, V(20));
        assert_eq!(s.stripe_of(&1), 0);
        assert_eq!(s.newest(&1).unwrap().0, 10);
        assert_eq!(s.stats().keys, 2);
    }

    #[test]
    fn reads_and_stats_match_across_stripes() {
        let mut s: ShardedStore<u64, V> = ShardedStore::with_stripes(4);
        for k in 0..100u64 {
            s.insert(k, V(k * 10));
            s.insert(k, V(k * 10 + 5));
        }
        assert_eq!(s.stats().keys, 100);
        assert_eq!(s.stats().versions, 200);
        let per_stripe: usize = (0..4).map(|i| s.stripe_stats(i).keys).sum();
        assert_eq!(per_stripe, 100);
        for k in 0..100u64 {
            assert_eq!(s.newest(&k).unwrap().0, k * 10 + 5);
            assert_eq!(s.latest_visible(&k, &at_most(k * 10)).unwrap().0, k * 10);
        }
        assert_eq!(s.iter().count(), 100);
    }

    #[test]
    fn stripes_actually_spread_keys() {
        let mut s: ShardedStore<u64, V> = ShardedStore::with_stripes(8);
        for k in 0..4_000u64 {
            s.insert(k, V(k));
        }
        for i in 0..8 {
            let st = s.stripe_stats(i);
            assert!(st.keys > 250, "stripe {i} got too few keys: {}", st.keys);
        }
    }

    #[test]
    fn apply_batch_and_collect_roll_up() {
        let mut s: ShardedStore<u64, V> = ShardedStore::with_stripes(4);
        let mut items: Vec<(u64, V)> = (0..64u64)
            .flat_map(|k| [(k, V(10)), (k, V(20)), (k, V(30))])
            .collect();
        let applied = s.apply_batch(&mut items);
        assert_eq!(applied, 192);
        assert!(items.is_empty());
        assert_eq!(s.stats().versions, 192);
        let removed = s.collect(&at_most(25));
        // Each key keeps V(20) (newest visible) and V(30): drops V(10).
        assert_eq!(removed, 64);
        assert_eq!(s.stats().collected, 64);

        // Per-stripe sweep finds nothing more at the same watermark…
        for i in 0..4 {
            assert_eq!(s.collect_stripe(i, &at_most(25)), 0);
        }
        // …and a higher watermark prunes stripe by stripe to one version.
        let mut removed = 0;
        for i in 0..4 {
            removed += s.collect_stripe(i, &at_most(35));
        }
        assert_eq!(removed, 64);
        assert_eq!(s.stats().versions, 64);
    }
}
