//! Multi-version key-value storage for the Wren reproduction.
//!
//! The paper's data store is multi-versioned: "an update operation creates
//! a new version of a key. Each version stores the value corresponding to
//! the key and some meta-data to track causality. The system periodically
//! garbage-collects old versions of keys" (§II-A).
//!
//! This crate provides that substrate, generic over the per-version
//! metadata so the same code backs Wren (two scalar timestamps, BDT) and
//! the Cure baseline (a per-DC dependency vector):
//!
//! * [`Versioned`] — what storage needs from a version: a total
//!   **last-writer-wins order key** `(commit timestamp, origin DC,
//!   transaction id)`, matching the paper's conflict-resolution rule
//!   (§II-C), plus the remote dependency time consulted by BiST bounds;
//! * [`SnapshotBound`] — a snapshot's visibility rule as first-class
//!   data: Wren's `(lt, rt)` pair, Cure's dependency vector, or a plain
//!   commit-timestamp cutoff;
//! * [`VersionChain`] — the versions of one key;
//! * [`MvStore`] — a flat map of chains behind an [`FxHasher`]-keyed
//!   map, with watermark-based garbage collection ([`MvStore::collect`])
//!   and O(1) [`MvStore::stats`];
//! * [`ShardedStore`] — a partition's worth of data as `S` power-of-two
//!   key-hash **stripes**, each an independent [`MvStore`] (the
//!   single-threaded reference the benches and property tests pin the
//!   stripe layout against);
//! * [`ConcurrentShardedStore`] — the same stripe layout with each
//!   stripe behind its own reader-writer lock and the stable-snapshot
//!   timestamps published through atomics. This is what the protocol
//!   servers run on: one writer thread applies the protocol while a pool
//!   of read workers serves slices concurrently (see its type docs for
//!   the safety argument);
//! * [`wal`] and [`checkpoint`] — the byte-level durability substrate: an
//!   append-only CRC-framed record log with group-commit fsync policies
//!   and a total (never-panicking) valid-prefix reader, plus atomically
//!   written snapshot files that bound replay. The typed record set and
//!   the replay logic live above, in `wren-core`'s durability module —
//!   the same sans-io layering the network stack uses.
//!
//! # Stripe layout
//!
//! A [`ShardedStore`] picks a version's stripe from the **top
//! `log2(S)` bits** of the key's FxHash; the inner maps index their
//! tables with the same hash's low bits, so the two selections stay
//! independent. Stripes are invisible to readers — `insert` /
//! `latest_visible` / `newest` / `chain` / `stats` / `iter` behave
//! exactly like the flat store (property-tested against it) — but give
//! the write side independent units: per-stripe stats rollup, per-stripe
//! GC sweeps ([`ShardedStore::collect_stripe`]), and per-stripe batch
//! buckets, so a future multi-threaded server can serve slices
//! concurrently without a global lock.
//!
//! # The batch-apply contract
//!
//! Replication applies versions in **commit-timestamp batches**: every
//! version in a replication batch shares one commit timestamp.
//! [`VersionChain::apply_batch`] exploits that: given a run
//! of versions sorted ascending by LWW order key, it finds the splice
//! point with a single binary search and bulk-inserts the run — turning
//! `N × O(log n + shift)` one-at-a-time inserts into `O(log n + N)`
//! plus at most one shift. [`MvStore::apply_batch`] sorts a whole batch
//! once by `(key, order key)` and feeds each key's run to its chain;
//! [`ShardedStore::apply_batch`] buckets by stripe first (buffers are
//! reused, so steady-state batch apply allocates nothing). Callers need
//! not pre-sort: the store-level entry points sort internally, and ties
//! on the commit timestamp resolve exactly as repeated
//! [`VersionChain::insert`] calls would.
//!
//! # The ordering invariant behind the read path
//!
//! Every chain keeps its versions **sorted by the LWW order key**, with
//! the key cached inline next to each version. The key's first component
//! is the commit timestamp, so sorting by key is also sorting by commit
//! timestamp (ties broken by origin DC, then transaction id — the same
//! order LWW resolves conflicts in).
//!
//! Every [`SnapshotBound`] decomposes into
//!
//! 1. a **ceiling**: a commit timestamp no visible version can exceed
//!    (`lt.max(rt)` for Wren, the vector maximum for Cure). Because the
//!    chain is key-sorted, "everything at or below the ceiling" is a
//!    **prefix** of the chain, found by `partition_point` binary search;
//! 2. a cheap **per-origin refinement** (which of `lt`/`rt` applies, or
//!    which vector entry), applied walking newest-to-oldest *within* that
//!    prefix.
//!
//! For a pure cutoff bound ([`SnapshotBound::at_most`]) the refinement
//! accepts the first candidate, so a read is exactly one binary search.
//! For Wren/Cure bounds the refinement usually accepts the first or
//! second candidate; the binary search has already skipped the (deep,
//! under replication lag) suffix of too-new versions that the seed's
//! closure-predicate API had to test one by one.
//!
//! # Example
//!
//! ```
//! use wren_storage::{MvStore, SnapshotBound, Versioned};
//! use wren_clock::Timestamp;
//!
//! #[derive(Clone, Debug)]
//! struct V { ct: Timestamp, data: u32 }
//! impl Versioned for V {
//!     fn order_key(&self) -> (Timestamp, u8, u64) { (self.ct, 0, 0) }
//! }
//!
//! let mut store: MvStore<u64, V> = MvStore::new();
//! store.insert(7, V { ct: Timestamp::from_micros(10), data: 1 });
//! store.insert(7, V { ct: Timestamp::from_micros(20), data: 2 });
//! // Read at a snapshot that only covers the first version:
//! let bound = SnapshotBound::at_most(Timestamp::from_micros(15));
//! let seen = store.latest_visible(&7, &bound);
//! assert_eq!(seen.unwrap().data, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
pub mod checkpoint;
mod concurrent;
mod fx;
mod sharded;
mod snapshot;
mod store;
pub mod wal;

pub use chain::{OrderKey, VersionChain, Versioned};
pub use concurrent::ConcurrentShardedStore;
pub use fx::{FxBuildHasher, FxHasher};
pub use sharded::ShardedStore;
pub use snapshot::SnapshotBound;
pub use store::{MvStore, StoreStats};
pub use wal::{FsyncPolicy, RecoveredLog, Wal, MAX_RECORD_LEN};
