//! Multi-version key-value storage for the Wren reproduction.
//!
//! The paper's data store is multi-versioned: "an update operation creates
//! a new version of a key. Each version stores the value corresponding to
//! the key and some meta-data to track causality. The system periodically
//! garbage-collects old versions of keys" (§II-A).
//!
//! This crate provides that substrate, generic over the per-version
//! metadata so the same code backs Wren (two scalar timestamps, BDT) and
//! the Cure baseline (a per-DC dependency vector):
//!
//! * [`Versioned`] — what storage needs from a version: a total
//!   **last-writer-wins order key** `(commit timestamp, origin DC,
//!   transaction id)`, matching the paper's conflict-resolution rule
//!   (§II-C: ties settled by the id of the originating DC combined with
//!   the transaction identifier);
//! * [`VersionChain`] — the versions of one key, newest first;
//! * [`MvStore`] — a partition's worth of chains, with watermark-based
//!   garbage collection ([`MvStore::collect`]).
//!
//! Visibility is *not* baked in: readers pass a snapshot predicate, because
//! visibility is exactly where Wren and Cure differ.
//!
//! # Example
//!
//! ```
//! use wren_storage::{MvStore, Versioned};
//! use wren_clock::Timestamp;
//!
//! #[derive(Clone, Debug)]
//! struct V { ct: Timestamp, data: u32 }
//! impl Versioned for V {
//!     fn order_key(&self) -> (Timestamp, u8, u64) { (self.ct, 0, 0) }
//! }
//!
//! let mut store: MvStore<u64, V> = MvStore::new();
//! store.insert(7, V { ct: Timestamp::from_micros(10), data: 1 });
//! store.insert(7, V { ct: Timestamp::from_micros(20), data: 2 });
//! // Read at a snapshot that only covers the first version:
//! let seen = store.latest_visible(&7, |v| v.ct <= Timestamp::from_micros(15));
//! assert_eq!(seen.unwrap().data, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod store;

pub use chain::{VersionChain, Versioned};
pub use store::{MvStore, StoreStats};
