//! A fast, non-cryptographic hasher for the store's key map.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! HashDoS-resistant but costs tens of cycles per `u64` key — pure
//! overhead on the storage hot path, where keys are workload-controlled
//! integers, not attacker-controlled strings. This is the FxHash
//! construction (a single multiply-xor round per word, as used by rustc),
//! vendored here because the build environment has no registry access.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: 2^64 / φ, the usual Fibonacci-hashing
/// multiplier, which spreads consecutive keys across the table.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One multiply-xor round per word of input (FxHash).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_and_key_sensitive() {
        let build = FxBuildHasher::default();
        let h = |k: u64| build.hash_one(k);
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: HashMap<u64, u64, FxBuildHasher> = HashMap::default();
        for k in 0..1_000 {
            m.insert(k, k * 2);
        }
        for k in 0..1_000 {
            assert_eq!(m[&k], k * 2);
        }
    }

    #[test]
    fn spreads_sequential_keys() {
        // Consecutive keys must not collide in the low bits the table
        // actually indexes with.
        let build = FxBuildHasher::default();
        let mut low_bits: Vec<u64> = (0..64u64).map(|k| build.hash_one(k) & 0xFF).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(low_bits.len() > 48, "low bits collide: {}", low_bits.len());
    }
}
