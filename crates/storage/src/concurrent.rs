//! Stripe-locked concurrent storage: the [`ShardedStore`] layout with
//! each stripe behind its own reader-writer lock, so read slices can be
//! served from many threads while one writer applies the protocol.
//!
//! [`ShardedStore`] (PR 2) gave a partition independent stripes but still
//! required `&mut self` for every write, which chains the whole store to
//! one thread. A [`ConcurrentShardedStore`] is the multi-threaded step
//! the ROADMAP queued behind it:
//!
//! * every stripe is an independent `RwLock<MvStore>` — readers of
//!   different keys share stripes without contention, readers of the same
//!   stripe share the read lock, and a writer only excludes readers of
//!   the *one* stripe it touches;
//! * the whole API takes `&self`: the single protocol writer and any
//!   number of read workers operate through the same shared handle
//!   (typically an `Arc<ConcurrentShardedStore>`);
//! * the partition's **stable-snapshot timestamps** (Wren's `lst`/`rst`)
//!   are published through atomics ([`publish_stable`], [`stable`]), so a
//!   read worker picks up its visibility bound without ever touching the
//!   writer's state. Publication is monotone (`fetch_max`) and uses
//!   release/acquire ordering: a reader that observes a raised timestamp
//!   also observes every version applied before it was published.
//!
//! Reads return **owned** versions (a clone taken inside the read lock)
//! rather than references: a reference cannot outlive a lock guard, and
//! the protocol servers cloned the returned version anyway to put it on
//! the wire.
//!
//! # Why reads at a stable bound are safe
//!
//! Wren's invariant — the snapshot `(lt, rt)` only ever names versions
//! already installed on every partition — is what makes the lock split
//! sound. A concurrent writer can only be installing versions *newer*
//! than any published stable bound, so a reader either misses them
//! (correct: they are above its ceiling) or sees them already spliced
//! (correct: the stripe lock rules out torn state). The oracle stress
//! test (`tests/concurrent_stress.rs`) checks exactly this against a
//! single-threaded [`MvStore`] replay.
//!
//! [`publish_stable`]: ConcurrentShardedStore::publish_stable
//! [`stable`]: ConcurrentShardedStore::stable

use crate::{FxBuildHasher, MvStore, SnapshotBound, StoreStats, VersionChain, Versioned};
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use wren_clock::Timestamp;

/// Default stripe count, matching [`ShardedStore`](crate::ShardedStore):
/// enough lock granularity to spread a partition's read workers without
/// bloating small stores.
const DEFAULT_STRIPES: usize = 16;

/// A partition's worth of multi-versioned data, striped by key hash with
/// **one reader-writer lock per stripe** and atomically-published stable
/// snapshot timestamps.
///
/// Semantically a drop-in for [`ShardedStore`](crate::ShardedStore) /
/// [`MvStore`]: `insert` / `latest_visible` / `newest` / `collect` /
/// `stats` answer exactly what the single-threaded stores answer (the
/// property stress test replays both). The differences are concurrency-
/// shaped:
///
/// * every method takes `&self`, so the store can be shared via `Arc`
///   between one protocol writer and a pool of read workers;
/// * lookups return owned (cloned) versions instead of references;
/// * chain-level access goes through [`with_chain`] /
///   [`with_stripe`](ConcurrentShardedStore::with_stripe) closures, which
///   run under the stripe's read lock.
///
/// [`with_chain`]: ConcurrentShardedStore::with_chain
pub struct ConcurrentShardedStore<K, V> {
    stripes: Vec<RwLock<MvStore<K, V>>>,
    /// `64 - log2(stripe count)`: keys select a stripe by `hash >> shift`.
    shift: u32,
    hasher: FxBuildHasher,
    /// Published local stable time (raw [`Timestamp`] bits; monotone).
    lst: AtomicU64,
    /// Published remote stable time (raw [`Timestamp`] bits; monotone).
    rst: AtomicU64,
    /// Per-stripe buckets reused across [`apply_batch`] calls. Behind a
    /// `Mutex` only so `apply_batch` can take `&self`; the protocol has a
    /// single writer, so the lock is uncontended.
    ///
    /// [`apply_batch`]: ConcurrentShardedStore::apply_batch
    scratch: Mutex<Vec<Vec<(K, V)>>>,
}

impl<K, V> Default for ConcurrentShardedStore<K, V> {
    fn default() -> Self {
        ConcurrentShardedStore::with_stripes(DEFAULT_STRIPES)
    }
}

impl<K, V> fmt::Debug for ConcurrentShardedStore<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConcurrentShardedStore")
            .field("stripes", &self.stripes.len())
            .field("lst", &Timestamp::from_raw(self.lst.load(Ordering::Acquire)))
            .field("rst", &Timestamp::from_raw(self.rst.load(Ordering::Acquire)))
            .finish_non_exhaustive()
    }
}

impl<K, V> ConcurrentShardedStore<K, V> {
    /// Creates an empty store with the default stripe count.
    pub fn new() -> Self {
        ConcurrentShardedStore::default()
    }

    /// Creates an empty store with at least `stripes` stripes, rounded up
    /// to a power of two (minimum 1).
    pub fn with_stripes(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        ConcurrentShardedStore {
            stripes: (0..n).map(|_| RwLock::new(MvStore::default())).collect(),
            shift: 64 - n.trailing_zeros(),
            hasher: FxBuildHasher::default(),
            lst: AtomicU64::new(0),
            rst: AtomicU64::new(0),
            scratch: Mutex::new((0..n).map(|_| Vec::new()).collect()),
        }
    }

    /// Number of stripes (always a power of two).
    pub fn n_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Raises the published stable snapshot to at least `(lst, rst)`.
    ///
    /// Monotone (`fetch_max`) and release-ordered: every version the
    /// caller applied before publishing is visible to any reader that
    /// observes the raised timestamps through [`stable`]. Safe to call
    /// from both the writer and read workers (Wren's `SliceReq` carries
    /// stable times that raise the target's watermarks).
    ///
    /// [`stable`]: ConcurrentShardedStore::stable
    pub fn publish_stable(&self, lst: Timestamp, rst: Timestamp) {
        self.lst.fetch_max(lst.raw(), Ordering::AcqRel);
        self.rst.fetch_max(rst.raw(), Ordering::AcqRel);
    }

    /// The published `(lst, rst)` stable snapshot pair.
    pub fn stable(&self) -> (Timestamp, Timestamp) {
        (self.lst(), self.rst())
    }

    /// The published local stable time.
    pub fn lst(&self) -> Timestamp {
        Timestamp::from_raw(self.lst.load(Ordering::Acquire))
    }

    /// The published remote stable time.
    pub fn rst(&self) -> Timestamp {
        Timestamp::from_raw(self.rst.load(Ordering::Acquire))
    }
}

impl<K: Eq + Hash + Clone, V: Versioned + Clone> ConcurrentShardedStore<K, V> {
    /// The stripe index `key` maps to (top hash bits, exactly like
    /// [`ShardedStore`](crate::ShardedStore) — see its docs for why the
    /// high end).
    #[inline]
    pub fn stripe_of(&self, key: &K) -> usize {
        if self.shift == 64 {
            return 0; // single stripe: `hash >> 64` would be UB-shaped
        }
        (self.hasher.hash_one(key) >> self.shift) as usize
    }

    /// Inserts a new version of `key`, write-locking only its stripe.
    pub fn insert(&self, key: K, version: V) {
        let s = self.stripe_of(&key);
        self.stripes[s].write().insert(key, version);
    }

    /// Inserts a version of `key` only if no version with the same LWW
    /// order key exists ([`MvStore::insert_if_new`]). Returns whether
    /// the insert happened. WAL replay and post-restart catch-up use
    /// this so re-delivered writes are no-ops.
    pub fn insert_if_new(&self, key: K, version: V) -> bool {
        let s = self.stripe_of(&key);
        self.stripes[s].write().insert_if_new(key, version)
    }

    /// The newest version of `key` inside the snapshot `bound`, cloned
    /// out under the stripe's read lock.
    pub fn latest_visible(&self, key: &K, bound: &SnapshotBound<'_>) -> Option<V> {
        self.stripes[self.stripe_of(key)]
            .read()
            .latest_visible(key, bound)
            .cloned()
    }

    /// The newest version of `key` outright, cloned out under the
    /// stripe's read lock.
    pub fn newest(&self, key: &K) -> Option<V> {
        self.stripes[self.stripe_of(key)].read().newest(key).cloned()
    }

    /// Runs `f` on `key`'s chain (or `None`) under the stripe's read
    /// lock. The closure form keeps the guard's lifetime inside the call.
    pub fn with_chain<R>(&self, key: &K, f: impl FnOnce(Option<&VersionChain<V>>) -> R) -> R {
        f(self.stripes[self.stripe_of(key)].read().chain(key))
    }

    /// Runs `f` on one stripe's [`MvStore`] under its read lock (tests,
    /// oracle comparisons, per-stripe reporting).
    ///
    /// # Panics
    ///
    /// Panics if `stripe >= n_stripes()`.
    pub fn with_stripe<R>(&self, stripe: usize, f: impl FnOnce(&MvStore<K, V>) -> R) -> R {
        f(&self.stripes[stripe].read())
    }

    /// Applies a batch of versions: items are bucketed by stripe, then
    /// each stripe is write-locked once and splices its keys' runs with
    /// one chain search per key ([`MvStore::apply_batch`]). Stripes not
    /// named by the batch are never locked, so concurrent readers of
    /// other stripes proceed untouched. `items` is drained (capacity
    /// kept). Returns the number of versions applied.
    pub fn apply_batch(&self, items: &mut Vec<(K, V)>) -> usize
    where
        K: Ord,
    {
        if items.is_empty() {
            return 0;
        }
        let mut scratch = self.scratch.lock();
        for (k, v) in items.drain(..) {
            let s = self.stripe_of(&k);
            scratch[s].push((k, v));
        }
        let mut applied = 0;
        for (stripe, bucket) in self.stripes.iter().zip(scratch.iter_mut()) {
            if !bucket.is_empty() {
                applied += stripe.write().apply_batch(bucket);
            }
        }
        applied
    }

    /// Runs garbage collection over every stripe, write-locking one
    /// stripe at a time (readers of other stripes are never stalled).
    /// Returns the number of versions removed.
    pub fn collect(&self, oldest_snapshot: &SnapshotBound<'_>) -> usize {
        self.stripes
            .iter()
            .map(|s| s.write().collect(oldest_snapshot))
            .sum()
    }

    /// Garbage-collects a single stripe. Returns the number of versions
    /// removed.
    ///
    /// # Panics
    ///
    /// Panics if `stripe >= n_stripes()`.
    pub fn collect_stripe(&self, stripe: usize, oldest_snapshot: &SnapshotBound<'_>) -> usize {
        self.stripes[stripe].write().collect(oldest_snapshot)
    }

    /// Aggregate statistics: the sum of S O(1) per-stripe rollups, each
    /// read under its stripe's read lock. Stripes are visited one at a
    /// time, so the total is a *near*-instantaneous snapshot — exact
    /// whenever no writer runs concurrently (stats consumers are reports
    /// and tests, both of which quiesce first).
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in &self.stripes {
            let st = s.read().stats();
            total.keys += st.keys;
            total.versions += st.versions;
            total.collected += st.collected;
        }
        total
    }

    /// Statistics of one stripe (O(1) under its read lock).
    ///
    /// # Panics
    ///
    /// Panics if `stripe >= n_stripes()`.
    pub fn stripe_stats(&self, stripe: usize) -> StoreStats {
        self.stripes[stripe].read().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Debug, PartialEq)]
    struct V(u64);
    impl Versioned for V {
        fn order_key(&self) -> (Timestamp, u8, u64) {
            (Timestamp::from_micros(self.0), 0, self.0)
        }
    }

    fn at_most(ct: u64) -> SnapshotBound<'static> {
        SnapshotBound::at_most(Timestamp::from_micros(ct))
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(ConcurrentShardedStore::<u64, V>::with_stripes(0).n_stripes(), 1);
        assert_eq!(ConcurrentShardedStore::<u64, V>::with_stripes(5).n_stripes(), 8);
        assert_eq!(ConcurrentShardedStore::<u64, V>::new().n_stripes(), DEFAULT_STRIPES);
    }

    #[test]
    fn shared_reads_and_writes() {
        let s: ConcurrentShardedStore<u64, V> = ConcurrentShardedStore::new();
        s.insert(1, V(10));
        s.insert(1, V(20));
        s.insert(2, V(5));
        assert_eq!(s.newest(&1), Some(V(20)));
        assert_eq!(s.latest_visible(&1, &at_most(15)), Some(V(10)));
        assert_eq!(s.latest_visible(&3, &SnapshotBound::all()), None);
        assert_eq!(s.stats().keys, 2);
        assert_eq!(s.stats().versions, 3);
        s.with_chain(&1, |c| assert_eq!(c.unwrap().len(), 2));
        s.with_chain(&9, |c| assert!(c.is_none()));
    }

    #[test]
    fn stable_publication_is_monotone() {
        let s: ConcurrentShardedStore<u64, V> = ConcurrentShardedStore::new();
        assert_eq!(s.stable(), (Timestamp::ZERO, Timestamp::ZERO));
        s.publish_stable(Timestamp::from_micros(10), Timestamp::from_micros(5));
        s.publish_stable(Timestamp::from_micros(7), Timestamp::from_micros(9));
        // Lower lst ignored, higher rst adopted — each raises independently.
        assert_eq!(
            s.stable(),
            (Timestamp::from_micros(10), Timestamp::from_micros(9))
        );
    }

    #[test]
    fn apply_batch_and_collect_match_sharded_semantics() {
        let s: ConcurrentShardedStore<u64, V> = ConcurrentShardedStore::with_stripes(4);
        let mut items: Vec<(u64, V)> = (0..64u64)
            .flat_map(|k| [(k, V(10)), (k, V(20)), (k, V(30))])
            .collect();
        assert_eq!(s.apply_batch(&mut items), 192);
        assert!(items.is_empty());
        assert_eq!(s.stats().versions, 192);
        // Each key keeps V(20) (newest visible at 25) and V(30): drops V(10).
        assert_eq!(s.collect(&at_most(25)), 64);
        assert_eq!(s.stats().collected, 64);
        let per_stripe: usize = (0..4).map(|i| s.collect_stripe(i, &at_most(35))).sum();
        assert_eq!(per_stripe, 64);
        assert_eq!(s.stats().versions, 64);
    }

    #[test]
    fn concurrent_readers_share_a_store_with_a_writer() {
        let s = Arc::new(ConcurrentShardedStore::<u64, V>::new());
        for k in 0..128u64 {
            s.insert(k, V(10));
        }
        s.publish_stable(Timestamp::from_micros(10), Timestamp::from_micros(10));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        let (lst, _) = s.stable();
                        let bound = SnapshotBound::at_most(lst);
                        for k in (0..128u64).step_by(17) {
                            let v = s.latest_visible(&k, &bound).expect("key always present");
                            // Never a version above the published bound.
                            assert!(v.order_key().0 <= lst);
                        }
                    }
                })
            })
            .collect();
        for round in 1..40u64 {
            let ct = 10 + round;
            for k in 0..128u64 {
                s.insert(k, V(ct));
            }
            s.publish_stable(Timestamp::from_micros(ct), Timestamp::from_micros(ct));
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(s.newest(&0), Some(V(49)));
    }
}
