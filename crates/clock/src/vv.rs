use crate::Timestamp;
use std::fmt;

/// A version vector with one [`Timestamp`] entry per data center.
///
/// Every Wren partition `p` in DC `m` maintains `VV[i]` = the timestamp of
/// the latest update received from its sibling replica in DC `i`, with
/// `VV[m]` acting as the partition's local version clock (the local
/// snapshot it has installed) — Algorithm 4 of the paper. The BiST
/// stabilization protocol aggregates these vectors into the two scalars
/// `LST`/`RST`; the Cure baseline instead ships whole vectors as its
/// dependency metadata, which is exactly the overhead Fig. 7a measures.
///
/// # Example
///
/// ```
/// use wren_clock::{Timestamp, VersionVector};
///
/// let mut vv = VersionVector::new(3);
/// vv.set(1, Timestamp::from_micros(50));
/// assert_eq!(vv.get(1), Timestamp::from_micros(50));
/// assert_eq!(vv.min_except(1), Timestamp::ZERO);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VersionVector {
    entries: Vec<Timestamp>,
}

impl VersionVector {
    /// Creates a vector of `len` zero entries (one per DC).
    pub fn new(len: usize) -> Self {
        VersionVector {
            entries: vec![Timestamp::ZERO; len],
        }
    }

    /// Builds a vector from explicit entries.
    pub fn from_entries(entries: Vec<Timestamp>) -> Self {
        VersionVector { entries }
    }

    /// Number of entries (= number of DCs).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for DC `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Timestamp {
        self.entries[i]
    }

    /// Sets the entry for DC `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, t: Timestamp) {
        self.entries[i] = t;
    }

    /// Raises the entry for DC `i` to `max(current, t)`.
    #[inline]
    pub fn raise(&mut self, i: usize, t: Timestamp) {
        if t > self.entries[i] {
            self.entries[i] = t;
        }
    }

    /// Entrywise maximum with `other` (join in the vector-clock lattice).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn join(&mut self, other: &VersionVector) {
        assert_eq!(self.len(), other.len(), "version vector length mismatch");
        for (mine, theirs) in self.entries.iter_mut().zip(&other.entries) {
            if *theirs > *mine {
                *mine = *theirs;
            }
        }
    }

    /// Entrywise minimum with `other` (meet in the vector-clock lattice).
    ///
    /// Stabilization protocols compute global/local stable snapshots as
    /// meets across all partitions of a DC.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn meet(&mut self, other: &VersionVector) {
        assert_eq!(self.len(), other.len(), "version vector length mismatch");
        for (mine, theirs) in self.entries.iter_mut().zip(&other.entries) {
            if *theirs < *mine {
                *mine = *theirs;
            }
        }
    }

    /// `true` iff every entry of `self` is ≤ the matching entry of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dominated_by(&self, other: &VersionVector) -> bool {
        assert_eq!(self.len(), other.len(), "version vector length mismatch");
        self.entries
            .iter()
            .zip(&other.entries)
            .all(|(mine, theirs)| mine <= theirs)
    }

    /// Minimum over all entries.
    ///
    /// Returns [`Timestamp::MAX`] for an empty vector.
    pub fn min(&self) -> Timestamp {
        self.entries.iter().copied().min().unwrap_or(Timestamp::MAX)
    }

    /// Minimum over all entries except index `skip` — the aggregate BiST
    /// sends for the remote stable time (Algorithm 4 line 30).
    ///
    /// Returns [`Timestamp::MAX`] if there is no other entry.
    pub fn min_except(&self, skip: usize) -> Timestamp {
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, t)| *t)
            .min()
            .unwrap_or(Timestamp::MAX)
    }

    /// Iterates over the entries in DC order.
    pub fn iter(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.entries.iter().copied()
    }

    /// Borrows the entries as a slice.
    pub fn as_slice(&self) -> &[Timestamp] {
        &self.entries
    }
}

impl FromIterator<Timestamp> for VersionVector {
    fn from_iter<I: IntoIterator<Item = Timestamp>>(iter: I) -> Self {
        VersionVector {
            entries: iter.into_iter().collect(),
        }
    }
}

impl fmt::Debug for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.entries.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(micros: u64) -> Timestamp {
        Timestamp::from_micros(micros)
    }

    #[test]
    fn new_is_all_zero() {
        let vv = VersionVector::new(4);
        assert_eq!(vv.len(), 4);
        assert!(vv.iter().all(|t| t.is_zero()));
    }

    #[test]
    fn raise_only_increases() {
        let mut vv = VersionVector::new(2);
        vv.raise(0, ts(10));
        vv.raise(0, ts(5));
        assert_eq!(vv.get(0), ts(10));
    }

    #[test]
    fn join_takes_entrywise_max() {
        let mut a = VersionVector::from_entries(vec![ts(1), ts(9)]);
        let b = VersionVector::from_entries(vec![ts(4), ts(2)]);
        a.join(&b);
        assert_eq!(a.as_slice(), &[ts(4), ts(9)]);
    }

    #[test]
    fn meet_takes_entrywise_min() {
        let mut a = VersionVector::from_entries(vec![ts(1), ts(9)]);
        let b = VersionVector::from_entries(vec![ts(4), ts(2)]);
        a.meet(&b);
        assert_eq!(a.as_slice(), &[ts(1), ts(2)]);
    }

    #[test]
    fn dominated_by_is_componentwise() {
        let a = VersionVector::from_entries(vec![ts(1), ts(2)]);
        let b = VersionVector::from_entries(vec![ts(1), ts(3)]);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        assert!(a.dominated_by(&a));
    }

    #[test]
    fn min_except_skips_local_entry() {
        let vv = VersionVector::from_entries(vec![ts(1), ts(50), ts(20)]);
        assert_eq!(vv.min_except(0), ts(20));
        assert_eq!(vv.min_except(2), ts(1));
        assert_eq!(vv.min(), ts(1));
    }

    #[test]
    fn min_of_empty_is_max() {
        let vv = VersionVector::new(0);
        assert_eq!(vv.min(), Timestamp::MAX);
        let single = VersionVector::new(1);
        assert_eq!(single.min_except(0), Timestamp::MAX);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn join_rejects_length_mismatch() {
        let mut a = VersionVector::new(2);
        let b = VersionVector::new(3);
        a.join(&b);
    }

    #[test]
    fn collects_from_iterator() {
        let vv: VersionVector = [ts(1), ts(2)].into_iter().collect();
        assert_eq!(vv.len(), 2);
    }
}
