//! Clock primitives for the Wren reproduction.
//!
//! Wren's protocols (CANToR, BDT, BiST) are built on three clock
//! abstractions, all provided by this crate:
//!
//! * [`Timestamp`] — a 64-bit **hybrid timestamp** packing 48 bits of
//!   physical time (microseconds) with a 16-bit logical counter. All
//!   dependency and stabilization metadata in Wren is expressed as one or
//!   two of these scalars.
//! * [`HybridClock`] — a hybrid logical clock (HLC) in the style of
//!   Kulkarni et al. (OPODIS 2014). Wren's commit protocol advances it with
//!   `HLC ← max(Clock, ht + 1, HLC + 1)` (Algorithm 3, line 14 of the
//!   paper), which [`HybridClock::tick_at_least`] implements directly.
//! * [`VersionVector`] — one entry per data center, used by every partition
//!   to track the latest update applied from each replica (`VV` in
//!   Algorithm 4) and by the Cure baseline as its dependency metadata.
//!
//! Physical time is abstracted behind the [`PhysicalClock`] trait so the
//! same protocol code runs against the deterministic simulator
//! ([`SkewedClock`], which models NTP-style offset and drift) and the
//! threaded runtime ([`SystemClock`]).
//!
//! # Example
//!
//! ```
//! use wren_clock::{HybridClock, Timestamp};
//!
//! let mut hlc = HybridClock::new();
//! let a = hlc.tick(1_000); // physical clock reads 1000 µs
//! let b = hlc.tick(1_000); // same physical instant: logical part breaks the tie
//! assert!(b > a);
//! assert_eq!(b.physical_micros(), 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hlc;
mod physical;
mod timestamp;
mod vv;

pub use hlc::HybridClock;
pub use physical::{PhysicalClock, SkewedClock, SystemClock};
pub use timestamp::Timestamp;
pub use vv::VersionVector;
