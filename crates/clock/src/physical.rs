use std::time::Instant;

/// A source of physical time in microseconds.
///
/// Protocol code never calls `Instant::now` directly; it reads whichever
/// `PhysicalClock` the driver supplies. The simulator injects
/// [`SkewedClock`]s (deterministic, with per-server offset and drift,
/// modelling NTP-synchronized machines), while the threaded runtime uses
/// [`SystemClock`].
pub trait PhysicalClock {
    /// Current reading, in microseconds.
    ///
    /// `reference_micros` is the driver's notion of true time: the
    /// simulator passes simulated time; the threaded runtime passes elapsed
    /// wall-clock time. Implementations map it to this server's (possibly
    /// skewed) local reading.
    fn now_micros(&self, reference_micros: u64) -> u64;
}

/// A physical clock with a constant offset and a linear drift rate,
/// modelling an NTP-disciplined machine.
///
/// The paper's Cure baseline blocks reads while a partition's physical
/// clock lags a transaction's snapshot timestamp; reproducing that effect
/// requires clocks that genuinely disagree. Offsets of a few hundred
/// microseconds to a few milliseconds match the skews the paper attributes
/// to NTP (§III, footnote on clock skew vs. geo-replication delay).
///
/// # Example
///
/// ```
/// use wren_clock::{PhysicalClock, SkewedClock};
///
/// let fast = SkewedClock::new(500, 0.0);   // half a millisecond ahead
/// let slow = SkewedClock::new(-500, 0.0);  // half a millisecond behind
/// assert_eq!(fast.now_micros(10_000), 10_500);
/// assert_eq!(slow.now_micros(10_000), 9_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewedClock {
    offset_micros: i64,
    /// Fractional drift: 1e-5 means the clock gains 10 µs per second.
    drift: f64,
}

impl SkewedClock {
    /// Creates a skewed clock with the given constant offset (µs, may be
    /// negative) and drift rate (fraction of elapsed time).
    pub fn new(offset_micros: i64, drift: f64) -> Self {
        SkewedClock {
            offset_micros,
            drift,
        }
    }

    /// A perfectly synchronized clock.
    pub fn perfect() -> Self {
        SkewedClock::new(0, 0.0)
    }

    /// The constant offset in microseconds.
    pub fn offset_micros(&self) -> i64 {
        self.offset_micros
    }
}

impl PhysicalClock for SkewedClock {
    fn now_micros(&self, reference_micros: u64) -> u64 {
        let drifted = reference_micros as f64 * self.drift;
        let raw = reference_micros as i64 + self.offset_micros + drifted as i64;
        raw.max(0) as u64
    }
}

/// Wall-clock time relative to a fixed epoch, for the threaded runtime.
///
/// All servers of one in-process cluster share the epoch, so their readings
/// are mutually consistent up to OS scheduling noise; tests can additionally
/// wrap this in a [`SkewedClock`]-style offset via
/// [`SystemClock::with_offset`].
#[derive(Debug, Clone)]
pub struct SystemClock {
    epoch: Instant,
    offset_micros: i64,
}

impl SystemClock {
    /// Creates a clock measuring microseconds since `epoch`.
    pub fn new(epoch: Instant) -> Self {
        SystemClock {
            epoch,
            offset_micros: 0,
        }
    }

    /// Adds an artificial offset, for skew-injection tests on the threaded
    /// runtime.
    pub fn with_offset(epoch: Instant, offset_micros: i64) -> Self {
        SystemClock {
            epoch,
            offset_micros,
        }
    }

    /// Reads the clock now (ignoring any reference).
    pub fn read(&self) -> u64 {
        let elapsed = self.epoch.elapsed().as_micros() as i64;
        (elapsed + self.offset_micros).max(0) as u64
    }
}

impl PhysicalClock for SystemClock {
    fn now_micros(&self, _reference_micros: u64) -> u64 {
        self.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_clock_applies_offset() {
        let c = SkewedClock::new(250, 0.0);
        assert_eq!(c.now_micros(1_000), 1_250);
    }

    #[test]
    fn skewed_clock_applies_drift() {
        // 1e-3 drift: gains 1 ms per second.
        let c = SkewedClock::new(0, 1e-3);
        assert_eq!(c.now_micros(1_000_000), 1_001_000);
    }

    #[test]
    fn skewed_clock_saturates_at_zero() {
        let c = SkewedClock::new(-10_000, 0.0);
        assert_eq!(c.now_micros(5_000), 0);
    }

    #[test]
    fn perfect_clock_is_identity() {
        let c = SkewedClock::perfect();
        assert_eq!(c.now_micros(123), 123);
    }

    #[test]
    fn system_clock_moves_forward() {
        let c = SystemClock::new(Instant::now());
        let a = c.read();
        let b = c.read();
        assert!(b >= a);
    }

    #[test]
    fn system_clock_offset_applies() {
        let c = SystemClock::with_offset(Instant::now(), 1_000_000);
        assert!(c.read() >= 1_000_000);
    }
}
