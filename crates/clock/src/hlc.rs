use crate::Timestamp;

/// A hybrid logical clock (HLC).
///
/// An HLC produces timestamps that are (a) strictly monotonic per process,
/// (b) consistent with causality across processes when merged on message
/// receipt, and (c) close to physical time. Wren servers use one HLC each:
/// the prepare phase computes `HLC ← max(Clock, ht + 1, HLC + 1)`
/// (Algorithm 3 line 14) and the commit phase `HLC ← max(HLC, ct, Clock)`
/// (line 21). The H-Cure baseline exists precisely to show that HLCs alone
/// (without CANToR snapshots) do not eliminate read blocking.
///
/// The clock itself never reads physical time: callers pass the current
/// physical reading explicitly, which keeps the protocol state machines
/// deterministic under simulation.
///
/// # Example
///
/// ```
/// use wren_clock::HybridClock;
///
/// let mut clock = HybridClock::new();
/// let t1 = clock.tick(100);
/// let t2 = clock.tick(90); // physical clock went backwards: HLC does not
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HybridClock {
    current: Timestamp,
}

impl HybridClock {
    /// Creates a clock at [`Timestamp::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock whose last emitted timestamp is `at`.
    pub fn starting_at(at: Timestamp) -> Self {
        HybridClock { current: at }
    }

    /// The last timestamp emitted (or merged); the clock will never emit
    /// anything ≤ this value again.
    #[inline]
    pub fn current(&self) -> Timestamp {
        self.current
    }

    /// Advances the clock for a local or send event given the physical
    /// reading `now_micros`, returning a fresh timestamp strictly greater
    /// than every previously returned one.
    pub fn tick(&mut self, now_micros: u64) -> Timestamp {
        let phys = Timestamp::from_micros(now_micros);
        self.current = phys.max(self.current.successor());
        self.current
    }

    /// Advances the clock ensuring the result is strictly greater than
    /// `floor`: `HLC ← max(Clock, floor + 1, HLC + 1)`.
    ///
    /// This is the exact update Wren cohorts perform when proposing a
    /// commit timestamp, where `floor` is the highest timestamp the client
    /// has observed (`ht = max(lt, rt, hwt)`).
    pub fn tick_at_least(&mut self, now_micros: u64, floor: Timestamp) -> Timestamp {
        let phys = Timestamp::from_micros(now_micros);
        self.current = phys.max(floor.successor()).max(self.current.successor());
        self.current
    }

    /// Merges a remote timestamp without emitting:
    /// `HLC ← max(HLC, remote, Clock)`.
    ///
    /// Used on commit messages (Algorithm 3 line 21) and by H-Cure on read
    /// requests to absorb snapshot timestamps from the future.
    pub fn merge(&mut self, now_micros: u64, remote: Timestamp) {
        let phys = Timestamp::from_micros(now_micros);
        self.current = self.current.max(remote).max(phys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_strictly_monotonic() {
        let mut c = HybridClock::new();
        let mut last = Timestamp::ZERO;
        for now in [10u64, 10, 10, 5, 20, 20, 3] {
            let t = c.tick(now);
            assert!(t > last, "tick must be strictly monotonic");
            last = t;
        }
    }

    #[test]
    fn tick_tracks_physical_time_when_ahead() {
        let mut c = HybridClock::new();
        let t = c.tick(1_000);
        assert_eq!(t.physical_micros(), 1_000);
        assert_eq!(t.logical(), 0);
    }

    #[test]
    fn tick_at_least_exceeds_floor() {
        let mut c = HybridClock::new();
        let floor = Timestamp::from_parts(5_000, 3);
        let t = c.tick_at_least(1_000, floor);
        assert!(t > floor);
        assert_eq!(t, floor.successor());
    }

    #[test]
    fn tick_at_least_prefers_physical_when_larger() {
        let mut c = HybridClock::new();
        let floor = Timestamp::from_parts(10, 0);
        let t = c.tick_at_least(9_000, floor);
        assert_eq!(t, Timestamp::from_micros(9_000));
    }

    #[test]
    fn merge_absorbs_remote() {
        let mut c = HybridClock::new();
        c.merge(50, Timestamp::from_parts(700, 9));
        assert_eq!(c.current(), Timestamp::from_parts(700, 9));
        // A later tick stays above the merged value.
        let t = c.tick(60);
        assert!(t > Timestamp::from_parts(700, 9));
    }

    #[test]
    fn merge_keeps_local_when_remote_old() {
        let mut c = HybridClock::starting_at(Timestamp::from_parts(900, 0));
        c.merge(10, Timestamp::from_parts(100, 0));
        assert_eq!(c.current(), Timestamp::from_parts(900, 0));
    }

    #[test]
    fn starting_at_resumes() {
        let mut c = HybridClock::starting_at(Timestamp::from_parts(42, 42));
        assert_eq!(c.current(), Timestamp::from_parts(42, 42));
        assert!(c.tick(0) > Timestamp::from_parts(42, 42));
    }
}
