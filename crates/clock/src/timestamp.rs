use std::fmt;

/// Number of low bits reserved for the logical counter of a hybrid
/// timestamp.
const LOGICAL_BITS: u32 = 16;
/// Mask selecting the logical counter.
const LOGICAL_MASK: u64 = (1 << LOGICAL_BITS) - 1;

/// A 64-bit hybrid timestamp: 48 bits of physical microseconds, 16 bits of
/// logical counter.
///
/// The packing makes hybrid timestamps totally ordered by a plain integer
/// comparison while staying close to physical time, which is exactly the
/// property Wren's Binary Dependency Time (BDT) relies on: every item and
/// snapshot is described by *two* of these scalars (a local and a remote
/// one), independent of the number of partitions or data centers.
///
/// 48 bits of microseconds cover ~8.9 years of uptime, far beyond any
/// simulated or real run of this repository.
///
/// # Example
///
/// ```
/// use wren_clock::Timestamp;
///
/// let t = Timestamp::from_parts(42, 7);
/// assert_eq!(t.physical_micros(), 42);
/// assert_eq!(t.logical(), 7);
/// assert!(t > Timestamp::from_parts(42, 6));
/// assert!(t < Timestamp::from_parts(43, 0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp: smaller than or equal to every other timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Builds a timestamp from raw packed bits.
    ///
    /// Use [`Timestamp::from_parts`] unless round-tripping through the wire
    /// codec.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        Timestamp(raw)
    }

    /// Returns the raw packed 64-bit representation.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Builds a timestamp from a physical microsecond reading and a logical
    /// counter.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `micros` does not fit in 48 bits.
    #[inline]
    pub fn from_parts(micros: u64, logical: u16) -> Self {
        debug_assert!(micros < (1 << 48), "physical part overflows 48 bits");
        Timestamp((micros << LOGICAL_BITS) | logical as u64)
    }

    /// Builds a timestamp with physical part `micros` and a zero logical
    /// counter: the smallest timestamp at that physical instant.
    #[inline]
    pub fn from_micros(micros: u64) -> Self {
        Self::from_parts(micros, 0)
    }

    /// The physical (microsecond) component.
    #[inline]
    pub const fn physical_micros(self) -> u64 {
        self.0 >> LOGICAL_BITS
    }

    /// The logical counter component.
    #[inline]
    pub const fn logical(self) -> u16 {
        (self.0 & LOGICAL_MASK) as u16
    }

    /// The immediate successor timestamp (`self + 1` on the logical
    /// counter, carrying into the physical part on overflow).
    ///
    /// Wren's prepare phase uses this to guarantee proposed commit
    /// timestamps strictly exceed everything a client has observed.
    #[inline]
    pub const fn successor(self) -> Self {
        Timestamp(self.0 + 1)
    }

    /// The immediate predecessor, saturating at zero.
    ///
    /// CANToR assigns a transaction the remote snapshot
    /// `min(rst, lst.predecessor())` (Algorithm 2, line 5) so that the
    /// remote snapshot is always strictly below the local one.
    #[inline]
    pub const fn predecessor(self) -> Self {
        Timestamp(self.0.saturating_sub(1))
    }

    /// Whether this is the zero timestamp.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl From<u64> for Timestamp {
    /// Interprets `raw` as packed bits (identical to [`Timestamp::from_raw`]).
    fn from(raw: u64) -> Self {
        Timestamp(raw)
    }
}

impl From<Timestamp> for u64 {
    fn from(t: Timestamp) -> Self {
        t.0
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.physical_micros(), self.logical())
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        let t = Timestamp::from_parts(123_456_789, 42);
        assert_eq!(t.physical_micros(), 123_456_789);
        assert_eq!(t.logical(), 42);
    }

    #[test]
    fn ordering_is_physical_then_logical() {
        let a = Timestamp::from_parts(10, 65_535);
        let b = Timestamp::from_parts(11, 0);
        assert!(a < b);
        let c = Timestamp::from_parts(10, 3);
        let d = Timestamp::from_parts(10, 4);
        assert!(c < d);
    }

    #[test]
    fn successor_carries_into_physical() {
        let t = Timestamp::from_parts(5, u16::MAX);
        let s = t.successor();
        assert_eq!(s.physical_micros(), 6);
        assert_eq!(s.logical(), 0);
    }

    #[test]
    fn predecessor_saturates_at_zero() {
        assert_eq!(Timestamp::ZERO.predecessor(), Timestamp::ZERO);
        let t = Timestamp::from_parts(1, 0);
        assert_eq!(t.predecessor(), Timestamp::from_parts(0, u16::MAX));
    }

    #[test]
    fn zero_is_minimum() {
        assert!(Timestamp::ZERO.is_zero());
        assert!(Timestamp::ZERO <= Timestamp::from_parts(0, 1));
        assert!(Timestamp::MAX > Timestamp::from_parts(1 << 40, 12));
    }

    #[test]
    fn display_shows_both_parts() {
        let t = Timestamp::from_parts(99, 7);
        assert_eq!(format!("{t}"), "99.7");
        assert!(!format!("{t:?}").is_empty());
    }
}
