//! Property-based tests for the clock algebra.

use proptest::prelude::*;
use wren_clock::{HybridClock, Timestamp, VersionVector};

fn arb_ts() -> impl Strategy<Value = Timestamp> {
    (0u64..(1 << 40), any::<u16>()).prop_map(|(p, l)| Timestamp::from_parts(p, l))
}

fn arb_vv(len: usize) -> impl Strategy<Value = VersionVector> {
    proptest::collection::vec(arb_ts(), len).prop_map(VersionVector::from_entries)
}

proptest! {
    /// A hybrid clock never emits a timestamp twice, regardless of the
    /// physical readings it observes (including readings that go backwards).
    #[test]
    fn hlc_strictly_monotonic(readings in proptest::collection::vec(0u64..1 << 40, 1..64)) {
        let mut clock = HybridClock::new();
        let mut last = Timestamp::ZERO;
        for now in readings {
            let t = clock.tick(now);
            prop_assert!(t > last);
            last = t;
        }
    }

    /// `tick_at_least` always exceeds both the floor and every earlier tick.
    #[test]
    fn hlc_tick_at_least_exceeds_floor(now in 0u64..1 << 40, floor in arb_ts()) {
        let mut clock = HybridClock::new();
        let before = clock.current();
        let t = clock.tick_at_least(now, floor);
        prop_assert!(t > floor);
        prop_assert!(t > before);
    }

    /// Merging never moves the clock backwards and absorbs the remote value.
    #[test]
    fn hlc_merge_absorbs(now in 0u64..1 << 40, remote in arb_ts(), start in arb_ts()) {
        let mut clock = HybridClock::starting_at(start);
        clock.merge(now, remote);
        prop_assert!(clock.current() >= remote);
        prop_assert!(clock.current() >= start);
    }

    /// Timestamp packing round-trips through its raw representation and
    /// orders lexicographically by (physical, logical).
    #[test]
    fn timestamp_roundtrip_and_order(a in arb_ts(), b in arb_ts()) {
        prop_assert_eq!(Timestamp::from_raw(a.raw()), a);
        let key = |t: Timestamp| (t.physical_micros(), t.logical());
        prop_assert_eq!(a.cmp(&b), key(a).cmp(&key(b)));
    }

    /// Join is the least upper bound: it dominates both operands, and any
    /// vector dominating both also dominates the join.
    #[test]
    fn vv_join_is_lub((a, b, c) in (arb_vv(4), arb_vv(4), arb_vv(4))) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.dominated_by(&j));
        prop_assert!(b.dominated_by(&j));
        let mut upper = c.clone();
        upper.join(&a);
        upper.join(&b);
        prop_assert!(j.dominated_by(&upper));
    }

    /// Meet is the greatest lower bound, and min/min_except agree with it.
    #[test]
    fn vv_meet_is_glb((a, b) in (arb_vv(5), arb_vv(5)), skip in 0usize..5) {
        let mut m = a.clone();
        m.meet(&b);
        prop_assert!(m.dominated_by(&a));
        prop_assert!(m.dominated_by(&b));
        let manual_min = a.iter().min().unwrap();
        prop_assert_eq!(a.min(), manual_min);
        let manual_skip = a
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, t)| t)
            .min()
            .unwrap();
        prop_assert_eq!(a.min_except(skip), manual_skip);
    }

    /// Join and meet are commutative and idempotent.
    #[test]
    fn vv_lattice_laws((a, b) in (arb_vv(3), arb_vv(3))) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba);
        let mut aa = a.clone();
        aa.join(&a);
        prop_assert_eq!(&aa, &a);
    }
}
