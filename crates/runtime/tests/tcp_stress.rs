//! Adversarial transport clients: a peer that dribbles bytes one at a
//! time and a peer that stops reading its responses. Neither may wedge
//! the acceptor path, the partition writer thread, or the read workers;
//! the slow reader is disconnected by its bounded outbox, and shutdown
//! still joins every thread deterministically afterwards.
//!
//! Every scenario runs against **all socket fabrics** — the threaded
//! one (reader + outbox-writer thread per connection), the epoll
//! reactor (fixed thread pool), and the reactor on the io_uring
//! backend where the kernel offers it — with identical assertions:
//! the slow-client semantics are a contract of the transport, not of
//! the thread topology (or syscall interface) serving it. On hosts
//! without io_uring the uring leg falls back to epoll with a notice;
//! the assertions still hold on the fallback.

use bytes::Bytes;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use wren_clock::Timestamp;
use wren_net::Hello;
use wren_protocol::frame::{frame_wren, FrameDecoder};
use wren_protocol::{ClientId, Key, WrenMsg};
use wren_rt::{Backend, Cluster, ClusterBuilder};

/// How a scenario turns a builder into a TCP-mode cluster: each fabric
/// appears once, tagged for assertion messages.
type FabricCfg = (&'static str, fn(ClusterBuilder) -> ClusterBuilder);

/// The reactor fabric over the io_uring backend (fn-pointer-shaped so
/// it slots into [`FabricCfg`] next to the builder methods).
fn tcp_uring(b: ClusterBuilder) -> ClusterBuilder {
    b.tcp().backend(Backend::Uring)
}

fn fabrics() -> [FabricCfg; 3] {
    [
        ("threaded", ClusterBuilder::tcp_threaded),
        ("reactor", ClusterBuilder::tcp),
        ("uring", tcp_uring),
    ]
}

/// Loud notice when the `uring` leg actually ran on the epoll fallback
/// (io_uring unavailable): the scenario still holds — the slow-client
/// contract is backend-independent — but it was not an io_uring run.
fn note_uring_fallback(name: &str, cluster: &Cluster) {
    if name == "uring" && cluster.tcp_backend() == Some(Backend::Epoll) {
        eprintln!("SKIP [{name}]: io_uring unavailable, leg ran on the epoll fallback");
    }
}

/// Joins a thread but panics (instead of hanging the suite) if it takes
/// longer than `secs` — the watchdog for "deterministic shutdown".
fn join_within<T: Send + 'static>(
    handle: std::thread::JoinHandle<T>,
    secs: u64,
    what: &str,
) -> T {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !handle.is_finished() {
        assert!(Instant::now() < deadline, "{what} did not finish in {secs}s");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.join().unwrap_or_else(|_| panic!("{what} panicked"))
}

/// Reads exactly one framed message from a raw socket.
fn read_one_msg(stream: &mut TcpStream) -> WrenMsg {
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(payload) = dec.next_frame().unwrap() {
            return WrenMsg::decode(&payload).expect("server sends valid frames");
        }
        let n = stream.read(&mut buf).expect("read response");
        assert!(n > 0, "server closed before responding");
        dec.extend(&buf[..n]);
    }
}

/// A client that dribbles its handshake and requests one byte at a time
/// must not wedge the accept path: sessions connecting *after* the
/// dribbler keep transacting at full speed, and the dribbler still gets
/// its (correct) response eventually.
fn dribbling_client_wedges_nothing_on(fabric: FabricCfg) {
    let (name, tcp) = fabric;
    let cluster = tcp(ClusterBuilder::new().dcs(1).partitions(2)).build();
    note_uring_fallback(name, &cluster);
    let addr = cluster.server_addrs()[0];

    let dribbler = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        wire.extend_from_slice(&Hello::Client(ClientId(50_000)).encode_framed());
        wire.extend_from_slice(&frame_wren(&WrenMsg::StartTxReq {
            lst: Timestamp::ZERO,
            rst: Timestamp::ZERO,
        }));
        for b in wire {
            stream.write_all(&[b]).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let resp = read_one_msg(&mut stream);
        assert!(
            matches!(resp, WrenMsg::StartTxResp { .. }),
            "dribbled request must still get its response, got {resp:?}"
        );
    });

    // While the dribbler crawls, fresh sessions connect to the same
    // partition's listener and transact freely.
    let mut s = cluster.session(0);
    for i in 0..30u64 {
        s.begin().unwrap();
        s.write(Key(i), Bytes::from(i.to_le_bytes().to_vec()));
        s.commit().unwrap();
    }
    assert_eq!(s.stats().txs_committed, 30, "[{name}] healthy session starved");

    join_within(dribbler, 30, "dribbling client");
    drop(s);
    let stop = std::thread::spawn(move || cluster.stop());
    join_within(stop, 30, "cluster stop after dribbling client");
}

#[test]
fn dribbling_client_wedges_nothing() {
    for fabric in fabrics() {
        dribbling_client_wedges_nothing_on(fabric);
    }
}

/// A client that requests data and then stops reading must back up its
/// own bounded outbox and get disconnected — while the partition writer
/// thread keeps serving everyone else, and shutdown still joins
/// everything.
fn stalled_reader_is_disconnected_on(fabric: FabricCfg) {
    let (name, tcp) = fabric;
    // Tiny outbox so the overflow trips long before the test's data
    // volume; big values so kernel socket buffers saturate quickly.
    let cluster = tcp(ClusterBuilder::new()
        .dcs(1)
        .partitions(2)
        .tcp_client_outbox_bytes(64 * 1024))
    .build();
    note_uring_fallback(name, &cluster);
    let n_partitions = 2u16;

    // A key owned by partition 0, whose listener the stalled client
    // dials: its reads are then served (and queued) by that partition.
    let big_key = (0..u64::MAX)
        .map(Key)
        .find(|k| k.partition(n_partitions).index() == 0)
        .unwrap();
    let big_value = Bytes::from(vec![0xAB; 48 * 1024]);

    let mut seeder = cluster.session(0);
    seeder.begin().unwrap();
    seeder.write(big_key, big_value.clone());
    seeder.commit().unwrap();
    // Wait until the write is in the stable snapshot — probed from a
    // session that did NOT write it, so the answer comes from the
    // server, not the writer's client-side cache.
    let mut prober = cluster.session(0);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        prober.begin().unwrap();
        let got = prober.read_one(big_key).unwrap();
        prober.commit().unwrap();
        if got.as_ref().map(|v| v.len()) == Some(big_value.len()) {
            break;
        }
        assert!(Instant::now() < deadline, "[{name}] seed value never stabilized");
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(prober);

    let addr = cluster.server_addrs()[0];
    let staller = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(&Hello::Client(ClientId(60_000)).encode_framed())
            .unwrap();
        stream
            .write_all(&frame_wren(&WrenMsg::StartTxReq {
                lst: Timestamp::ZERO,
                rst: Timestamp::ZERO,
            }))
            .unwrap();
        // Read the start response (to learn the tx id), then never read
        // again — every subsequent ~48 KiB response queues server-side.
        let WrenMsg::StartTxResp { tx, .. } = read_one_msg(&mut stream) else {
            panic!("expected StartTxResp");
        };
        let req = frame_wren(&WrenMsg::TxReadReq {
            tx,
            keys: vec![big_key],
        });
        // ~500 × 48 KiB ≈ 24 MiB of responses: far beyond kernel socket
        // buffering plus the 64 KiB outbox — the overflow must trip and
        // the server must sever the connection. Writes failing (reset
        // by the server) is the success signal; nothing here blocks
        // forever because the requests themselves are tiny.
        let mut severed = false;
        for _ in 0..500 {
            if stream.write_all(&req).is_err() {
                severed = true;
                break;
            }
        }
        if !severed {
            // All requests fit into buffers before the cut; the server
            // still severs once the outbox overflows. Observe it as EOF
            // or reset on a (bounded) read.
            stream
                .set_read_timeout(Some(Duration::from_secs(20)))
                .unwrap();
            let mut sink = vec![0u8; 64 * 1024];
            let drained_deadline = Instant::now() + Duration::from_secs(30);
            loop {
                match stream.read(&mut sink) {
                    Ok(0) | Err(_) => break, // severed
                    Ok(_) => {} // late drain of the queued tail
                }
                assert!(
                    Instant::now() < drained_deadline,
                    "server never severed the stalled connection"
                );
            }
        }
    });

    // The partition writer thread must stay responsive throughout: a
    // healthy session on the SAME partition keeps committing with a
    // hard deadline.
    let healthy_deadline = Instant::now() + Duration::from_secs(30);
    let mut healthy = cluster.session(0);
    for i in 0..100u64 {
        healthy.begin().unwrap();
        healthy.write(big_key, Bytes::from(i.to_le_bytes().to_vec()));
        healthy.commit().unwrap();
        assert!(
            Instant::now() < healthy_deadline,
            "[{name}] healthy session starved by a stalled peer"
        );
    }

    join_within(staller, 60, "stalled client");
    drop(seeder);
    drop(healthy);
    let stop = std::thread::spawn(move || cluster.stop());
    let stats = join_within(stop, 30, "cluster stop after stalled client");
    assert_eq!(stats.len(), 2, "deterministic shutdown joined every engine");
}

#[test]
fn stalled_reader_is_disconnected_not_blocking() {
    for fabric in fabrics() {
        stalled_reader_is_disconnected_on(fabric);
    }
}

/// A prompt reader is never disconnected for one large response: a
/// single response frame bigger than the client outbox cap is admitted
/// when the queue is empty (the cap catches stalled readers, not big
/// messages).
fn large_response_survives_tiny_cap_on(fabric: FabricCfg) {
    let (name, tcp) = fabric;
    let cluster = tcp(ClusterBuilder::new()
        .dcs(1)
        .partitions(2)
        .tcp_client_outbox_bytes(1024)) // far below the response size
    .build();
    note_uring_fallback(name, &cluster);
    let big = Bytes::from(vec![0x5A; 32 * 1024]);
    let mut writer = cluster.session(0);
    writer.begin().unwrap();
    writer.write(Key(3), big.clone());
    writer.commit().unwrap();
    let mut reader = cluster.session(0);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        reader.begin().unwrap();
        let got = reader.read_one(Key(3)).unwrap();
        reader.commit().unwrap();
        if got.as_ref().map(|v| v.len()) == Some(big.len()) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "[{name}] 32 KiB response never arrived"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(writer);
    drop(reader);
    let stop = std::thread::spawn(move || cluster.stop());
    join_within(stop, 30, "cluster stop after large response");
}

#[test]
fn large_response_to_prompt_reader_survives_tiny_outbox_cap() {
    for fabric in fabrics() {
        large_response_survives_tiny_cap_on(fabric);
    }
}

/// The transport's request bounds are enforced at the server boundary,
/// not just in the session library: a raw client pushing an over-wide
/// read is severed, and the library surfaces the same bound as a clean
/// error instead.
fn over_wide_read_is_bounded_on(fabric: FabricCfg) {
    let (name, tcp) = fabric;
    let cluster = tcp(ClusterBuilder::new().dcs(1).partitions(2)).build();
    note_uring_fallback(name, &cluster);

    // Library side: > 512 uncached keys in one read errors cleanly.
    let mut session = cluster.session(0);
    session.begin().unwrap();
    let keys: Vec<Key> = (0..600).map(Key).collect();
    assert!(
        matches!(session.read(&keys), Err(wren_rt::RtError::TooLarge)),
        "[{name}] over-wide library read must error cleanly"
    );
    drop(session); // tx intentionally abandoned

    // Raw side: the same over-wide request from a hand-rolled client is
    // severed at the boundary (no response, no server-side panic).
    let addr = cluster.server_addrs()[0];
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(&Hello::Client(ClientId(80_000)).encode_framed())
        .unwrap();
    stream
        .write_all(&frame_wren(&WrenMsg::StartTxReq {
            lst: Timestamp::ZERO,
            rst: Timestamp::ZERO,
        }))
        .unwrap();
    let WrenMsg::StartTxResp { tx, .. } = read_one_msg(&mut stream) else {
        panic!("expected StartTxResp");
    };
    stream
        .write_all(&frame_wren(&WrenMsg::TxReadReq {
            tx,
            keys: (0..600).map(Key).collect(),
        }))
        .unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = [0u8; 256];
    match stream.read(&mut sink) {
        Ok(0) | Err(_) => {} // severed
        Ok(n) => panic!("[{name}] expected severed connection, got {n} bytes"),
    }

    // The partition is unharmed either way.
    let mut healthy = cluster.session(0);
    healthy.begin().unwrap();
    healthy.write(Key(1), Bytes::from_static(b"ok"));
    healthy.commit().unwrap();
    drop(healthy);
    let stop = std::thread::spawn(move || cluster.stop());
    join_within(stop, 30, "cluster stop after over-wide reads");
}

#[test]
fn over_wide_read_is_bounded_at_both_ends() {
    for fabric in fabrics() {
        over_wide_read_is_bounded_on(fabric);
    }
}

/// A client that vanishes mid-frame (truncated request) is dropped
/// without poisoning the partition; an oversized length prefix is
/// rejected before any buffering.
fn truncated_request_is_severed_on(fabric: FabricCfg) {
    let (name, tcp) = fabric;
    let cluster = tcp(ClusterBuilder::new().dcs(1).partitions(2)).build();
    note_uring_fallback(name, &cluster);
    let addr = cluster.server_addrs()[0];
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(&Hello::Client(ClientId(70_000)).encode_framed())
            .unwrap();
        let framed = frame_wren(&WrenMsg::StartTxReq {
            lst: Timestamp::ZERO,
            rst: Timestamp::ZERO,
        });
        stream.write_all(&framed[..framed.len() - 3]).unwrap();
        // Drop: the connection dies mid-frame.
    }
    // An oversized length prefix is rejected (never buffered).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(&Hello::Client(ClientId(70_001)).encode_framed())
            .unwrap();
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut sink = [0u8; 64];
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Server severs: EOF (or reset) rather than a response.
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("[{name}] expected severed connection, got {n} bytes"),
        }
    }
    // The partition is unharmed.
    let mut s = cluster.session(0);
    s.begin().unwrap();
    s.write(Key(1), Bytes::from_static(b"fine"));
    s.commit().unwrap();
    drop(s);
    let stop = std::thread::spawn(move || cluster.stop());
    join_within(stop, 30, "cluster stop after truncated client");
}

#[test]
fn truncated_request_is_severed_cleanly() {
    for fabric in fabrics() {
        truncated_request_is_severed_on(fabric);
    }
}
