//! The TCP transport end to end: the same engine guarantees as channel
//! mode, but with every protocol hop crossing a real loopback socket —
//! plus the TCP-specific surface: joining by address only, migration
//! re-dialing, and shutdown that closes listeners and in-flight
//! connections idempotently.

use bytes::Bytes;
use std::time::{Duration, Instant};
use wren_protocol::{ClientId, Key, ServerId};
use wren_rt::{Cluster, ClusterBuilder, RtError, Session};

fn val(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// Reads `key` in fresh transactions until `expect` becomes visible at
/// the stable snapshot (the write needs a replication + gossip round).
fn await_visible(session: &mut Session, key: Key, expect: &Bytes) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        session.begin().unwrap();
        let got = session.read_one(key).unwrap();
        session.commit().unwrap();
        if got.as_ref() == Some(expect) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "value never became visible: got {got:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Transactions, multi-partition snapshots and geo-replication all work
/// when every hop — client↔coordinator, slices, 2PC, replication,
/// gossip — crosses a socket.
#[test]
fn tcp_cluster_serves_transactions_across_dcs() {
    let cluster = ClusterBuilder::new().dcs(2).partitions(2).tcp().build();
    assert_eq!(cluster.server_addrs().len(), 4, "one listener per server");

    let mut writer = cluster.session(0);
    writer.begin().unwrap();
    for k in 0..8u64 {
        writer.write(Key(k), val(&format!("v{k}")));
    }
    writer.commit().unwrap();

    // Same-DC visibility at the stable snapshot.
    let mut probe = cluster.session(0);
    for k in 0..8u64 {
        await_visible(&mut probe, Key(k), &val(&format!("v{k}")));
    }
    // Cross-DC: replication + remote stabilization over sockets.
    let mut remote = cluster.session(1);
    for k in 0..8u64 {
        await_visible(&mut remote, Key(k), &val(&format!("v{k}")));
    }

    drop(writer);
    drop(probe);
    drop(remote);
    let stats = cluster.stop();
    assert_eq!(stats.len(), 4);
    let applied: u64 = stats.iter().map(|s| s.remote_versions_applied).sum();
    assert_eq!(applied, 8, "every write replicated to the sibling DC");
}

/// A session can join knowing nothing but socket addresses — the shape
/// a different process would use. It must interoperate with the
/// cluster's own sessions on the same keys.
#[test]
fn connect_tcp_joins_by_address_only() {
    let cluster = ClusterBuilder::new().dcs(1).partitions(4).tcp().build();
    let addrs = cluster.server_addrs().to_vec();

    let mut inside = cluster.session(0);
    inside.begin().unwrap();
    inside.write(Key(7), val("from-inside"));
    inside.commit().unwrap();

    // High client id: disjoint from the cluster's own 0-counted ones.
    let mut outside = Session::connect_tcp(
        addrs,
        4,
        ClientId(10_000),
        ServerId::new(0, 1),
        Duration::from_secs(5),
    );
    await_visible(&mut outside, Key(7), &val("from-inside"));

    outside.begin().unwrap();
    outside.write(Key(8), val("from-outside"));
    outside.commit().unwrap();
    await_visible(&mut inside, Key(8), &val("from-outside"));

    drop(inside);
    drop(outside);
    cluster.stop();
}

/// Migration re-dials: the session moves to a coordinator in another
/// DC, which over TCP means a fresh framed connection, and still sees
/// everything it wrote.
#[test]
fn migrate_over_tcp_redials_and_preserves_session() {
    let cluster = ClusterBuilder::new().dcs(2).partitions(2).tcp().build();
    let mut s = cluster.session(0);
    s.begin().unwrap();
    s.write(Key(42), val("pre-migration"));
    s.commit().unwrap();

    let probes = s.migrate(ServerId::new(1, 0)).expect("migration completes");
    assert!(probes >= 1);
    s.begin().unwrap();
    assert_eq!(
        s.read_one(Key(42)).unwrap(),
        Some(val("pre-migration")),
        "migrated session must see its own write in the new DC"
    );
    s.commit().unwrap();

    // Migrating BACK must redial: helloing DC 1 made the cluster sever
    // the session's original DC 0 connection, so a cached socket would
    // be dead (regression test for the stale-connection case).
    s.migrate(ServerId::new(0, 0))
        .expect("migration back to the original coordinator");
    s.begin().unwrap();
    assert_eq!(
        s.read_one(Key(42)).unwrap(),
        Some(val("pre-migration")),
        "round-trip migrated session must still see its write"
    );
    s.commit().unwrap();
    drop(s);
    cluster.stop();
}

/// The pre-engine configuration (reads inline on the writer thread)
/// works over TCP too.
#[test]
fn zero_read_workers_over_tcp() {
    let cluster = ClusterBuilder::new()
        .dcs(1)
        .partitions(2)
        .read_workers(0)
        .tcp()
        .build();
    let mut s = cluster.session(0);
    s.begin().unwrap();
    s.write(Key(1), val("hello"));
    s.commit().unwrap();
    let mut probe = cluster.session(0);
    await_visible(&mut probe, Key(1), &val("hello"));
    drop(s);
    drop(probe);
    let stats = cluster.stop();
    assert!(stats.iter().map(|s| s.slices_served).sum::<u64>() > 0);
}

/// Regression (this PR's fix): shutdown must close listener sockets and
/// in-flight connections idempotently — `shutdown()` twice, then
/// `stop()`, then the drop path, with sessions still connected, and
/// nothing hangs or leaks a thread.
#[test]
fn tcp_shutdown_twice_plus_drop_is_clean() {
    // Twice + stop, with a connected session mid-transaction.
    let cluster: Cluster = ClusterBuilder::new().dcs(2).partitions(2).tcp().build();
    let mut s = cluster.session(0);
    s.begin().unwrap();
    s.write(Key(1), val("x"));
    s.commit().unwrap();
    cluster.shutdown();
    cluster.shutdown();
    let stats = cluster.stop();
    assert_eq!(stats.len(), 4);
    // The surviving session's connection was severed server-side: the
    // next operation errors instead of hanging.
    s.begin()
        .expect_err("session against a stopped cluster must error");
    drop(s);

    // Drop path: shutdown then drop without an explicit join call.
    let cluster = ClusterBuilder::new().dcs(1).partitions(2).tcp().build();
    let _s = cluster.session(0);
    cluster.shutdown();
    drop(cluster);

    // Drop without any shutdown call at all.
    let cluster = ClusterBuilder::new().dcs(1).partitions(2).tcp().build();
    drop(cluster);
}

/// Concurrent sessions over sockets make progress and count correctly,
/// mirroring the channel-mode test.
#[test]
fn concurrent_tcp_sessions_make_progress() {
    let cluster = std::sync::Arc::new(
        ClusterBuilder::new().dcs(2).partitions(2).tcp().build(),
    );
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let cluster = std::sync::Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let mut s = cluster.session((t % 2) as u8);
            for i in 0..20u64 {
                s.begin().expect("begin");
                let k = Key(t * 1000 + (i % 5));
                s.write(k, Bytes::from(i.to_le_bytes().to_vec()));
                s.commit().expect("commit");
                s.begin().expect("begin");
                assert_eq!(
                    s.read_one(k).expect("read"),
                    Some(Bytes::from(i.to_le_bytes().to_vec()))
                );
                s.commit().expect("commit");
            }
            s.stats().txs_committed
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 4 * 20);
    cluster.shutdown();
}

/// An operation on a TCP session whose cluster is gone reports
/// [`RtError::Shutdown`] (dead socket), not a hang.
#[test]
fn session_surfaces_shutdown_on_dead_cluster() {
    let cluster = ClusterBuilder::new()
        .dcs(1)
        .partitions(2)
        .session_timeout(Duration::from_millis(500))
        .tcp()
        .build();
    let mut s = cluster.session(0);
    s.begin().unwrap();
    s.commit().unwrap();
    cluster.stop();
    match s.begin() {
        Err(RtError::Shutdown) | Err(RtError::Timeout) | Err(RtError::Unreachable(_)) => {}
        other => panic!("expected an error against a dead cluster, got {other:?}"),
    }
}

/// Satellite (this PR): dial hardening. A session pointed at an address
/// nobody listens on retries with bounded backoff (absorbing cluster-
/// startup races), then reports [`RtError::Unreachable`] naming the
/// exact refusing address instead of an opaque failure.
#[test]
fn unreachable_partition_is_named_after_bounded_retries() {
    use wren_protocol::ClientId;
    // Reserve a loopback address, then free it: nothing listens there,
    // so every dial is refused.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);

    let mut s = Session::connect_tcp(
        vec![addr, addr],
        2,
        ClientId(90_000),
        ServerId::new(0, 0),
        Duration::from_secs(2),
    );
    let started = Instant::now();
    match s.begin() {
        Err(RtError::Unreachable(a)) => {
            assert_eq!(a, addr, "the error must name the refusing address");
        }
        other => panic!("expected Unreachable, got {other:?}"),
    }
    // The bounded retry budget actually ran: the backoff schedule
    // (1+2+4+8+16 ms between the 6 attempts) puts a floor on how fast
    // the error can surface.
    assert!(
        started.elapsed() >= Duration::from_millis(25),
        "refused dials must be retried with backoff before giving up"
    );
}
