//! Integration tests for the parallel read engine: reads served by
//! worker threads stay correct and sessions never deadlock, shutdown is
//! idempotent and joins every engine thread, and the legacy
//! writer-serves-reads mode still works.

use bytes::Bytes;
use std::time::{Duration, Instant};
use wren_protocol::Key;
use wren_rt::{Cluster, ClusterBuilder, Session};

fn val(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// Reads `key` in fresh transactions until `expect` becomes visible at
/// the stable snapshot (the write needs a replication + gossip round).
fn await_visible(session: &mut Session, key: Key, expect: &Bytes) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        session.begin().unwrap();
        let got = session.read_one(key).unwrap();
        session.commit().unwrap();
        if got.as_ref() == Some(expect) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "value never became visible: got {got:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Writes through one session, then hammers the cluster with concurrent
/// reader sessions while more writes land. Every read must return a
/// value the key actually held (monotonically growing suffix), and the
/// final stats must account for every slice the workers served.
#[test]
fn parallel_workers_serve_correct_slices() {
    let cluster = ClusterBuilder::new()
        .dcs(1)
        .partitions(4)
        .read_workers(4)
        .build();

    // Seed every key with generation 0 and wait until stable.
    let n_keys = 16u64;
    let mut writer = cluster.session(0);
    writer.begin().unwrap();
    for k in 0..n_keys {
        writer.write(Key(k), val("gen0"));
    }
    writer.commit().unwrap();
    let mut probe = cluster.session(0);
    for k in 0..n_keys {
        await_visible(&mut probe, Key(k), &val("gen0"));
    }

    std::thread::scope(|s| {
        // Concurrent writer bumping generations.
        s.spawn(|| {
            for generation in 1..=5u64 {
                writer.begin().unwrap();
                for k in 0..n_keys {
                    writer.write(Key(k), val(&format!("gen{generation}")));
                }
                writer.commit().unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        // Concurrent readers: multi-key transactions spanning all four
        // partitions, so every transaction fans remote SliceReqs out to
        // the worker pools.
        for _ in 0..3 {
            let mut session = cluster.session(0);
            s.spawn(move || {
                let keys: Vec<Key> = (0..n_keys).map(Key).collect();
                for _ in 0..50 {
                    session.begin().unwrap();
                    let items = session.read(&keys).unwrap();
                    session.commit().unwrap();
                    assert_eq!(items.len(), keys.len());
                    for (k, v) in items {
                        let v = v.unwrap_or_else(|| {
                            panic!("key {k:?} lost its seeded value")
                        });
                        assert!(
                            v.as_ref().starts_with(b"gen"),
                            "torn or foreign value {v:?}"
                        );
                    }
                }
            });
        }
    });

    let stats = cluster.stop();
    assert_eq!(stats.len(), 4);
    let slices: u64 = stats.iter().map(|s| s.slices_served).sum();
    let keys_read: u64 = stats.iter().map(|s| s.keys_read).sum();
    // 3 readers × 50 transactions, each fanning out to all 4 partitions.
    assert!(slices >= 150, "expected ≥150 slices served, got {slices}");
    assert!(keys_read >= 150 * n_keys, "keys_read underflow: {keys_read}");
}

/// The engine must also deliver reads correctly with the pool disabled
/// (reads inline on the writer thread — the pre-engine configuration).
#[test]
fn zero_read_workers_still_serves_reads() {
    let cluster = ClusterBuilder::new()
        .dcs(1)
        .partitions(2)
        .read_workers(0)
        .build();
    let mut session = cluster.session(0);
    session.begin().unwrap();
    session.write(Key(1), val("hello"));
    session.write(Key(2), val("world"));
    session.commit().unwrap();
    let mut probe = cluster.session(0);
    await_visible(&mut probe, Key(1), &val("hello"));
    await_visible(&mut probe, Key(2), &val("world"));
    let stats = cluster.stop();
    assert!(stats.iter().map(|s| s.slices_served).sum::<u64>() > 0);
}

/// Shutdown can be called repeatedly, before or after drop-based joins,
/// without hanging or double-joining; `stop` after `shutdown` still
/// returns every engine's stats.
#[test]
fn shutdown_is_idempotent() {
    let cluster: Cluster = ClusterBuilder::new()
        .dcs(2)
        .partitions(2)
        .read_workers(2)
        .build();
    cluster.shutdown();
    cluster.shutdown();
    let stats = cluster.stop();
    assert_eq!(stats.len(), 4);

    // Drop path: never joined explicitly, must not hang or leak workers.
    let cluster = ClusterBuilder::new()
        .dcs(1)
        .partitions(2)
        .read_workers(3)
        .build();
    cluster.shutdown();
    drop(cluster);
}
