//! The reactor fabric's headline invariant, asserted from the OS:
//! fabric threads are **O(reactor_threads + partitions)**, not
//! O(connections). A 32-session loopback cluster must run with exactly
//! the thread count of a 2-session one, and the per-connection fds must
//! be reaped once sessions drop.
//!
//! (The threaded fabric intentionally fails this — it spends a reader
//! thread plus an outbox-writer thread per connection — which is the
//! reason the reactor exists; see ISSUE 5 / the ROADMAP's "Async/epoll
//! transport" item.)
//!
//! This test lives alone in its file on purpose: `cargo test` runs the
//! tests of one binary concurrently, and any neighbor would perturb the
//! process-wide thread and fd counts read from /proc.

use bytes::Bytes;
use std::time::{Duration, Instant};
use wren_protocol::Key;
use wren_rt::{ClusterBuilder, Session};

/// Current thread count of this process, from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// Current open-fd count of this process, from `/proc/self/fd`.
fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").expect("read /proc/self/fd").count()
}

/// One committed write per session, touching both partitions so every
/// server serves traffic (and all lazy peer links get exercised).
fn transact(sessions: &mut [Session]) {
    for (i, s) in sessions.iter_mut().enumerate() {
        s.begin().expect("begin");
        s.write(Key(i as u64), Bytes::from_static(b"budget"));
        s.write(Key(i as u64 + 1), Bytes::from_static(b"budget"));
        s.commit().expect("commit");
    }
}

/// Polls until `probe` holds (the reactor reaps closed connections
/// asynchronously — EOF must reach its event loop).
fn await_condition(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if probe() {
            return;
        }
        assert!(Instant::now() < deadline, "{what} never settled");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn reactor_thread_budget_is_flat_and_fds_are_reaped() {
    let cluster = ClusterBuilder::new().dcs(1).partitions(2).tcp().build();

    // Baseline: a 2-session cluster with all inter-partition links up
    // (ticks dial them within milliseconds; the transactions force the
    // client-facing paths too). Let the counts settle before snapshots.
    let mut warm: Vec<Session> = (0..2).map(|_| cluster.session(0)).collect();
    transact(&mut warm);
    let settle = Instant::now() + Duration::from_millis(300);
    while Instant::now() < settle {
        transact(&mut warm);
        std::thread::sleep(Duration::from_millis(10));
    }
    let baseline_threads = thread_count();
    let baseline_fds = fd_count();

    // 16x the connections: every session dials its coordinator and
    // transacts, so each one really holds a live registered socket.
    let mut many: Vec<Session> = (0..32).map(|_| cluster.session(0)).collect();
    transact(&mut many);
    let fds_with_32 = fd_count();
    assert!(
        fds_with_32 > baseline_fds,
        "32 live sessions must show up as open fds \
         ({baseline_fds} -> {fds_with_32})"
    );
    assert_eq!(
        thread_count(),
        baseline_threads,
        "the reactor fabric must serve 32 sessions with exactly the \
         thread count it served 2 with — threads are O(reactor_threads \
         + partitions), never O(connections)"
    );

    // The baseline sessions still work while the crowd is connected
    // (no starvation from sharing the fixed pool).
    transact(&mut warm);

    // Dropping the sessions closes their sockets; the reactor must reap
    // every accepted-side fd (no leak across session churn).
    drop(many);
    await_condition("fd count after dropping 32 sessions", || {
        fd_count() <= baseline_fds
    });
    assert_eq!(thread_count(), baseline_threads);

    drop(warm);
    cluster.stop();
}
