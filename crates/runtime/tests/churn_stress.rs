//! Connection-churn stress for the reactor fabric: ten thousand
//! client connections, arriving and dying in waves, against a fixed
//! thread pool. The headline claims under churn are the same as
//! `thread_budget`'s under steady state — threads stay
//! O(reactor_threads + partitions) forever, and every accepted-side fd
//! is reaped when its session drops — but churn is where sloppy
//! lifecycle code actually fails: a leaked registration, a writer that
//! outlives its socket, or an unreaped fd per connection would
//! overflow the process within a few waves.
//!
//! Release CI runs this with the full 10k (40 waves x 250 sessions)
//! **per reactor backend** — epoll and, where the kernel offers it,
//! io_uring (with a skip notice when the uring leg fell back to
//! epoll); debug builds scale down to keep `cargo test` humane. Every
//! session in every wave commits a real write, so each connection is a
//! live, registered, served socket — not just an accept. Churn is
//! exactly where the uring lifecycle (multishot accept terminating,
//! inflight SQEs draining, provided buffers recycling) would leak fds
//! if it were sloppy.
//!
//! Like `thread_budget`, this test lives alone in its file: it reads
//! process-wide thread and fd counts from /proc, and any concurrently
//! running neighbor would perturb them.

use bytes::Bytes;
use std::time::{Duration, Instant};
use wren_protocol::Key;
use wren_rt::{Backend, ClusterBuilder, Session};

/// Current thread count of this process, from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// Current open-fd count of this process, from `/proc/self/fd`.
fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").expect("read /proc/self/fd").count()
}

/// Polls until `probe` holds (the reactor reaps closed connections
/// asynchronously — EOF must reach its event loop).
fn await_condition(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if probe() {
            return;
        }
        assert!(Instant::now() < deadline, "{what} never settled");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One committed write per session: forces the dial, the server-side
/// accept/registration, and a full request/response over the socket.
fn transact(sessions: &mut [Session]) {
    for (i, s) in sessions.iter_mut().enumerate() {
        s.begin().expect("begin");
        s.write(Key(i as u64 % 64), Bytes::from_static(b"churn"));
        s.commit().expect("commit");
    }
}

#[test]
fn ten_thousand_connection_churn_holds_the_thread_and_fd_budget() {
    for backend in [Backend::Epoll, Backend::Uring] {
        churn_on(backend);
    }
}

fn churn_on(backend: Backend) {
    let (waves, per_wave) = if cfg!(debug_assertions) {
        (8, 50) // 400 connections: same lifecycle, test-time humane
    } else {
        (40, 250) // the full 10,000
    };

    let cluster = ClusterBuilder::new()
        .dcs(1)
        .partitions(2)
        .tcp()
        .backend(backend)
        .build();
    if backend == Backend::Uring && cluster.tcp_backend() == Some(Backend::Epoll) {
        eprintln!(
            "SKIP [uring]: io_uring unavailable, churn leg ran on the epoll fallback"
        );
    }

    // Warm baseline: all inter-partition links up, client path served,
    // counts settled.
    let mut warm: Vec<Session> = (0..2).map(|_| cluster.session(0)).collect();
    transact(&mut warm);
    let settle = Instant::now() + Duration::from_millis(300);
    while Instant::now() < settle {
        transact(&mut warm);
        std::thread::sleep(Duration::from_millis(10));
    }
    let baseline_threads = thread_count();
    let baseline_fds = fd_count();
    let accepted_before = cluster.metrics().counter("tcp_conns_accepted");

    for wave in 0..waves {
        let mut crowd: Vec<Session> = (0..per_wave).map(|_| cluster.session(0)).collect();
        transact(&mut crowd);
        assert_eq!(
            thread_count(),
            baseline_threads,
            "wave {wave}: {per_wave} live sessions grew the thread count — \
             the fabric is spending threads per connection"
        );
        drop(crowd);
        // Reap before the next wave: a per-connection fd leak must fail
        // here, not by exhausting the fd table forty waves later.
        await_condition("fd reap after wave", || fd_count() <= baseline_fds);
    }

    assert_eq!(
        thread_count(),
        baseline_threads,
        "thread count drifted across {waves} waves of churn"
    );

    // The churn was real: every wave's sessions were accepted as fresh
    // connections, and none of the traffic was dropped on the floor.
    let snap = cluster.metrics();
    let accepted = snap.counter("tcp_conns_accepted") - accepted_before;
    assert!(
        accepted >= (waves * per_wave) as u64,
        "expected >= {} fresh accepts across the churn, saw {accepted}",
        waves * per_wave
    );
    assert_eq!(snap.counter("tcp_dropped_frames"), 0, "churn dropped frames");

    // The survivors never noticed.
    transact(&mut warm);
    drop(warm);
    cluster.stop();
}
