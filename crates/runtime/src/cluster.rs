use crate::Session;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wren_clock::SkewedClock;
use wren_core::{ServerStats, WrenConfig, WrenServer};
use wren_protocol::{ClientId, Dest, Outgoing, ServerId, WrenMsg};

/// What travels on a server's inbox.
enum RtMsg {
    Proto { src: Dest, msg: WrenMsg },
    Shutdown,
}

/// Shared routing state: server inboxes plus dynamically-registered
/// client inboxes.
pub(crate) struct Router {
    n_partitions: u16,
    server_txs: Vec<Sender<RtMsg>>,
    clients: Mutex<HashMap<ClientId, Sender<WrenMsg>>>,
}

impl Router {
    pub(crate) fn send_to_server(&self, src: Dest, to: ServerId, msg: WrenMsg) {
        let idx = to.dc.index() * self.n_partitions as usize + to.partition.index();
        // A send only fails during shutdown; drop the message then.
        let _ = self.server_txs[idx].send(RtMsg::Proto { src, msg });
    }

    fn send_to_client(&self, to: ClientId, msg: WrenMsg) {
        if let Some(tx) = self.clients.lock().get(&to) {
            let _ = tx.send(msg);
        }
    }

    fn dispatch(&self, src: ServerId, out: Vec<Outgoing<WrenMsg>>) {
        for Outgoing { to, msg } in out {
            match to {
                Dest::Server(s) => self.send_to_server(Dest::Server(src), s, msg),
                Dest::Client(c) => self.send_to_client(c, msg),
            }
        }
    }

    pub(crate) fn register_client(&self, id: ClientId) -> Receiver<WrenMsg> {
        let (tx, rx) = unbounded();
        self.clients.lock().insert(id, tx);
        rx
    }

    pub(crate) fn unregister_client(&self, id: ClientId) {
        self.clients.lock().remove(&id);
    }
}

/// Configuration for an in-process Wren cluster.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    n_dcs: u8,
    n_partitions: u16,
    replication_tick: Duration,
    gossip_tick: Duration,
    gc_tick: Duration,
    session_timeout: Duration,
    gossip_fanout: u16,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            n_dcs: 1,
            n_partitions: 2,
            replication_tick: Duration::from_millis(1),
            gossip_tick: Duration::from_millis(5),
            gc_tick: Duration::from_millis(50),
            session_timeout: Duration::from_secs(5),
            gossip_fanout: 0,
        }
    }
}

impl ClusterBuilder {
    /// Starts building a cluster (defaults: 1 DC × 2 partitions, the
    /// paper's tick intervals).
    pub fn new() -> Self {
        ClusterBuilder::default()
    }

    /// Number of data centers.
    pub fn dcs(mut self, m: u8) -> Self {
        self.n_dcs = m;
        self
    }

    /// Partitions per DC.
    pub fn partitions(mut self, n: u16) -> Self {
        self.n_partitions = n;
        self
    }

    /// Δ_R: apply/replication tick.
    pub fn replication_tick(mut self, d: Duration) -> Self {
        self.replication_tick = d;
        self
    }

    /// Δ_G: stabilization gossip tick (the paper uses 5 ms).
    pub fn gossip_tick(mut self, d: Duration) -> Self {
        self.gossip_tick = d;
        self
    }

    /// GC exchange interval (zero disables).
    pub fn gc_tick(mut self, d: Duration) -> Self {
        self.gc_tick = d;
        self
    }

    /// How long sessions wait for a server reply before erroring.
    pub fn session_timeout(mut self, d: Duration) -> Self {
        self.session_timeout = d;
        self
    }

    /// Stabilization topology: 0 = all-to-all broadcast (default), k ≥ 1
    /// = k-ary aggregation tree.
    pub fn gossip_fanout(mut self, fanout: u16) -> Self {
        self.gossip_fanout = fanout;
        self
    }

    /// Spawns the server threads and returns the running cluster.
    pub fn build(self) -> Cluster {
        Cluster::start(self)
    }
}

/// An in-process Wren cluster: one OS thread per partition server, real
/// (shared) wall-clock time, crossbeam channels as the FIFO transport.
///
/// This is the deployable face of the library: the exact protocol state
/// machines the simulator benchmarks, driven by threads instead of
/// simulated events. Sessions ([`Cluster::session`]) expose the paper's
/// client API: `start / read / write / commit`.
///
/// # Example
///
/// ```
/// use wren_rt::ClusterBuilder;
/// use wren_protocol::Key;
/// use bytes::Bytes;
///
/// let cluster = ClusterBuilder::new().dcs(1).partitions(2).build();
/// let mut session = cluster.session(0);
/// session.begin().unwrap();
/// session.write(Key(1), Bytes::from_static(b"hello"));
/// session.commit().unwrap();
///
/// session.begin().unwrap();
/// let value = session.read_one(Key(1)).unwrap();
/// assert_eq!(value, Some(Bytes::from_static(b"hello"))); // read-your-writes
/// session.commit().unwrap();
/// cluster.shutdown();
/// ```
pub struct Cluster {
    cfg: ClusterBuilder,
    router: Arc<Router>,
    handles: Vec<JoinHandle<ServerStats>>,
    next_client: AtomicU32,
    next_coordinator: AtomicU32,
    shut_down: std::sync::atomic::AtomicBool,
}

impl Cluster {
    fn start(cfg: ClusterBuilder) -> Cluster {
        let total = cfg.n_dcs as usize * cfg.n_partitions as usize;
        let mut txs = Vec::with_capacity(total);
        let mut rxs = Vec::with_capacity(total);
        for _ in 0..total {
            let (tx, rx) = unbounded::<RtMsg>();
            txs.push(tx);
            rxs.push(rx);
        }
        let router = Arc::new(Router {
            n_partitions: cfg.n_partitions,
            server_txs: txs,
            clients: Mutex::new(HashMap::new()),
        });

        let wren_cfg = WrenConfig {
            n_dcs: cfg.n_dcs,
            n_partitions: cfg.n_partitions,
            replication_tick_micros: cfg.replication_tick.as_micros() as u64,
            gossip_tick_micros: cfg.gossip_tick.as_micros() as u64,
            gc_tick_micros: cfg.gc_tick.as_micros() as u64,
            visibility_sample_every: 0,
            gossip_fanout: cfg.gossip_fanout,
        };
        let epoch = Instant::now();

        let mut handles = Vec::with_capacity(total);
        let mut rx_iter = rxs.into_iter();
        for dc in 0..cfg.n_dcs {
            for p in 0..cfg.n_partitions {
                let rx = rx_iter.next().expect("one receiver per server");
                let router = Arc::clone(&router);
                let id = ServerId::new(dc, p);
                let ticks = (
                    cfg.replication_tick,
                    cfg.gossip_tick,
                    if cfg.gc_tick.is_zero() {
                        None
                    } else {
                        Some(cfg.gc_tick)
                    },
                );
                handles.push(std::thread::spawn(move || {
                    server_loop(id, wren_cfg, epoch, rx, router, ticks)
                }));
            }
        }

        Cluster {
            cfg,
            router,
            handles,
            next_client: AtomicU32::new(0),
            next_coordinator: AtomicU32::new(0),
            shut_down: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Number of DCs in the cluster.
    pub fn n_dcs(&self) -> u8 {
        self.cfg.n_dcs
    }

    /// Partitions per DC.
    pub fn n_partitions(&self) -> u16 {
        self.cfg.n_partitions
    }

    /// Opens a client session against DC `dc`, choosing a coordinator
    /// partition round-robin (the paper picks coordinators at random and
    /// collocates clients with them).
    ///
    /// # Panics
    ///
    /// Panics if `dc` is out of range.
    pub fn session(&self, dc: u8) -> Session {
        assert!(dc < self.cfg.n_dcs, "no such DC");
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let p = (self.next_coordinator.fetch_add(1, Ordering::Relaxed)
            % self.cfg.n_partitions as u32) as u16;
        let coordinator = ServerId::new(dc, p);
        let rx = self.router.register_client(id);
        Session::new(
            id,
            coordinator,
            Arc::clone(&self.router),
            rx,
            self.cfg.session_timeout,
        )
    }

    /// Asks every server thread to stop. Threads are joined (and their
    /// final [`ServerStats`] collected) when the cluster is dropped;
    /// calling this twice is harmless.
    pub fn shutdown(&self) {
        if self.shut_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for tx in &self.router.server_txs {
            let _ = tx.send(RtMsg::Shutdown);
        }
    }

    /// Stops the cluster and returns each server's final statistics in
    /// DC-major partition order. Consumes the cluster.
    pub fn stop(mut self) -> Vec<ServerStats> {
        self.shutdown();
        self.handles.drain(..).map(|h| h.join().unwrap_or_default()).collect()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Upper bound on how many queued messages one wake-up drains before
/// dispatching responses and re-checking the tick schedule. Bounded so a
/// flooded inbox cannot starve replication/gossip ticks indefinitely.
const MAX_DRAIN: usize = 64;

/// The per-server thread: drains the inbox, fires ticks on schedule.
///
/// A wake-up consumes the whole pending burst (up to [`MAX_DRAIN`]) in
/// one go rather than one message per loop turn: replication batches
/// that queued up while the thread slept are applied back to back —
/// each through the store's per-stripe batched splice — before any
/// clock reads or tick checks are paid again.
fn server_loop(
    id: ServerId,
    cfg: WrenConfig,
    epoch: Instant,
    rx: Receiver<RtMsg>,
    router: Arc<Router>,
    (repl, gossip, gc): (Duration, Duration, Option<Duration>),
) -> ServerStats {
    let mut server = WrenServer::new(id, cfg, SkewedClock::perfect());
    let mut next_repl = epoch + repl;
    let mut next_gossip = epoch + gossip;
    let mut next_gc = gc.map(|d| epoch + d);
    let mut out = Vec::new();

    loop {
        let now_inst = Instant::now();
        let mut next_tick = next_repl.min(next_gossip);
        if let Some(g) = next_gc {
            next_tick = next_tick.min(g);
        }
        let wait = next_tick.saturating_duration_since(now_inst);

        match rx.recv_timeout(wait) {
            Ok(RtMsg::Proto { src, msg }) => {
                let now = epoch.elapsed().as_micros() as u64;
                server.handle(src, msg, now, &mut out);
                // Drain the burst that accumulated while we slept.
                for _ in 1..MAX_DRAIN {
                    match rx.try_recv() {
                        Some(RtMsg::Proto { src, msg }) => {
                            server.handle(src, msg, now, &mut out);
                        }
                        Some(RtMsg::Shutdown) => {
                            router.dispatch(id, std::mem::take(&mut out));
                            return server.stats();
                        }
                        None => break,
                    }
                }
                router.dispatch(id, std::mem::take(&mut out));
            }
            Ok(RtMsg::Shutdown) => return server.stats(),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return server.stats(),
        }

        let now_inst = Instant::now();
        let now = epoch.elapsed().as_micros() as u64;
        if now_inst >= next_repl {
            server.on_replication_tick(now, &mut out);
            router.dispatch(id, std::mem::take(&mut out));
            next_repl = now_inst + repl;
        }
        if now_inst >= next_gossip {
            server.on_gossip_tick(now, &mut out);
            router.dispatch(id, std::mem::take(&mut out));
            next_gossip = now_inst + gossip;
        }
        if let Some(g) = next_gc {
            if now_inst >= g {
                server.on_gc_tick(now, &mut out);
                router.dispatch(id, std::mem::take(&mut out));
                next_gc = Some(now_inst + gc.expect("gc enabled"));
            }
        }
    }
}

