use crate::engine::{Durability, PartitionEngine, ReadJob};
use crate::metrics::SessionMetrics;
use crate::reactor_fabric::ReactorFabric;
use crate::tcp::{bind_listeners, spawn_acceptors, TcpFabric};
use crate::Session;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wren_core::{ServerStats, ServerTrace, TxEvent, WrenConfig};
use wren_net::{Backend, FaultPlan};
use wren_obs::{MetricsSnapshot, Registry};
use wren_protocol::{ClientId, Dest, Outgoing, ServerId, WrenMsg};
use wren_core::FsyncPolicy;

/// What travels on a writer thread's inbox.
pub(crate) enum RtMsg {
    /// A protocol message from `src`.
    Proto {
        /// The sender (a server or a client).
        src: Dest,
        /// The message itself.
        msg: WrenMsg,
    },
    /// Every message one connection's readiness event decoded, in wire
    /// order, delivered as a single wake-up so the engine's drain loop
    /// handles the whole burst before paying a commit point and a
    /// dispatch. A burst has one sender by construction — it came off
    /// one socket.
    Batch {
        /// The connection's peer (a server or a client).
        src: Dest,
        /// The decoded frames, oldest first (never empty, never 1 —
        /// singleton bursts travel as [`RtMsg::Proto`]).
        msgs: Vec<WrenMsg>,
    },
    /// Stop the writer thread gracefully: drain the inbox, flush and
    /// seal the WAL, then exit.
    Shutdown,
    /// Crash the writer thread: exit immediately, dropping queued inbox
    /// messages, undispatched responses and unflushed WAL bytes — the
    /// in-process stand-in for `kill -9`.
    Kill,
    /// The TCP connection that carried `peer`-origin traffic into this
    /// partition died (EOF or error on the accepted socket). Only the
    /// TCP fabrics emit this; the channel transport has no links to
    /// lose. The engine reacts when the peer is a sibling replica —
    /// replication from it may have been cut mid-stream, so a catch-up
    /// window opens until the peer re-ships what was in flight.
    PeerLinkLost {
        /// The peer whose outbound link to this server went away.
        peer: ServerId,
    },
}

/// Which thread topology serves the TCP sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FabricKind {
    /// Two OS threads per connection (reader + outbox writer).
    Threaded,
    /// A fixed pool of epoll reactor threads serving every fd.
    Reactor,
}

/// The socket fabric behind a TCP-mode cluster: same wire format, same
/// handshake, same slow-client semantics — different thread topology.
pub(crate) enum Fabric {
    /// The per-connection-thread fabric ([`crate::tcp`]).
    Threaded(TcpFabric),
    /// The epoll reactor fabric ([`crate::reactor_fabric`]).
    Reactor(ReactorFabric),
}

impl Fabric {
    pub(crate) fn send_server(&self, src: ServerId, to: ServerId, msg: &WrenMsg) {
        match self {
            Fabric::Threaded(f) => f.send_server(src, to, msg),
            Fabric::Reactor(f) => f.send_server(src, to, msg),
        }
    }

    pub(crate) fn send_client(&self, to: ClientId, msg: &WrenMsg) {
        match self {
            Fabric::Threaded(f) => f.send_client(to, msg),
            Fabric::Reactor(f) => f.send_client(to, msg),
        }
    }

    pub(crate) fn shutdown(&self) {
        match self {
            Fabric::Threaded(f) => f.shutdown(),
            Fabric::Reactor(f) => f.shutdown(),
        }
    }

    pub(crate) fn join_threads(&self) {
        match self {
            Fabric::Threaded(f) => f.join_threads(),
            Fabric::Reactor(f) => f.join_threads(),
        }
    }

    pub(crate) fn dropped_frames(&self) -> u64 {
        match self {
            Fabric::Threaded(f) => f.dropped_frames(),
            Fabric::Reactor(f) => f.dropped_frames(),
        }
    }

    /// The fabric's socket-boundary metric registry. Both fabrics use
    /// identical metric names, so a threaded-vs-reactor comparison is a
    /// diff of two cluster snapshots.
    pub(crate) fn registry(&self) -> Registry {
        match self {
            Fabric::Threaded(f) => f.registry(),
            Fabric::Reactor(f) => f.registry(),
        }
    }

    /// Tears down one server's network presence abruptly: its listener
    /// closes (the address frees for a restart rebind), every
    /// established connection it owns is severed mid-stream, and peer
    /// links to or from it are dropped. Peers observe EOF — exactly
    /// what `kill -9` on the server's process would produce.
    pub(crate) fn kill_server(&self, id: ServerId) {
        match self {
            Fabric::Threaded(f) => f.kill_server(id),
            Fabric::Reactor(f) => f.kill_server(id),
        }
    }
}

/// Shared routing state: writer inboxes, per-partition read channels and
/// dynamically-registered client inboxes.
///
/// The client map sits behind an [`RwLock`], not a mutex: every message
/// delivered to a client takes the lock, and lookups (one per response)
/// vastly outnumber register/unregister (one pair per session), so
/// concurrently-responding servers and read workers must not serialize
/// on it.
pub(crate) struct Router {
    n_partitions: u16,
    server_txs: Vec<Sender<RtMsg>>,
    /// One MPMC read channel per partition when the cluster runs read
    /// workers; empty when reads stay on the writer threads.
    read_txs: Vec<Sender<ReadJob>>,
    clients: RwLock<HashMap<ClientId, Sender<WrenMsg>>>,
    /// In TCP mode, the socket fabric every inter-node hop crosses.
    tcp: Option<Fabric>,
}

impl Router {
    fn index_of(&self, to: ServerId) -> usize {
        to.dc_major_index(self.n_partitions)
    }

    /// The TCP fabric, when the cluster runs over sockets.
    pub(crate) fn tcp(&self) -> Option<&Fabric> {
        self.tcp.as_ref()
    }

    /// The threaded fabric specifically — what the acceptor/reader
    /// thread machinery in [`crate::tcp`] runs against.
    pub(crate) fn tcp_threaded(&self) -> Option<&TcpFabric> {
        match self.tcp.as_ref() {
            Some(Fabric::Threaded(f)) => Some(f),
            _ => None,
        }
    }

    /// Routes one server-bound message from a local engine or session.
    ///
    /// Channel mode delivers straight into the destination's inbox; TCP
    /// mode frames the message onto the sender's outbound link — it
    /// re-enters via [`deliver_local`](Self::deliver_local) on the
    /// destination's connection reader thread.
    pub(crate) fn send_to_server(&self, src: Dest, to: ServerId, msg: WrenMsg) {
        if let Some(fabric) = &self.tcp {
            let Dest::Server(s) = src else {
                // Sessions in TCP mode hold their own sockets and never
                // route through here.
                debug_assert!(false, "client sends must use the session's TCP link");
                return;
            };
            fabric.send_server(s, to, &msg);
            return;
        }
        self.deliver_local(src, to, msg);
    }

    /// Delivers a message to a **local** engine: `SliceReq` is diverted
    /// to the partition's read workers (when the engine runs any),
    /// everything else lands in the writer's inbox. In TCP mode this is
    /// the wire's exit point, called by connection reader threads.
    pub(crate) fn deliver_local(&self, src: Dest, to: ServerId, msg: WrenMsg) {
        let idx = self.index_of(to);
        if !self.read_txs.is_empty() {
            if let WrenMsg::SliceReq { tx, lt, rt, keys } = msg {
                let Dest::Server(coordinator) = src else {
                    // Only a coordinator legitimately sends SliceReq,
                    // but over TCP this arm is reachable by any client
                    // that frames one — drop it (no assert: remote
                    // input must never panic a server thread).
                    return;
                };
                // A send only fails during shutdown; drop the job then.
                let _ = self.read_txs[idx].send(ReadJob::Slice {
                    coordinator,
                    tx,
                    lt,
                    rt,
                    keys,
                });
                return;
            }
        }
        // A send only fails during shutdown; drop the message then.
        let _ = self.server_txs[idx].send(RtMsg::Proto { src, msg });
    }

    /// Delivers one connection's decoded burst to a **local** engine in
    /// a single inbox wake-up. Per message the routing matches
    /// [`deliver_local`](Self::deliver_local) exactly — `SliceReq`s
    /// peel off to the read workers in wire order, non-coordinator
    /// `SliceReq`s drop — but everything bound for the writer thread
    /// coalesces into one [`RtMsg::Batch`] (or a plain
    /// [`RtMsg::Proto`] when only one message remains), so a pipelined
    /// burst costs the engine one channel receive and one group-commit
    /// point instead of one each per frame.
    pub(crate) fn deliver_local_batch(&self, src: Dest, to: ServerId, msgs: Vec<WrenMsg>) {
        let idx = self.index_of(to);
        let mut engine_msgs = msgs;
        if !self.read_txs.is_empty() {
            engine_msgs.retain_mut(|msg| {
                if let WrenMsg::SliceReq { tx, lt, rt, keys } = msg {
                    if let Dest::Server(coordinator) = src {
                        // A send only fails during shutdown; drop then.
                        let _ = self.read_txs[idx].send(ReadJob::Slice {
                            coordinator,
                            tx: *tx,
                            lt: *lt,
                            rt: *rt,
                            keys: std::mem::take(keys),
                        });
                    }
                    // Diverted (or, from a non-coordinator, dropped —
                    // same reasoning as `deliver_local`).
                    return false;
                }
                true
            });
        }
        // A send only fails during shutdown; drop the burst then.
        match engine_msgs.len() {
            0 => {}
            1 => {
                let msg = engine_msgs.pop().expect("len checked");
                let _ = self.server_txs[idx].send(RtMsg::Proto { src, msg });
            }
            _ => {
                let _ = self.server_txs[idx].send(RtMsg::Batch { src, msgs: engine_msgs });
            }
        }
    }

    fn send_to_client(&self, to: ClientId, msg: WrenMsg) {
        if let Some(fabric) = &self.tcp {
            fabric.send_client(to, &msg);
            return;
        }
        if let Some(tx) = self.clients.read().get(&to) {
            let _ = tx.send(msg);
        }
    }

    pub(crate) fn dispatch(&self, src: ServerId, out: Vec<Outgoing<WrenMsg>>) {
        for Outgoing { to, msg } in out {
            match to {
                Dest::Server(s) => self.send_to_server(Dest::Server(src), s, msg),
                Dest::Client(c) => self.send_to_client(c, msg),
            }
        }
    }

    pub(crate) fn register_client(&self, id: ClientId) -> Receiver<WrenMsg> {
        let (tx, rx) = unbounded();
        self.clients.write().insert(id, tx);
        rx
    }

    pub(crate) fn unregister_client(&self, id: ClientId) {
        self.clients.write().remove(&id);
    }

    /// Tells the engine at `at` that the inbound connection carrying
    /// `peer`-origin traffic died. Called from connection-teardown paths
    /// in both TCP fabrics; a failed send means the local engine is
    /// down too, which needs no reaction.
    pub(crate) fn notify_link_lost(&self, at: ServerId, peer: ServerId) {
        let idx = self.index_of(at);
        let _ = self.server_txs[idx].send(RtMsg::PeerLinkLost { peer });
    }
}

/// Configuration for an in-process Wren cluster.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    n_dcs: u8,
    n_partitions: u16,
    replication_tick: Duration,
    gossip_tick: Duration,
    gc_tick: Duration,
    session_timeout: Duration,
    gossip_fanout: u16,
    read_workers: usize,
    tcp: Option<FabricKind>,
    tcp_client_outbox_bytes: usize,
    reactor_threads: usize,
    backend: Backend,
    durable_dir: Option<PathBuf>,
    fsync: FsyncPolicy,
    checkpoint_interval: Duration,
    fault_plan: Option<FaultPlan>,
    dial_retry_budget: Duration,
    tx_abort_timeout: Duration,
    metrics_every: Option<Duration>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            n_dcs: 1,
            n_partitions: 2,
            replication_tick: Duration::from_millis(1),
            gossip_tick: Duration::from_millis(5),
            gc_tick: Duration::from_millis(50),
            session_timeout: Duration::from_secs(5),
            gossip_fanout: 0,
            read_workers: 2,
            tcp: None,
            tcp_client_outbox_bytes: wren_net::DEFAULT_OUTBOX_BYTES,
            reactor_threads: 2,
            backend: Backend::default(),
            durable_dir: None,
            fsync: FsyncPolicy::Always,
            checkpoint_interval: Duration::from_millis(500),
            fault_plan: None,
            dial_retry_budget: Duration::from_millis(100),
            tx_abort_timeout: Duration::from_secs(3),
            metrics_every: None,
        }
    }
}

impl ClusterBuilder {
    /// Starts building a cluster (defaults: 1 DC × 2 partitions, the
    /// paper's tick intervals).
    pub fn new() -> Self {
        ClusterBuilder::default()
    }

    /// Number of data centers.
    pub fn dcs(mut self, m: u8) -> Self {
        self.n_dcs = m;
        self
    }

    /// Partitions per DC.
    pub fn partitions(mut self, n: u16) -> Self {
        self.n_partitions = n;
        self
    }

    /// Δ_R: apply/replication tick.
    pub fn replication_tick(mut self, d: Duration) -> Self {
        self.replication_tick = d;
        self
    }

    /// Δ_G: stabilization gossip tick (the paper uses 5 ms).
    pub fn gossip_tick(mut self, d: Duration) -> Self {
        self.gossip_tick = d;
        self
    }

    /// GC exchange interval (zero disables).
    pub fn gc_tick(mut self, d: Duration) -> Self {
        self.gc_tick = d;
        self
    }

    /// How long sessions wait for a server reply before erroring.
    pub fn session_timeout(mut self, d: Duration) -> Self {
        self.session_timeout = d;
        self
    }

    /// Stabilization topology: 0 = all-to-all broadcast (default), k ≥ 1
    /// = k-ary aggregation tree.
    pub fn gossip_fanout(mut self, fanout: u16) -> Self {
        self.gossip_fanout = fanout;
        self
    }

    /// Read workers per partition (default 2): threads answering
    /// `SliceReq` concurrently, straight from the partition's
    /// stripe-locked store, while the writer thread runs the mutating
    /// protocol. 0 disables the pool and serves reads on the writer
    /// thread, the pre-engine behaviour.
    pub fn read_workers(mut self, n: usize) -> Self {
        self.read_workers = n;
        self
    }

    /// Runs the cluster over real TCP sockets on 127.0.0.1 instead of
    /// in-process channels: one listener per partition, length-prefixed
    /// framed sessions, and every protocol hop — client↔coordinator,
    /// slices, 2PC, replication, gossip — encoded onto the wire and
    /// decoded back. The engines themselves (writer thread + read
    /// workers) are identical in every mode.
    ///
    /// Sockets are served by the **epoll reactor fabric**: a fixed pool
    /// of [`reactor_threads`](Self::reactor_threads) event-loop threads
    /// owns every listener, accepted connection and dialed peer link,
    /// so fabric threads are O(reactor_threads), not O(connections).
    /// [`Self::tcp_threaded`] selects the older two-threads-per-
    /// connection fabric instead (same wire format and semantics).
    ///
    /// [`Cluster::server_addrs`] exposes the bound addresses so
    /// sessions in *other processes* can join via
    /// [`Session::connect_tcp`](crate::Session::connect_tcp).
    pub fn tcp(mut self) -> Self {
        self.tcp = Some(FabricKind::Reactor);
        self
    }

    /// Runs the cluster over TCP with the **threaded fabric**: one
    /// acceptor thread per partition plus a reader thread and an outbox
    /// writer thread per connection. Byte-for-byte the same protocol as
    /// [`Self::tcp`]; kept for apples-to-apples comparison (the
    /// channel / threaded-TCP / reactor-TCP oracle suites) and as the
    /// simplest-possible reference transport.
    pub fn tcp_threaded(mut self) -> Self {
        self.tcp = Some(FabricKind::Threaded);
        self
    }

    /// Size of the reactor thread pool in TCP mode (default 2, minimum
    /// 1): the event-loop threads serving **all** connections. More
    /// threads spread socket I/O across cores; connections are
    /// distributed round-robin and never migrate.
    pub fn reactor_threads(mut self, n: usize) -> Self {
        self.reactor_threads = n.max(1);
        self
    }

    /// Which syscall backend the reactor fabric's event loops run on
    /// (default [`Backend::Epoll`]). [`Backend::Uring`] moves accepts,
    /// recvs and sends into io_uring submission queues — one
    /// `io_uring_enter` per completion batch instead of per-event
    /// `epoll_wait`/`read`/`writev` — and **falls back to epoll at
    /// build time** when the kernel lacks io_uring (or a sandbox
    /// denies the syscall), so it is safe to request unconditionally.
    /// [`Cluster::tcp_backend`] reports the resolution. No effect on
    /// the threaded fabric or channel mode.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Cap on queued (unwritten) response bytes per client connection
    /// in TCP mode (default 4 MiB). A client that stops reading fills
    /// its outbox and is disconnected — it can never block a partition
    /// thread. Tiny caps make slow-client tests deterministic.
    pub fn tcp_client_outbox_bytes(mut self, bytes: usize) -> Self {
        self.tcp_client_outbox_bytes = bytes;
        self
    }

    /// Makes every partition durable: each engine keeps a per-partition
    /// write-ahead log and periodic checkpoints under
    /// `dir/dc{d}_p{p}/`, replays them on boot, and can therefore
    /// survive [`Cluster::kill_partition`] /
    /// [`Cluster::restart_partition`] cycles. The directory is created
    /// on demand; an existing one is **recovered from**, so pointing
    /// two live clusters at the same directory is a caller bug.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Group-commit fsync policy for durable clusters (default
    /// [`FsyncPolicy::Always`]: an acknowledged write is on disk before
    /// the acknowledgement leaves the partition). Ignored without
    /// [`Self::durable`].
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// How often each durable partition rotates its WAL behind a fresh
    /// checkpoint (default 500 ms; zero disables rotation, leaving one
    /// ever-growing log generation). Ignored without [`Self::durable`].
    pub fn checkpoint_interval(mut self, d: Duration) -> Self {
        self.checkpoint_interval = d;
        self
    }

    /// Installs a deterministic fault-injection plan underneath the TCP
    /// fabric: every server-to-server frame and every peer dial consults
    /// it, so a seeded [`FaultPlan`] can drop, duplicate, delay or
    /// reorder inter-server traffic, refuse dials, or partition peers —
    /// replayably, from one seed. Client↔server sockets are unaffected
    /// (sessions model a co-located client). Ignored in channel mode.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Total time a TCP session keeps retrying a refused dial (with
    /// jittered exponential backoff) before reporting the server
    /// unreachable (default 100 ms). Small budgets make sessions fail
    /// fast and lean on their own retry loop; large ones ride out a
    /// restart inside a single dial. Ignored in channel mode.
    pub fn dial_retry_budget(mut self, d: Duration) -> Self {
        self.dial_retry_budget = d;
        self
    }

    /// How long a coordinator lets a transaction that has started its
    /// 2PC fan-out sit without a full set of votes before unilaterally
    /// aborting it (default 3 s). This is the crash-failover backstop:
    /// when a cohort dies mid-prepare and recovers without the prepare,
    /// the coordinator eventually aborts rather than pinning the
    /// transaction's locks and GC watermark forever. Idle *interactive*
    /// transactions (between start and commit) are never aborted — the
    /// timer arms at the commit fan-out.
    pub fn tx_abort_timeout(mut self, d: Duration) -> Self {
        self.tx_abort_timeout = d;
        self
    }

    /// Periodically logs what changed in the cluster's merged metrics:
    /// every `d`, a background thread snapshots
    /// [`Cluster::metrics`], diffs it against the previous snapshot and
    /// prints one compact line to stderr — non-zero counter deltas and
    /// histogram deltas with their interval p50/p99. Zero disables
    /// (the default: no logger thread at all).
    pub fn metrics_every(mut self, d: Duration) -> Self {
        self.metrics_every = (!d.is_zero()).then_some(d);
        self
    }

    /// Spawns the server threads and returns the running cluster.
    pub fn build(self) -> Cluster {
        Cluster::start(self)
    }
}

/// Tick intervals an engine launched under `cfg` runs with.
fn ticks_of(cfg: &ClusterBuilder) -> crate::engine::Ticks {
    (
        cfg.replication_tick,
        cfg.gossip_tick,
        if cfg.gc_tick.is_zero() {
            None
        } else {
            Some(cfg.gc_tick)
        },
        // Checkpoint rotation only makes sense with a log to rotate.
        cfg.durable_dir
            .as_ref()
            .filter(|_| !cfg.checkpoint_interval.is_zero())
            .map(|_| cfg.checkpoint_interval),
    )
}

/// The durability opening for partition `id` under `cfg`, if any:
/// every partition logs into its own subdirectory of the cluster's
/// durability root.
fn durability_of(cfg: &ClusterBuilder, id: ServerId, rejoin: bool) -> Option<Durability> {
    cfg.durable_dir.as_ref().map(|root| Durability {
        dir: root.join(format!("dc{}_p{}", id.dc.0, id.partition.0)),
        policy: cfg.fsync,
        rejoin,
    })
}

/// Everything the cluster's merged metrics snapshot draws from, shared
/// between [`Cluster::metrics`] and the optional metrics-logger thread
/// ([`ClusterBuilder::metrics_every`]).
struct ObsHub {
    /// Per-partition live handles (registry + trace ring), DC-major
    /// order. A restart replaces the slot — the new process starts with
    /// fresh metrics, exactly as a real restarted server would.
    partitions: Mutex<Vec<(Registry, ServerTrace)>>,
    /// The non-partition registries folded into the merged view:
    /// session ops, the TCP fabric (if any), the fault plan (if any).
    extras: Vec<Registry>,
}

impl ObsHub {
    /// The merged cluster-wide snapshot: partition registries use
    /// unprefixed metric names, so merging them yields cross-partition
    /// aggregates (`commit_prepare_micros` = the histogram over every
    /// partition's commits).
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (registry, _) in self.partitions.lock().iter() {
            snap.merge(&registry.snapshot());
        }
        for registry in &self.extras {
            snap.merge(&registry.snapshot());
        }
        snap
    }
}

/// One interval's worth of metric movement, as a single stderr line:
/// non-zero counter deltas, then histogram deltas with their interval
/// count/p50/p99. Gauges are skipped (they are point-in-time values,
/// visible in a full [`Cluster::metrics`] snapshot).
fn log_metrics_delta(at: Duration, delta: &MetricsSnapshot) {
    let mut line = format!("[wren metrics +{:.1}s]", at.as_secs_f64());
    for (name, v) in &delta.counters {
        if *v != 0 {
            let _ = write!(line, " {name}={v}");
        }
    }
    for (name, h) in &delta.histograms {
        if h.count != 0 {
            let _ = write!(
                line,
                " {name}[n={} p50={} p99={}]",
                h.count,
                h.p50(),
                h.p99()
            );
        }
    }
    eprintln!("{line}");
}

/// An in-process Wren cluster: one partition **engine** per partition —
/// a writer thread running the protocol state machine plus a pool of
/// read workers serving slices straight from the stripe-locked store —
/// with real (shared) wall-clock time and crossbeam channels as the
/// FIFO transport.
///
/// This is the deployable face of the library: the exact protocol state
/// machines the simulator benchmarks, driven by threads instead of
/// simulated events. Sessions ([`Cluster::session`]) expose the paper's
/// client API: `start / read / write / commit`.
///
/// # Example
///
/// ```
/// use wren_rt::ClusterBuilder;
/// use wren_protocol::Key;
/// use bytes::Bytes;
///
/// let cluster = ClusterBuilder::new().dcs(1).partitions(2).build();
/// let mut session = cluster.session(0);
/// session.begin().unwrap();
/// session.write(Key(1), Bytes::from_static(b"hello"));
/// session.commit().unwrap();
///
/// session.begin().unwrap();
/// let value = session.read_one(Key(1)).unwrap();
/// assert_eq!(value, Some(Bytes::from_static(b"hello"))); // read-your-writes
/// session.commit().unwrap();
/// cluster.shutdown();
/// ```
pub struct Cluster {
    cfg: ClusterBuilder,
    router: Arc<Router>,
    /// `None` marks a killed partition awaiting
    /// [`restart_partition`](Self::restart_partition).
    engines: Vec<Option<PartitionEngine>>,
    /// Receiver clones retained so a restarted engine can re-attach to
    /// the same inbox channel (the vendored channel is MPMC); also what
    /// [`restart_partition`](Self::restart_partition) drains to model
    /// the dead process's lost inbox.
    server_rxs: Vec<Receiver<RtMsg>>,
    /// Same, for the per-partition read channels (empty slots when the
    /// cluster runs without read workers).
    read_rxs: Vec<Option<Receiver<ReadJob>>>,
    wren_cfg: WrenConfig,
    epoch: Instant,
    /// Listener addresses in TCP mode (DC-major partition order).
    addrs: Arc<Vec<SocketAddr>>,
    next_client: AtomicU32,
    next_coordinator: AtomicU32,
    shut_down: std::sync::atomic::AtomicBool,
    /// The observability hub behind [`Cluster::metrics`] /
    /// [`Cluster::dump_traces`], shared with the logger thread.
    obs: Arc<ObsHub>,
    /// Session-op metric handles, cloned into every session.
    session_metrics: SessionMetrics,
    /// The metrics-logger thread ([`ClusterBuilder::metrics_every`]):
    /// stop sender + join handle, taken at stop/drop.
    metrics_logger: Option<(Sender<()>, JoinHandle<()>)>,
}

impl Cluster {
    fn start(cfg: ClusterBuilder) -> Cluster {
        let total = cfg.n_dcs as usize * cfg.n_partitions as usize;
        let mut txs = Vec::with_capacity(total);
        let mut rxs = Vec::with_capacity(total);
        for _ in 0..total {
            let (tx, rx) = unbounded::<RtMsg>();
            txs.push(tx);
            rxs.push(rx);
        }
        // With read workers, every partition also gets an MPMC read
        // channel the router diverts SliceReqs to; the sender is kept in
        // the router (for routing) and in the engine (for shutdown).
        let mut read_rxs = Vec::with_capacity(total);
        let mut read_txs = Vec::new();
        if cfg.read_workers > 0 {
            for _ in 0..total {
                let (tx, rx) = unbounded::<ReadJob>();
                read_txs.push(tx);
                read_rxs.push(Some(rx));
            }
        } else {
            read_rxs.resize_with(total, || None);
        }
        // TCP mode: bind every server's loopback listener up front so
        // the fabric knows all addresses before any engine (or lazy
        // dial) runs; acceptors (threaded) or listener registrations
        // (reactor) follow as soon as the router exists.
        let (listeners, addrs) = if cfg.tcp.is_some() {
            let (listeners, addrs) = bind_listeners(cfg.n_dcs, cfg.n_partitions)
                .expect("bind loopback listeners");
            (Some(listeners), addrs)
        } else {
            (None, Vec::new())
        };
        let addrs = Arc::new(addrs);

        // `new_cyclic` because the reactor fabric's handler needs a way
        // back to the router (to deliver decoded frames into the
        // engines) while the router owns the fabric: the handler gets a
        // `Weak`, so there is no leak-forming Arc ring. The reactor's
        // loops start inside the closure, but nothing can reach them
        // until sessions dial — and a frame arriving before the Arc is
        // live is dropped, exactly like one arriving after shutdown.
        let mut listeners = listeners;
        let router = Arc::new_cyclic(|weak: &std::sync::Weak<Router>| Router {
            n_partitions: cfg.n_partitions,
            server_txs: txs,
            read_txs,
            clients: RwLock::new(HashMap::new()),
            tcp: cfg.tcp.map(|kind| match kind {
                FabricKind::Threaded => Fabric::Threaded(TcpFabric::new(
                    addrs.as_ref().clone(),
                    cfg.n_partitions,
                    cfg.tcp_client_outbox_bytes,
                    cfg.fault_plan.clone(),
                )),
                FabricKind::Reactor => Fabric::Reactor(ReactorFabric::start(
                    addrs.as_ref().clone(),
                    cfg.n_partitions,
                    cfg.tcp_client_outbox_bytes,
                    cfg.reactor_threads,
                    cfg.backend,
                    listeners.take().expect("TCP mode binds listeners"),
                    weak.clone(),
                    cfg.fault_plan.clone(),
                )),
            }),
        });
        if let Some(listeners) = listeners {
            // Threaded fabric: the reactor consumed them otherwise.
            spawn_acceptors(&router, listeners);
        }

        let wren_cfg = WrenConfig {
            n_dcs: cfg.n_dcs,
            n_partitions: cfg.n_partitions,
            replication_tick_micros: cfg.replication_tick.as_micros() as u64,
            gossip_tick_micros: cfg.gossip_tick.as_micros() as u64,
            gc_tick_micros: cfg.gc_tick.as_micros() as u64,
            visibility_sample_every: 0,
            gossip_fanout: cfg.gossip_fanout,
        };
        let epoch = Instant::now();

        let mut engines = Vec::with_capacity(total);
        for dc in 0..cfg.n_dcs {
            for p in 0..cfg.n_partitions {
                let id = ServerId::new(dc, p);
                let idx = id.dc_major_index(cfg.n_partitions);
                engines.push(Some(PartitionEngine::launch(
                    id,
                    wren_cfg,
                    epoch,
                    rxs[idx].clone(),
                    read_rxs[idx].clone().map(|rx| (rx, cfg.read_workers)),
                    Arc::clone(&router),
                    ticks_of(&cfg),
                    durability_of(&cfg, id, false),
                    cfg.tx_abort_timeout,
                )));
            }
        }

        // Observability: collect every engine's registry + trace ring,
        // add the session / fabric / fault registries, and (optionally)
        // start the delta-logging thread.
        let session_metrics = SessionMetrics::new();
        let mut extras = vec![session_metrics.registry()];
        if let Some(fabric) = router.tcp() {
            extras.push(fabric.registry());
        }
        if let Some(plan) = &cfg.fault_plan {
            extras.push(plan.registry());
        }
        let obs = Arc::new(ObsHub {
            partitions: Mutex::new(
                engines
                    .iter()
                    .map(|e| {
                        let e = e.as_ref().expect("all engines live at start");
                        (e.registry(), e.trace())
                    })
                    .collect(),
            ),
            extras,
        });
        let metrics_logger = cfg.metrics_every.map(|every| {
            let obs = Arc::clone(&obs);
            let (stop_tx, stop_rx) = unbounded::<()>();
            let handle = std::thread::spawn(move || {
                let mut prev = obs.snapshot();
                let mut elapsed = Duration::ZERO;
                loop {
                    match stop_rx.recv_timeout(every) {
                        Err(RecvTimeoutError::Timeout) => {
                            elapsed += every;
                            let cur = obs.snapshot();
                            log_metrics_delta(elapsed, &cur.diff(&prev));
                            prev = cur;
                        }
                        // A stop signal or a dropped sender ends the
                        // logger either way.
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            });
            (stop_tx, handle)
        });

        Cluster {
            cfg,
            router,
            engines,
            server_rxs: rxs,
            read_rxs,
            wren_cfg,
            epoch,
            addrs,
            next_client: AtomicU32::new(0),
            next_coordinator: AtomicU32::new(0),
            shut_down: std::sync::atomic::AtomicBool::new(false),
            obs,
            session_metrics,
            metrics_logger,
        }
    }

    /// The servers' listen addresses in TCP mode, DC-major partition
    /// order (empty for a channel-transport cluster). Hand these to
    /// [`Session::connect_tcp`] in another process to join the cluster
    /// over the network.
    pub fn server_addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The syscall backend the reactor fabric resolved to — `Epoll`
    /// when a requested [`Backend::Uring`] was unavailable and fell
    /// back. `None` in channel mode and for the threaded fabric (which
    /// has no event loops to back).
    pub fn tcp_backend(&self) -> Option<Backend> {
        match self.router.tcp() {
            Some(Fabric::Reactor(f)) => Some(f.backend()),
            _ => None,
        }
    }

    /// Inter-server messages the TCP fabric refused to frame (always 0
    /// on a healthy run — legitimate traffic cannot exceed the frame
    /// ceiling; see `wren_protocol::frame::MAX_FRAME_LEN`). Always 0 in
    /// channel mode. The loopback oracle tests assert on this: the
    /// transport must be loss-free while the invariants are checked.
    pub fn tcp_dropped_frames(&self) -> u64 {
        self.router.tcp().map_or(0, |f| f.dropped_frames())
    }

    /// The cluster's merged metrics snapshot: every live partition's
    /// registry (commit-stage, read-slice, WAL, replication and
    /// visibility-lag histograms — unprefixed names, so the merge is the
    /// cross-partition aggregate), the session-op histograms, and — in
    /// TCP mode — the fabric's socket-boundary counters plus the fault
    /// plan's injection counters, all folded into one diffable
    /// [`MetricsSnapshot`]. Render it with
    /// [`MetricsSnapshot::render_prometheus`] or diff two calls to see
    /// an interval's movement.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Dumps every partition's tx-lifecycle trace ring (oldest event
    /// first), tagged with the owning server, DC-major partition order.
    /// This is the chaos-debugging view: a failed oracle run prints it
    /// to show the last ~512 protocol events — begins, prepares,
    /// decisions, in-doubt aborts, applies, stable raises, crashes,
    /// restarts, link losses — each partition saw before the failure.
    pub fn dump_traces(&self) -> Vec<(ServerId, Vec<TxEvent>)> {
        self.obs
            .partitions
            .lock()
            .iter()
            .enumerate()
            .map(|(idx, (_, trace))| {
                let dc = (idx / self.cfg.n_partitions as usize) as u8;
                let p = (idx % self.cfg.n_partitions as usize) as u16;
                (ServerId::new(dc, p), trace.dump())
            })
            .collect()
    }

    /// Number of DCs in the cluster.
    pub fn n_dcs(&self) -> u8 {
        self.cfg.n_dcs
    }

    /// Partitions per DC.
    pub fn n_partitions(&self) -> u16 {
        self.cfg.n_partitions
    }

    /// Opens a client session against DC `dc`, choosing a coordinator
    /// partition round-robin (the paper picks coordinators at random and
    /// collocates clients with them).
    ///
    /// # Panics
    ///
    /// Panics if `dc` is out of range.
    pub fn session(&self, dc: u8) -> Session {
        assert!(dc < self.cfg.n_dcs, "no such DC");
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let p = (self.next_coordinator.fetch_add(1, Ordering::Relaxed)
            % self.cfg.n_partitions as u32) as u16;
        let coordinator = ServerId::new(dc, p);
        if self.cfg.tcp.is_some() {
            // Same API, real sockets: the session dials its coordinator
            // exactly as a remote process would.
            return Session::tcp(
                id,
                coordinator,
                Arc::clone(&self.addrs),
                self.cfg.n_partitions,
                self.cfg.session_timeout,
                self.cfg.dial_retry_budget,
                Some(self.session_metrics.clone()),
            );
        }
        let rx = self.router.register_client(id);
        Session::channel(
            id,
            coordinator,
            Arc::clone(&self.router),
            rx,
            self.cfg.session_timeout,
            Some(self.session_metrics.clone()),
        )
    }

    /// Abruptly kills one partition's engine — the in-process stand-in
    /// for `kill -9` on the partition's process — and returns its final
    /// statistics. The writer thread exits without draining its inbox,
    /// without dispatching pending responses and **without flushing or
    /// sealing its WAL**: whatever bytes the fsync policy left buffered
    /// are lost, exactly as a crash would lose them. Read workers are
    /// stopped too (reads are stateless, so nothing is lost there).
    ///
    /// In TCP mode the kill extends to the partition's sockets: its
    /// listener closes (freeing the address for the restart rebind) and
    /// every established connection it owns — accepted sessions, dialed
    /// peer links — is severed mid-stream, exactly as the OS would reap
    /// a dead process's fds. Peers observe EOF, park their links and
    /// re-dial with backoff until the partition returns.
    ///
    /// Only meaningful on a [durable](ClusterBuilder::durable) cluster
    /// — a killed non-durable partition has nothing to recover from —
    /// but allowed on any cluster for testing.
    ///
    /// # Panics
    ///
    /// Panics if `dc`/`p` are out of range, or if the partition is
    /// already down.
    pub fn kill_partition(&mut self, dc: u8, p: u16) -> ServerStats {
        let id = ServerId::new(dc, p);
        let idx = id.dc_major_index(self.cfg.n_partitions);
        let engine = self.engines[idx].take().expect("partition already down");
        // Mark the crash in the victim's trace ring — the post-mortem
        // dump should show the kill between the events it interrupted.
        self.obs.partitions.lock()[idx]
            .1
            .push(TxEvent::KillPartition { server: id });
        // Sockets first, so in-flight frames die with the process and
        // nothing new lands in the inbox behind the kill pill.
        if let Some(fabric) = self.router.tcp() {
            fabric.kill_server(id);
        }
        let _ = self.router.server_txs[idx].send(RtMsg::Kill);
        if !self.router.read_txs.is_empty() {
            for _ in 0..self.cfg.read_workers {
                let _ = self.router.read_txs[idx].send(ReadJob::Shutdown);
            }
        }
        engine.join()
    }

    /// Restarts a partition previously taken down by
    /// [`kill_partition`](Self::kill_partition): recovers the engine
    /// from its WAL + newest checkpoint, then has it ask its sibling
    /// replicas to re-ship whatever replicated commits died in the old
    /// process's inbox (catch-up), after which it serves traffic as if
    /// it had never been away. Everything queued to the partition while
    /// it was down is discarded first — messages to a dead process are
    /// lost, and recovering them from the channel would let the test
    /// pass without the WAL working.
    ///
    /// In TCP mode the partition also rebinds its original listen
    /// address (`SO_REUSEADDR` makes the exact address reusable
    /// immediately) before the engine relaunches: parked peer links
    /// re-dial it with backoff and replication resumes; sessions that
    /// kept retrying reconnect as if the server had merely been slow.
    ///
    /// # Panics
    ///
    /// Panics if the partition is still running or if the cluster is
    /// not [durable](ClusterBuilder::durable).
    pub fn restart_partition(&mut self, dc: u8, p: u16) {
        assert!(
            self.cfg.durable_dir.is_some(),
            "restart requires a durable cluster"
        );
        let id = ServerId::new(dc, p);
        let idx = id.dc_major_index(self.cfg.n_partitions);
        assert!(self.engines[idx].is_none(), "partition still running");
        // Process-down semantics: the dead process's inboxes are gone.
        while self.server_rxs[idx].try_recv().is_some() {}
        if let Some(rrx) = &self.read_rxs[idx] {
            while rrx.try_recv().is_some() {}
        }
        // Network back first: frames accepted between rebind and engine
        // launch just queue in the (freshly drained) inbox.
        if let Some(fabric) = self.router.tcp() {
            let SocketAddr::V4(v4) = self.addrs[idx] else {
                unreachable!("listeners bind IPv4 loopback")
            };
            let listener =
                wren_net::poll::bind_reusable(v4).expect("rebind the partition's address");
            match fabric {
                Fabric::Threaded(f) => {
                    f.revive_server(id);
                    spawn_acceptors(&self.router, vec![(id, listener)]);
                }
                Fabric::Reactor(f) => f.restart_server(id, listener),
            }
        }
        let engine = PartitionEngine::launch(
            id,
            self.wren_cfg,
            self.epoch,
            self.server_rxs[idx].clone(),
            self.read_rxs[idx]
                .clone()
                .map(|rx| (rx, self.cfg.read_workers)),
            Arc::clone(&self.router),
            ticks_of(&self.cfg),
            durability_of(&self.cfg, id, true),
            self.cfg.tx_abort_timeout,
        );
        // The new process gets a fresh registry and trace ring (its
        // pre-crash metrics died with it, as on a real host); the
        // restart event is the new trace's first entry, so a dump reads
        // "restarted here, then caught up".
        let trace = engine.trace();
        trace.push(TxEvent::Restart { server: id });
        self.obs.partitions.lock()[idx] = (engine.registry(), trace);
        self.engines[idx] = Some(engine);
    }

    /// Asks every engine to stop: a shutdown message to each writer
    /// thread and a poison job per read worker (queued behind any
    /// pending slices, which are still served). Threads are joined (and
    /// their final [`ServerStats`] collected) in [`Cluster::stop`] or on
    /// drop; calling this twice is harmless (idempotent).
    pub fn shutdown(&self) {
        if self.shut_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // TCP first: close listeners and sever every connection (in
        // flight included) so no new work reaches the engines while
        // they drain their inboxes towards the poison messages below.
        if let Some(fabric) = self.router.tcp() {
            fabric.shutdown();
        }
        for tx in &self.router.server_txs {
            let _ = tx.send(RtMsg::Shutdown);
        }
        for tx in &self.router.read_txs {
            for _ in 0..self.cfg.read_workers {
                let _ = tx.send(ReadJob::Shutdown);
            }
        }
    }

    /// Stops the cluster and returns each server's final statistics in
    /// DC-major partition order (read-worker-served slices included —
    /// the counters are shared). Consumes the cluster; every writer and
    /// read-worker thread is joined before this returns, so no engine
    /// thread outlives the call.
    pub fn stop(mut self) -> Vec<ServerStats> {
        self.shutdown();
        self.stop_metrics_logger();
        let stats = self
            .engines
            .drain(..)
            .map(|e| e.map_or_else(ServerStats::default, PartitionEngine::join))
            .collect();
        if let Some(fabric) = self.router.tcp() {
            fabric.join_threads();
        }
        stats
    }

    /// Stops and joins the metrics-logger thread, if one runs.
    /// Idempotent (the handle is taken on first call).
    fn stop_metrics_logger(&mut self) {
        if let Some((stop, handle)) = self.metrics_logger.take() {
            let _ = stop.send(());
            let _ = handle.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
        self.stop_metrics_logger();
        // Deterministic teardown, workers before writer per engine: no
        // detached read worker survives the cluster.
        for engine in self.engines.drain(..).flatten() {
            let _ = engine.join();
        }
        // Then the fabric: acceptors, connection readers and outbox
        // writers — no socket thread survives either.
        if let Some(fabric) = self.router.tcp() {
            fabric.join_threads();
        }
    }
}

