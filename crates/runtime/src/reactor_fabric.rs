//! The reactor TCP fabric: the cluster's engines behind real sockets,
//! served by a **fixed pool of epoll threads** instead of two OS
//! threads per connection.
//!
//! The wire semantics are identical to the threaded fabric
//! ([`crate::tcp`]): every protocol hop is encoded, framed, written to
//! a socket, read back, decoded and dispatched; the first frame on a
//! connection is a [`Hello`]; client links get the bounded outbox cap
//! (overflow = disconnect the slow client); inter-server links are
//! effectively unbounded and lossless. What changes is the thread
//! topology:
//!
//! * **No acceptor threads.** Every partition's listener is registered
//!   with the shared [`Reactor`]; accepts happen on readable readiness.
//! * **No per-connection reader threads.** Readable bytes are fed
//!   through the connection's `FrameDecoder` on a reactor thread; the
//!   frames decoded by one readiness burst are buffered per connection
//!   and delivered into the destination engine's inbox as **one**
//!   coalesced wake-up (`RtMsg::Batch`) when the burst ends, so a
//!   pipelined run of requests costs the engine one channel receive
//!   and one group-commit point (read slices divert to the read
//!   workers in wire order, as everywhere).
//! * **No per-connection writer threads.** Responses are enqueued on
//!   the connection's bounded queue ([`ConnHandle`]) and drained by the
//!   reactor on writable readiness, with partial-write state per fd.
//!
//! Total fabric threads: `reactor_threads` (default 2), independent of
//! the number of sessions — O(reactor_threads + partitions) process
//! threads overall, where the threaded fabric needs O(connections).
//!
//! Shutdown is idempotent: flag, reactor shutdown (wakes every loop,
//! severs every fd, drops every listener), registry sweep, join. The
//! accept/dial/register-vs-sweep races close the same way as in the
//! threaded fabric: re-check the closing flag *after* publishing, so
//! exactly one side severs.
//!
//! **Failover and fault injection** follow the threaded fabric's model
//! (see [`crate::tcp`]'s module docs for the full lifecycle): a killed
//! server's [`ListenerHandle`] closes (its reactor thread reaps the fd,
//! freeing the address for the restart rebind), every connection it
//! owns is severed, peer links toward it park behind the shared
//! jittered dial backoff, a lost inbound peer link is reported via
//! [`Router::notify_link_lost`] (from [`ReactorHandler::on_close`], the
//! reactor's exactly-once teardown callback), and every server→server
//! frame and dial consults the optional [`FaultPlan`].

use crate::cluster::{Fabric, Router};
use crate::metrics::FabricMetrics;
use crate::tcp::{legal_from_client, legal_from_server, PeerLink, SERVER_OUTBOX_BYTES};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use wren_net::{
    Backend, ConnHandle, FaultPlan, Hello, ListenerHandle, Reactor, ReactorHandler, ReactorMetrics,
    ReactorOptions, SendVerdict,
};
use wren_protocol::frame::try_frame_wren;
use wren_protocol::{ClientId, Dest, ServerId, WrenMsg};

/// One outbound link's slot: serializes dial + enqueue for its
/// (engine, peer) pair only, exactly like the threaded fabric's, with
/// the same park-on-refused-dial gate ([`PeerLink`]).
type PeerSlot = Arc<Mutex<PeerLink<ConnHandle>>>;

/// Per-process reactor-fabric state: listener addresses, live link and
/// client registries, and the reactor itself.
pub(crate) struct ReactorFabric {
    /// All servers' listen addresses, DC-major partition order.
    addrs: Vec<SocketAddr>,
    n_partitions: u16,
    /// The client-connection outbox cap, kept for restart re-binds.
    client_outbox_bytes: usize,
    /// Outbound links, one slot per (local engine, remote server) pair.
    peers: RwLock<HashMap<(ServerId, ServerId), PeerSlot>>,
    /// Response sinks for connected clients, registered at hello time.
    clients: RwLock<HashMap<ClientId, ConnHandle>>,
    /// Per-server listener handles, DC-major order: `None` while a
    /// server is killed (its handle was closed) until its restart
    /// registers a fresh listener.
    listeners: Mutex<Vec<Option<ListenerHandle>>>,
    /// Accepted connections keyed by fabric-assigned id and tagged with
    /// the accepting server, so [`Self::kill_server`] can sever exactly
    /// the victim's; entries are reaped in `on_close`.
    conns: Mutex<HashMap<u64, (ServerId, ConnHandle)>>,
    next_conn: AtomicU64,
    /// Socket-boundary metric handles — same metric names as the
    /// threaded fabric's, so the two topologies diff cleanly. The
    /// frame-ceiling drop counter is 0 on any healthy run (see
    /// [`crate::tcp::TcpFabric::send_server`] for why splitting would
    /// be unsound); injected faults are counted by the [`FaultPlan`]
    /// itself, not here.
    metrics: FabricMetrics,
    /// Per-server kill flags, DC-major order (see the threaded twin).
    down: Vec<AtomicBool>,
    /// The deterministic fault plan, when the cluster injects faults.
    faults: Option<FaultPlan>,
    closing: AtomicBool,
    reactor: Reactor<RtHandler>,
}

impl ReactorFabric {
    /// Starts the reactor pool and registers every listener with it.
    /// Called inside the router's `Arc::new_cyclic`, which is why the
    /// handler gets a `Weak` — frames arriving before the router Arc
    /// finishes construction (or after it drops) are simply dropped,
    /// like sends during shutdown.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        addrs: Vec<SocketAddr>,
        n_partitions: u16,
        client_outbox_bytes: usize,
        reactor_threads: usize,
        backend: Backend,
        listeners: Vec<(ServerId, TcpListener)>,
        router: Weak<Router>,
        faults: Option<FaultPlan>,
    ) -> ReactorFabric {
        let handler = RtHandler {
            router,
            n_partitions,
            n_servers: addrs.len(),
        };
        let metrics = FabricMetrics::new();
        let reactor = Reactor::with_options(
            reactor_threads,
            handler,
            ReactorOptions {
                backend,
                metrics: ReactorMetrics {
                    writev_frames: Some(metrics.writev_frames_per_call.clone()),
                    sqe_per_enter: Some(metrics.uring_sqe_per_enter.clone()),
                },
            },
        )
        .expect("start reactor pool");
        let mut handles: Vec<Option<ListenerHandle>> = Vec::new();
        handles.resize_with(addrs.len(), || None);
        for (me, listener) in listeners {
            let idx = me.dc_major_index(n_partitions);
            handles[idx] = Some(
                reactor
                    .add_listener(listener, idx as u64, client_outbox_bytes)
                    .expect("register listener with reactor"),
            );
        }
        let down = addrs.iter().map(|_| AtomicBool::new(false)).collect();
        ReactorFabric {
            addrs,
            n_partitions,
            client_outbox_bytes,
            peers: RwLock::new(HashMap::new()),
            clients: RwLock::new(HashMap::new()),
            listeners: Mutex::new(handles),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            metrics,
            down,
            faults,
            closing: AtomicBool::new(false),
            reactor,
        }
    }

    /// Ships one engine-originated message to a peer server over the
    /// (lazily dialed) outbound link; drops it during shutdown, like a
    /// channel send to a stopped cluster, and while the link is parked
    /// behind its dial backoff — packets to a dead host.
    pub(crate) fn send_server(&self, src: ServerId, to: ServerId, msg: &WrenMsg) {
        // A killed process sends nothing and receives nothing.
        if self.down[src.dc_major_index(self.n_partitions)].load(Ordering::SeqCst)
            || self.down[to.dc_major_index(self.n_partitions)].load(Ordering::SeqCst)
        {
            return;
        }
        let Some(frame) = try_frame_wren(msg) else {
            // Unframeable server→server message: dropping beats a torn
            // half-applied batch (see the threaded fabric's comment).
            self.metrics.dropped_frames.inc();
            return;
        };
        // The fault plan's verdict may multiply the frame (duplicate,
        // released delays), erase it (drop), or sever the link after.
        let (frames, sever_after): (Vec<Bytes>, bool) =
            match self.faults.as_ref().map(|f| f.on_send(src, to, &frame)) {
                None | Some(SendVerdict::Pass) => (vec![frame], false),
                Some(SendVerdict::Mutate { frames, sever }) => {
                    (frames.into_iter().map(Bytes::from).collect(), sever)
                }
            };
        let key = (src, to);
        let existing = self.peers.read().get(&key).map(Arc::clone);
        let slot: PeerSlot = match existing {
            Some(slot) => slot,
            None => Arc::clone(self.peers.write().entry(key).or_default()),
        };
        let mut link = slot.lock();
        'transmit: {
            if frames.is_empty() {
                break 'transmit; // the plan dropped it: nothing to carry
            }
            if let Some(conn) = link.out.as_ref() {
                if frames.iter().all(|f| conn.enqueue(f.clone())) {
                    self.note_sent(&frames, conn.queued_bytes());
                    break 'transmit;
                }
                // The link died (peer gone / overflow); redial below.
                link.out = None;
            }
            if self.closing.load(Ordering::SeqCst) || !link.may_dial() {
                break 'transmit;
            }
            match self.dial(src, to) {
                Ok(conn) => {
                    link.unpark();
                    for f in &frames {
                        conn.enqueue(f.clone());
                    }
                    self.note_sent(&frames, conn.queued_bytes());
                    // Shutdown may have drained the peers map while we
                    // dialed; re-checking ensures the new link cannot
                    // escape severing.
                    if self.closing.load(Ordering::SeqCst) {
                        conn.sever();
                        break 'transmit;
                    }
                    link.out = Some(conn);
                }
                // Refused: park and drop the frames, like a dead host.
                Err(_) => {
                    link.dial_failed();
                    self.metrics.dial_backoff_parks.inc();
                }
            }
        }
        if sever_after {
            if let Some(conn) = link.out.take() {
                conn.sever();
            }
        }
    }

    /// Records outbound frames (count, bytes) and the link's queued-
    /// depth high-water mark after an enqueue.
    fn note_sent(&self, frames: &[Bytes], queued: usize) {
        self.metrics.frames_out.add(frames.len() as u64);
        self.metrics
            .bytes_out
            .add(frames.iter().map(|f| f.len() as u64).sum());
        self.metrics.outbox_depth_bytes.record_max(queued as u64);
    }

    fn dial(&self, src: ServerId, to: ServerId) -> std::io::Result<ConnHandle> {
        if let Some(f) = &self.faults {
            if !f.allow_dial(src, to) {
                return Err(std::io::ErrorKind::ConnectionRefused.into());
            }
        }
        let stream = TcpStream::connect(self.addrs[to.dc_major_index(self.n_partitions)])?;
        stream.set_nodelay(true)?;
        let conn = self.reactor.add_conn(
            stream,
            RtConn {
                me: src,
                identity: RtIdentity::Dialed,
                conn_id: None,
                pending: Vec::new(),
            },
            SERVER_OUTBOX_BYTES,
        )?;
        conn.enqueue(Hello::Server(src).encode_framed());
        Ok(conn)
    }

    /// Ships a response to a connected client; silently dropped if the
    /// client is gone (its session times out, as in channel mode).
    pub(crate) fn send_client(&self, to: ClientId, msg: &WrenMsg) {
        if let Some(conn) = self.clients.read().get(&to) {
            match try_frame_wren(msg) {
                Some(frame) => {
                    self.metrics.frames_out.inc();
                    self.metrics.bytes_out.add(frame.len() as u64);
                    conn.enqueue(frame);
                    self.metrics
                        .outbox_depth_bytes
                        .record_max(conn.queued_bytes() as u64);
                }
                // Undeliverable response: sever so the client fails
                // fast instead of waiting out its timeout.
                None => conn.sever(),
            }
        }
    }

    /// Flags the fabric closed and severs everything. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.closing.store(true, Ordering::SeqCst);
        // The reactor sweep severs every registered fd and closes every
        // listener; the registry sweeps below catch links that were
        // created but not yet (or no longer) known to the reactor.
        self.reactor.shutdown();
        for (_, slot) in self.peers.write().drain() {
            if let Some(conn) = slot.lock().out.take() {
                conn.sever();
            }
        }
        for (_, conn) in self.clients.write().drain() {
            conn.sever();
        }
        for (_, (_, conn)) in self.conns.lock().drain() {
            conn.sever();
        }
    }

    /// Abruptly takes one server off the network: down flag, listener
    /// close (the owning reactor thread reaps the fd, freeing the
    /// address for the restart rebind), and a hard sever of every link
    /// and accepted connection the victim owns. Peers and sessions
    /// observe EOF mid-stream, exactly like `kill -9`.
    pub(crate) fn kill_server(&self, id: ServerId) {
        let idx = id.dc_major_index(self.n_partitions);
        self.down[idx].store(true, Ordering::SeqCst);
        if let Some(handle) = self.listeners.lock()[idx].take() {
            handle.close();
        }
        // Outbound links from the victim (its process died) and toward
        // it (its end of those sockets died).
        for (&(from, to), slot) in self.peers.read().iter() {
            if from == id || to == id {
                if let Some(conn) = slot.lock().out.take() {
                    conn.sever();
                }
            }
        }
        // Accepted connections the victim owned: inbound peer links and
        // client sessions get EOF; `on_close` reaps the entries.
        for (owner, conn) in self.conns.lock().values() {
            if *owner == id {
                conn.sever();
            }
        }
    }

    /// Puts a restarted server back on the network: clears the down
    /// flag, unparks every peer link toward it (so the first
    /// post-restart send re-dials immediately) and registers the fresh
    /// listener — bound by the caller on the original address — with
    /// the reactor pool.
    pub(crate) fn restart_server(&self, id: ServerId, listener: TcpListener) {
        let idx = id.dc_major_index(self.n_partitions);
        self.down[idx].store(false, Ordering::SeqCst);
        for (&(_, to), slot) in self.peers.read().iter() {
            if to == id {
                slot.lock().unpark();
            }
        }
        let handle = self
            .reactor
            .add_listener(listener, idx as u64, self.client_outbox_bytes)
            .expect("re-register restarted listener with reactor");
        self.listeners.lock()[idx] = Some(handle);
    }

    /// Server→server messages refused for exceeding the frame ceiling
    /// (0 on any healthy run; the loopback oracle suite asserts it).
    /// Thin shim over the registry counter of the same name.
    pub(crate) fn dropped_frames(&self) -> u64 {
        self.metrics.dropped_frames.get()
    }

    /// The syscall backend the pool resolved to (epoll fallback shows
    /// here when a requested uring was unavailable).
    pub(crate) fn backend(&self) -> Backend {
        self.reactor.backend()
    }

    /// The fabric's metric registry (folded into the cluster snapshot).
    pub(crate) fn registry(&self) -> wren_obs::Registry {
        self.metrics.registry()
    }

    /// Joins the reactor threads (after [`shutdown`](Self::shutdown)).
    pub(crate) fn join_threads(&self) {
        self.reactor.join();
    }

    fn register_client(&self, id: ClientId, conn: ConnHandle) {
        if let Some(old) = self.clients.write().insert(id, conn.clone()) {
            // A reconnect (e.g. after migration) displaces the old
            // registration; sever the stale connection.
            old.sever();
        }
        // Shutdown may have swept the client map between the insert and
        // its sweep; re-checking after the insert guarantees one side
        // sees the other (the closing store precedes the sweep).
        if self.closing.load(Ordering::SeqCst) {
            conn.sever();
        }
    }

    fn unregister_client(&self, id: ClientId, conn: &ConnHandle) {
        let mut clients = self.clients.write();
        if clients.get(&id).is_some_and(|cur| cur.same_as(conn)) {
            clients.remove(&id);
        }
    }
}

/// Who is on the other end of a reactor-served connection.
enum RtIdentity {
    /// Accepted, handshake not yet received.
    AwaitingHello,
    /// A client session; frames are `Dest::Client`-sourced requests.
    Client(ClientId),
    /// A peer server's inbound link; read-only for us — replies travel
    /// on our own outbound link to that peer.
    Peer(ServerId),
    /// Our own outbound link; the peer never sends frames back on it.
    Dialed,
}

/// Per-connection protocol state, owned by the connection's reactor
/// thread (no locks — see [`ReactorHandler`]).
struct RtConn {
    /// The local server whose listener accepted (or engine dialed) the
    /// connection.
    me: ServerId,
    identity: RtIdentity,
    /// This connection's entry in the fabric's accepted-conn registry
    /// (`None` for dialed links, which live in peer slots instead).
    conn_id: Option<u64>,
    /// Legality-checked messages decoded during the current readiness
    /// burst, flushed to the engine as one [`RtMsg::Batch`] wake-up in
    /// `on_burst_end` (the reactor fires it after every decode burst
    /// and before `on_close`, so buffered frames are never lost).
    ///
    /// [`RtMsg::Batch`]: crate::cluster::RtMsg::Batch
    pending: Vec<WrenMsg>,
}

/// Routes reactor events into the cluster: hellos establish identity,
/// later frames are legality-filtered and delivered to the local
/// engines exactly as the threaded fabric's reader threads would.
struct RtHandler {
    router: Weak<Router>,
    n_partitions: u16,
    n_servers: usize,
}

impl RtHandler {
    fn with_fabric<R>(&self, f: impl FnOnce(&Arc<Router>, &ReactorFabric) -> R) -> Option<R> {
        let router = self.router.upgrade()?;
        let fabric = match router.tcp() {
            Some(Fabric::Reactor(fabric)) => fabric,
            _ => return None,
        };
        Some(f(&router, fabric))
    }
}

impl ReactorHandler for RtHandler {
    type Conn = RtConn;

    fn on_accept(&self, listener_ctx: u64, handle: &ConnHandle) -> Option<RtConn> {
        let idx = listener_ctx as usize;
        let dc = (idx / self.n_partitions as usize) as u8;
        let p = (idx % self.n_partitions as usize) as u16;
        let me = ServerId::new(dc, p);
        // Register for per-server severing; refuse while the server is
        // down (a listener-close can race one last accept through).
        let conn_id = self.with_fabric(|_, fabric| {
            if fabric.down[idx].load(Ordering::SeqCst) {
                return None;
            }
            let conn_id = fabric.next_conn.fetch_add(1, Ordering::Relaxed);
            fabric.conns.lock().insert(conn_id, (me, handle.clone()));
            // Re-check after publishing: kill_server stores its flag
            // before sweeping `conns`, so exactly one side severs a
            // connection accepted during the race.
            if fabric.down[idx].load(Ordering::SeqCst) {
                fabric.conns.lock().remove(&conn_id);
                return None;
            }
            fabric.metrics.conns_accepted.inc();
            Some(conn_id)
        })??;
        Some(RtConn {
            me,
            identity: RtIdentity::AwaitingHello,
            conn_id: Some(conn_id),
            pending: Vec::new(),
        })
    }

    fn on_frame(&self, conn: &mut RtConn, handle: &ConnHandle, payload: bytes::Bytes) -> bool {
        match conn.identity {
            RtIdentity::AwaitingHello => match Hello::decode(&payload) {
                // A forged out-of-range ServerId would index out of
                // bounds downstream — validate at the boundary.
                Ok(Hello::Server(src))
                    if src.partition.index() < self.n_partitions as usize
                        && src.dc_major_index(self.n_partitions) < self.n_servers =>
                {
                    conn.identity = RtIdentity::Peer(src);
                    true
                }
                Ok(Hello::Server(_)) | Err(_) => false,
                Ok(Hello::Client(id)) => {
                    conn.identity = RtIdentity::Client(id);
                    self.with_fabric(|_, fabric| {
                        fabric.register_client(id, handle.clone());
                    })
                    .is_some()
                }
            },
            RtIdentity::Client(_) => match WrenMsg::decode(&payload) {
                Ok(msg) if legal_from_client(&msg) => self
                    .with_fabric(|_, fabric| {
                        fabric.metrics.frames_in.inc();
                        fabric.metrics.bytes_in.add(payload.len() as u64);
                        // Buffered, not delivered: the whole readiness
                        // burst flushes as one engine wake-up in
                        // `on_burst_end`.
                        conn.pending.push(msg);
                    })
                    .is_some(),
                // Corrupt or protocol-illegal client: sever.
                _ => false,
            },
            RtIdentity::Peer(_) => match WrenMsg::decode(&payload) {
                Ok(msg) if legal_from_server(&msg) => self
                    .with_fabric(|_, fabric| {
                        fabric.metrics.frames_in.inc();
                        fabric.metrics.bytes_in.add(payload.len() as u64);
                        conn.pending.push(msg);
                    })
                    .is_some(),
                _ => false,
            },
            // Nothing legitimate ever arrives on our outbound links.
            RtIdentity::Dialed => false,
        }
    }

    fn on_burst_end(&self, conn: &mut RtConn, _handle: &ConnHandle) {
        if conn.pending.is_empty() {
            return;
        }
        let src = match conn.identity {
            RtIdentity::Client(id) => Dest::Client(id),
            RtIdentity::Peer(s) => Dest::Server(s),
            // `pending` is only filled under an established identity.
            RtIdentity::AwaitingHello | RtIdentity::Dialed => return,
        };
        let msgs = std::mem::take(&mut conn.pending);
        self.with_fabric(|router, _| router.deliver_local_batch(src, conn.me, msgs));
    }

    fn on_close(&self, conn: &mut RtConn, handle: &ConnHandle) {
        self.with_fabric(|router, fabric| {
            if let Some(id) = conn.conn_id {
                fabric.conns.lock().remove(&id);
                fabric.metrics.conns_severed.inc();
            }
            match conn.identity {
                RtIdentity::Client(id) => fabric.unregister_client(id, handle),
                // The conn that carried `src`-origin traffic died. Tell
                // the engine, so a sibling's death opens a catch-up
                // window — unless the loss is our own teardown.
                RtIdentity::Peer(src) => {
                    let me_idx = conn.me.dc_major_index(self.n_partitions);
                    if !fabric.closing.load(Ordering::SeqCst)
                        && !fabric.down[me_idx].load(Ordering::SeqCst)
                    {
                        router.notify_link_lost(conn.me, src);
                    }
                }
                RtIdentity::AwaitingHello | RtIdentity::Dialed => {}
            }
        });
    }
}
