use crate::cluster::Router;
use crate::RtError;
use crossbeam_channel::Receiver;
use std::sync::Arc;
use std::time::Duration;
use wren_clock::Timestamp;
use wren_core::{ClientStats, WrenClient};
use wren_protocol::{ClientId, Dest, Key, ServerId, Value, WrenMsg};

/// A blocking client session against a running [`Cluster`](crate::Cluster).
///
/// Wraps the sans-io [`WrenClient`] state machine: every method sends the
/// message the state machine produces and blocks on the session's inbox
/// for the reply. One transaction may be active at a time, exactly as in
/// the paper's client model ("c does not issue another operation until it
/// receives the reply to the current one", §II-A).
pub struct Session {
    client: WrenClient,
    router: Arc<Router>,
    rx: Receiver<WrenMsg>,
    timeout: Duration,
}

impl Session {
    pub(crate) fn new(
        id: ClientId,
        coordinator: ServerId,
        router: Arc<Router>,
        rx: Receiver<WrenMsg>,
        timeout: Duration,
    ) -> Self {
        Session {
            client: WrenClient::new(id, coordinator),
            router,
            rx,
            timeout,
        }
    }

    /// This session's client id.
    pub fn id(&self) -> ClientId {
        self.client.id()
    }

    /// The coordinator partition this session talks to.
    pub fn coordinator(&self) -> ServerId {
        self.client.coordinator()
    }

    /// Client-side statistics (cache hits etc.).
    pub fn stats(&self) -> ClientStats {
        self.client.stats()
    }

    fn send(&self, msg: WrenMsg) {
        self.router
            .send_to_server(Dest::Client(self.client.id()), self.client.coordinator(), msg);
    }

    fn recv(&self) -> Result<WrenMsg, RtError> {
        self.rx.recv_timeout(self.timeout).map_err(|_| RtError::Timeout)
    }

    /// Starts an interactive transaction (the paper's `START`).
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if the coordinator does not reply in time.
    pub fn begin(&mut self) -> Result<(), RtError> {
        let msg = self.client.start();
        self.send(msg);
        let resp = self.recv()?;
        self.client.on_start_resp(resp);
        Ok(())
    }

    /// Reads a set of keys within the active transaction (the paper's
    /// multi-key `READ`). Values come from the write-set, read-set,
    /// client-side cache or the servers — never blocking server-side.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if the coordinator does not reply in time.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn read(&mut self, keys: &[Key]) -> Result<Vec<(Key, Option<Value>)>, RtError> {
        let outcome = self.client.read(keys);
        let mut results = outcome.local;
        if let Some(req) = outcome.request {
            self.send(req);
            let resp = self.recv()?;
            results.extend(self.client.on_read_resp(resp));
        }
        // Return in the caller's key order.
        let mut ordered = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(pos) = results.iter().position(|(rk, _)| rk == k) {
                ordered.push(results[pos].clone());
            }
        }
        Ok(ordered)
    }

    /// Reads a single key.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if the coordinator does not reply in time.
    pub fn read_one(&mut self, key: Key) -> Result<Option<Value>, RtError> {
        Ok(self.read(&[key])?.pop().and_then(|(_, v)| v))
    }

    /// Buffers writes in the transaction's write-set (the paper's
    /// multi-key `WRITE`).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn write_many<I: IntoIterator<Item = (Key, Value)>>(&mut self, kvs: I) {
        self.client.write(kvs);
    }

    /// Buffers a single write.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn write(&mut self, key: Key, value: Value) {
        self.client.write([(key, value)]);
    }

    /// Moves this session to a coordinator in another DC (the paper's
    /// §II-A footnote-1 extension), blocking until the new DC has
    /// installed everything the session has seen or written. Returns the
    /// number of probe transactions it took.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if a probe gets no reply, or if the new DC
    /// does not catch up within the session timeout.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is active or `coordinator` is invalid.
    pub fn migrate(&mut self, coordinator: ServerId) -> Result<u32, RtError> {
        self.client.migrate_to(coordinator);
        let deadline = std::time::Instant::now() + self.timeout;
        let mut probes = 0;
        loop {
            probes += 1;
            let msg = self.client.start();
            self.send(msg);
            let resp = self.recv()?;
            self.client.on_start_resp(resp);
            // Tear the probe transaction down either way.
            let msg = self.client.commit();
            self.send(msg);
            let resp = self.recv()?;
            let _ = self.client.on_commit_resp(resp);
            if self.client.migration_ready() {
                return Ok(probes);
            }
            if std::time::Instant::now() > deadline {
                return Err(RtError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Commits the transaction, returning its commit timestamp (zero for
    /// a read-only transaction).
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if the coordinator does not reply in time.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn commit(&mut self) -> Result<Timestamp, RtError> {
        let msg = self.client.commit();
        self.send(msg);
        let resp = self.recv()?;
        Ok(self.client.on_commit_resp(resp))
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.router.unregister_client(self.client.id());
    }
}
