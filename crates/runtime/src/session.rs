use crate::cluster::Router;
use crate::metrics::SessionMetrics;
use crate::tcp::TcpLink;
use crate::RtError;
use crossbeam_channel::Receiver;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wren_clock::Timestamp;
use wren_core::{ClientStats, WrenClient};
use wren_protocol::{ClientId, Dest, Key, ServerId, Value, WrenMsg};

/// Dial-retry budget for sessions created without a cluster handle
/// ([`Session::connect_tcp`]); in-cluster sessions inherit the
/// [`ClusterBuilder::dial_retry_budget`](crate::ClusterBuilder::dial_retry_budget)
/// knob instead.
const DEFAULT_DIAL_BUDGET: Duration = Duration::from_millis(100);

/// Pause between failover retries of one operation, letting a killed
/// coordinator's restart make progress instead of spinning on refused
/// dials.
const RETRY_PAUSE: Duration = Duration::from_millis(2);

/// The transport a session speaks: in-process channels (through the
/// cluster's router) or framed TCP to the coordinators' listeners.
/// Either way the protocol bytes and the state machine are identical.
enum Link {
    Channel {
        router: Arc<Router>,
        rx: Receiver<WrenMsg>,
        timeout: Duration,
    },
    Tcp(TcpLink),
}

/// A blocking client session against a running [`Cluster`](crate::Cluster).
///
/// Wraps the sans-io [`WrenClient`] state machine: every method sends the
/// message the state machine produces and blocks on the reply. One
/// transaction may be active at a time, exactly as in the paper's client
/// model ("c does not issue another operation until it receives the reply
/// to the current one", §II-A).
///
/// Sessions come in two transports with one API: [`Cluster::session`]
/// hands out a channel- or TCP-backed session to match the cluster, and
/// [`Session::connect_tcp`] joins a TCP cluster from anywhere — another
/// thread, another process, another machine — knowing only socket
/// addresses.
///
/// [`Cluster::session`]: crate::Cluster::session
pub struct Session {
    client: WrenClient,
    link: Link,
    /// The cluster's shared session-op metric handles; `None` for
    /// sessions joined from outside ([`Session::connect_tcp`]), which
    /// have no cluster registry to record into.
    metrics: Option<SessionMetrics>,
}

impl Session {
    pub(crate) fn channel(
        id: ClientId,
        coordinator: ServerId,
        router: Arc<Router>,
        rx: Receiver<WrenMsg>,
        timeout: Duration,
        metrics: Option<SessionMetrics>,
    ) -> Self {
        Session {
            client: WrenClient::new(id, coordinator),
            link: Link::Channel {
                router,
                rx,
                timeout,
            },
            metrics,
        }
    }

    pub(crate) fn tcp(
        id: ClientId,
        coordinator: ServerId,
        addrs: Arc<Vec<SocketAddr>>,
        n_partitions: u16,
        timeout: Duration,
        dial_budget: Duration,
        metrics: Option<SessionMetrics>,
    ) -> Self {
        Session {
            client: WrenClient::new(id, coordinator),
            link: Link::Tcp(TcpLink::new(id, addrs, n_partitions, timeout, dial_budget)),
            metrics,
        }
    }

    /// Joins a TCP-mode cluster over the network, with no handle to the
    /// [`Cluster`](crate::Cluster) object at all — only its listener
    /// addresses ([`Cluster::server_addrs`], DC-major partition order).
    /// This is how a session in a *different process* participates.
    ///
    /// `id` must be unique across every session of the cluster (the
    /// cluster's own sessions count up from 0, so remote processes
    /// should use a disjoint range). The connection is dialed lazily on
    /// the first operation.
    ///
    /// [`Cluster::server_addrs`]: crate::Cluster::server_addrs
    pub fn connect_tcp(
        addrs: Vec<SocketAddr>,
        n_partitions: u16,
        id: ClientId,
        coordinator: ServerId,
        timeout: Duration,
    ) -> Self {
        assert!(
            !addrs.is_empty() && addrs.len().is_multiple_of(n_partitions as usize),
            "need every server's address, DC-major partition order"
        );
        Session::tcp(
            id,
            coordinator,
            Arc::new(addrs),
            n_partitions,
            timeout,
            DEFAULT_DIAL_BUDGET,
            None,
        )
    }

    /// This session's client id.
    pub fn id(&self) -> ClientId {
        self.client.id()
    }

    /// The coordinator partition this session talks to.
    pub fn coordinator(&self) -> ServerId {
        self.client.coordinator()
    }

    /// Client-side statistics (cache hits etc.).
    pub fn stats(&self) -> ClientStats {
        self.client.stats()
    }

    fn send(&mut self, msg: WrenMsg) -> Result<(), RtError> {
        let coordinator = self.client.coordinator();
        match &mut self.link {
            Link::Channel { router, .. } => {
                router.send_to_server(Dest::Client(self.client.id()), coordinator, msg);
                Ok(())
            }
            Link::Tcp(link) => link.send(coordinator, &msg),
        }
    }

    fn recv(&mut self) -> Result<WrenMsg, RtError> {
        match &mut self.link {
            Link::Channel { rx, timeout, .. } => {
                rx.recv_timeout(*timeout).map_err(|_| RtError::Timeout)
            }
            Link::Tcp(link) => link.recv(),
        }
    }

    fn round_trip(&mut self, msg: WrenMsg) -> Result<WrenMsg, RtError> {
        self.send(msg)?;
        self.recv()
    }

    fn timeout(&self) -> Duration {
        match &self.link {
            Link::Channel { timeout, .. } => *timeout,
            Link::Tcp(link) => link.timeout(),
        }
    }

    /// Whether an error is worth retrying over a fresh connection: the
    /// TCP fabrics surface a killed (or restarting) coordinator as
    /// `Shutdown` (severed socket) or `Unreachable` (dials refused past
    /// their budget). `Timeout` is final — a silent server may have
    /// processed the request, so only idempotent requests may be
    /// re-sent, and those go through [`Self::retry_round_trip`]'s
    /// deadline instead.
    fn retryable(e: &RtError) -> bool {
        matches!(e, RtError::Shutdown | RtError::Unreachable(_))
    }

    /// One request with failover retries: on a severed connection or
    /// exhausted dials the *same* message is re-sent over a fresh
    /// socket until the session timeout drains. Only for idempotent
    /// requests (start, read — the coordinator answers them without
    /// side effects a duplicate would compound); commits must NOT come
    /// through here. `expects` tag-matches the response so a stale
    /// reply to an earlier, timed-out request can never be paired with
    /// this one (a mismatch resets the link and retries).
    fn retry_round_trip(
        &mut self,
        msg: WrenMsg,
        expects: impl Fn(&WrenMsg) -> bool,
    ) -> Result<WrenMsg, RtError> {
        let deadline = Instant::now() + self.timeout();
        loop {
            match self.round_trip(msg.clone()) {
                Ok(resp) if expects(&resp) => return Ok(resp),
                Ok(_) if Instant::now() < deadline => self.reset_link(),
                Ok(_) => return Err(RtError::Timeout),
                Err(e) if Self::retryable(&e) && Instant::now() < deadline => {
                    self.reset_link();
                    std::thread::sleep(RETRY_PAUSE);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Drops cached TCP connections so the next operation redials
    /// (no-op on the channel transport, which cannot lose links).
    fn reset_link(&mut self) {
        if let Link::Tcp(link) = &mut self.link {
            link.reset();
        }
    }

    /// Abandons the active transaction after a failed operation and
    /// kills the connection it ran on, so a late response to the failed
    /// request dies with the socket instead of surfacing as a stale
    /// reply to the session's next operation.
    fn fail_op(&mut self, e: RtError) -> RtError {
        self.client.abort();
        self.reset_link();
        e
    }

    /// Starts an interactive transaction (the paper's `START`).
    ///
    /// Over TCP this retries transparently across coordinator failover:
    /// a severed connection or refused dial re-sends the same request
    /// on a fresh socket until the session timeout drains.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if the coordinator does not reply in time,
    /// [`RtError::Shutdown`] if the connection failed; over TCP, a
    /// coordinator that stays unreachable past the session timeout
    /// surfaces as [`RtError::Unreachable`] naming the address.
    pub fn begin(&mut self) -> Result<(), RtError> {
        let started = Instant::now();
        let msg = self.client.start();
        match self.retry_round_trip(msg, |m| matches!(m, WrenMsg::StartTxResp { .. })) {
            Ok(resp) => {
                self.client.on_start_resp(resp);
                if let Some(m) = &self.metrics {
                    m.begin_micros.record(started.elapsed().as_micros() as u64);
                }
                Ok(())
            }
            Err(e) => Err(self.fail_op(e)),
        }
    }

    /// Reads a set of keys within the active transaction (the paper's
    /// multi-key `READ`). Values come from the write-set, read-set,
    /// client-side cache or the servers — never blocking server-side.
    ///
    /// # Errors
    ///
    /// Over TCP this retries transparently across coordinator failover
    /// (reads are idempotent — see [`Self::begin`]); the response is
    /// tag-matched to the transaction, so a stale reply from an earlier
    /// request can never be adopted.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if the coordinator does not reply in time,
    /// [`RtError::Shutdown`] if the connection failed. Over TCP,
    /// [`RtError::Unreachable`] if the coordinator stayed unreachable
    /// past the session timeout, and [`RtError::TooLarge`] if more than
    /// 512 keys need a server fetch in one call (the transport bounds
    /// response sizes).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn read(&mut self, keys: &[Key]) -> Result<Vec<(Key, Option<Value>)>, RtError> {
        let started = Instant::now();
        let outcome = self.client.read(keys);
        let mut results = outcome.local;
        if let Some(req) = outcome.request {
            let WrenMsg::TxReadReq { tx, .. } = &req else {
                unreachable!("WrenClient::read requests with TxReadReq");
            };
            let tx = *tx;
            let resp = self
                .retry_round_trip(
                    req,
                    move |m| matches!(m, WrenMsg::TxReadResp { tx: rt, .. } if *rt == tx),
                )
                .map_err(|e| self.fail_op(e))?;
            results.extend(self.client.on_read_resp(resp));
        }
        if let Some(m) = &self.metrics {
            m.read_micros.record(started.elapsed().as_micros() as u64);
        }
        // Return in the caller's key order.
        let mut ordered = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(pos) = results.iter().position(|(rk, _)| rk == k) {
                ordered.push(results[pos].clone());
            }
        }
        Ok(ordered)
    }

    /// Reads a single key.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if the coordinator does not reply in time,
    /// [`RtError::Shutdown`] if the connection failed; over TCP, a
    /// coordinator address that refuses connections beyond the dial's
    /// bounded retries surfaces as [`RtError::Unreachable`] naming the
    /// address.
    pub fn read_one(&mut self, key: Key) -> Result<Option<Value>, RtError> {
        Ok(self.read(&[key])?.pop().and_then(|(_, v)| v))
    }

    /// Buffers writes in the transaction's write-set (the paper's
    /// multi-key `WRITE`).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn write_many<I: IntoIterator<Item = (Key, Value)>>(&mut self, kvs: I) {
        self.client.write(kvs);
    }

    /// Buffers a single write.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn write(&mut self, key: Key, value: Value) {
        self.client.write([(key, value)]);
    }

    /// Moves this session to a coordinator in another DC (the paper's
    /// §II-A footnote-1 extension), blocking until the new DC has
    /// installed everything the session has seen or written. Returns the
    /// number of probe transactions it took. Over TCP, this dials the
    /// new coordinator's listener.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if a probe gets no reply, or if the new DC
    /// does not catch up within the session timeout.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is active or `coordinator` is invalid.
    pub fn migrate(&mut self, coordinator: ServerId) -> Result<u32, RtError> {
        self.client.migrate_to(coordinator);
        let timeout = match &mut self.link {
            Link::Channel { timeout, .. } => *timeout,
            Link::Tcp(link) => {
                // Helloing the new coordinator severs this client's old
                // registration cluster-side; drop every cached conn so
                // a later migration back redials instead of hitting the
                // dead socket.
                link.reset();
                link.timeout()
            }
        };
        let deadline = std::time::Instant::now() + timeout;
        let mut probes = 0;
        loop {
            probes += 1;
            let msg = self.client.start();
            let resp = self.round_trip(msg)?;
            self.client.on_start_resp(resp);
            // Tear the probe transaction down either way.
            let msg = self.client.commit();
            let resp = self.round_trip(msg)?;
            let _ = self.client.on_commit_resp(resp);
            if self.client.migration_ready() {
                return Ok(probes);
            }
            if std::time::Instant::now() > deadline {
                return Err(RtError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Commits the transaction, returning its commit timestamp (zero for
    /// a read-only transaction).
    ///
    /// Commits are **never retried**: a commit is not idempotent, and a
    /// request that died with its coordinator may or may not have been
    /// applied. An error here means the outcome is unknown — the
    /// transaction is abandoned client-side and the caller decides
    /// whether to re-issue it as a new transaction. The one exception is
    /// [`RtError::Aborted`]: the coordinator replied with an explicit
    /// abort verdict (its 2PC round was left in doubt by a cohort
    /// crash), so the outcome is *known* — nothing was applied — and the
    /// caller may safely re-issue the transaction.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if the coordinator does not reply in time,
    /// [`RtError::Shutdown`] if the connection failed,
    /// [`RtError::Aborted`] if the coordinator explicitly aborted the
    /// in-doubt transaction; over TCP, a coordinator address that
    /// refuses connections beyond the dial's retry budget surfaces as
    /// [`RtError::Unreachable`] naming the address.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn commit(&mut self) -> Result<Timestamp, RtError> {
        let started = Instant::now();
        let msg = self.client.commit();
        let WrenMsg::CommitReq { tx, writes, .. } = &msg else {
            unreachable!("WrenClient::commit requests with CommitReq");
        };
        let tx = *tx;
        // A zero commit timestamp is normal for a read-only transaction
        // but is the coordinator's explicit abort verdict for one that
        // shipped writes — remember which we sent.
        let wrote = !writes.is_empty();
        match self.round_trip(msg) {
            Ok(WrenMsg::CommitResp { tx: rt, ct }) if rt == tx => {
                if wrote && ct == Timestamp::ZERO {
                    // The coordinator aborted the in-doubt round and said
                    // so; the transaction is over, the link is fine.
                    self.client.abort();
                    if let Some(m) = &self.metrics {
                        m.tx_aborted.inc();
                    }
                    return Err(RtError::Aborted);
                }
                let ct = self.client.on_commit_resp(WrenMsg::CommitResp { tx: rt, ct });
                if let Some(m) = &self.metrics {
                    m.commit_micros.record(started.elapsed().as_micros() as u64);
                }
                Ok(ct)
            }
            // A response that is not ours (stale from a timed-out
            // earlier request): the pairing is lost, same as a dead
            // connection.
            Ok(_) => Err(self.fail_op(RtError::Shutdown)),
            Err(e) => Err(self.fail_op(e)),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        match &self.link {
            Link::Channel { router, .. } => router.unregister_client(self.client.id()),
            // TCP: dropping the sockets closes the connections; the
            // server side unregisters on EOF.
            Link::Tcp(_) => {}
        }
    }
}
