use std::fmt;

/// Errors surfaced by the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// No reply arrived within the session's timeout — the cluster is
    /// shut down or overloaded.
    Timeout,
    /// The cluster has been shut down.
    Shutdown,
    /// The request exceeds the TCP transport's maximum frame size
    /// (`wren_protocol::frame::MAX_FRAME_LEN`); shrink the operation.
    TooLarge,
    /// The named partition server refused connections even after the
    /// dial's bounded retries — it is down, not yet listening, or the
    /// address is wrong. Carries the unreachable address so a
    /// misconfigured or half-started cluster is diagnosable from the
    /// error alone.
    Unreachable(std::net::SocketAddr),
    /// The coordinator explicitly aborted the commit: its 2PC round was
    /// left in doubt (a cohort died mid-prepare) past the cluster's
    /// [`tx_abort_timeout`](crate::ClusterBuilder::tx_abort_timeout).
    /// Unlike [`Timeout`](Self::Timeout), the outcome is *known* —
    /// nothing was applied — so the caller may safely re-issue the
    /// transaction.
    Aborted,
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Timeout => write!(f, "timed out waiting for a server reply"),
            RtError::Shutdown => write!(f, "cluster is shut down"),
            RtError::TooLarge => write!(f, "request exceeds the transport's frame limit"),
            RtError::Unreachable(addr) => {
                write!(f, "partition server {addr} refused connections (after retries)")
            }
            RtError::Aborted => {
                write!(f, "coordinator aborted the in-doubt transaction (nothing applied)")
            }
        }
    }
}

impl std::error::Error for RtError {}
