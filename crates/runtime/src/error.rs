use std::fmt;

/// Errors surfaced by the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// No reply arrived within the session's timeout — the cluster is
    /// shut down or overloaded.
    Timeout,
    /// The cluster has been shut down.
    Shutdown,
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Timeout => write!(f, "timed out waiting for a server reply"),
            RtError::Shutdown => write!(f, "cluster is shut down"),
        }
    }
}

impl std::error::Error for RtError {}
