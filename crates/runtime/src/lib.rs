//! Threaded cluster runtime for the Wren reproduction.
//!
//! While `wren-harness` drives the protocol state machines on a
//! deterministic simulator (for the paper's figures), this crate runs the
//! **same state machines on real OS threads**: one thread per partition
//! server, crossbeam channels as the lossless FIFO transport, wall-clock
//! tick scheduling. It demonstrates that the library is a usable data
//! store, and it is what the runnable examples build on.
//!
//! * [`ClusterBuilder`] / [`Cluster`] — spawn an `m` DC × `n` partition
//!   cluster in-process;
//! * [`Session`] — the paper's client API (`START` / `READ` / `WRITE` /
//!   `COMMIT`) as blocking calls, with CANToR's client-side cache giving
//!   read-your-writes over the lagging stable snapshot.
//!
//! # Example
//!
//! ```
//! use wren_rt::ClusterBuilder;
//! use wren_protocol::Key;
//! use bytes::Bytes;
//!
//! let cluster = ClusterBuilder::new().dcs(2).partitions(2).build();
//! let mut alice = cluster.session(0); // DC 0
//! alice.begin().unwrap();
//! alice.write(Key(7), Bytes::from_static(b"v1"));
//! alice.commit().unwrap();
//! // Alice sees her write immediately (client-side cache)...
//! alice.begin().unwrap();
//! assert_eq!(alice.read_one(Key(7)).unwrap(), Some(Bytes::from_static(b"v1")));
//! alice.commit().unwrap();
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod error;
mod session;

pub use cluster::{Cluster, ClusterBuilder};
pub use error::RtError;
pub use session::Session;
