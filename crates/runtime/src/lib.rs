//! Threaded cluster runtime for the Wren reproduction.
//!
//! While `wren-harness` drives the protocol state machines on a
//! deterministic simulator (for the paper's figures), this crate runs the
//! **same state machines on real OS threads** with a **parallel read
//! engine** per partition: a writer thread owns the mutating protocol
//! (commits, replication, gossip, GC) while a pool of read workers
//! answers read slices concurrently, straight from the partition's
//! stripe-locked store — Wren's nonblocking reads made thread-level
//! nonblocking. Crossbeam channels are the lossless FIFO transport and
//! ticks follow the wall clock. It demonstrates that the library is a
//! usable data store, and it is what the runnable examples build on.
//!
//! * [`ClusterBuilder`] / [`Cluster`] — spawn an `m` DC × `n` partition
//!   cluster in-process ([`ClusterBuilder::read_workers`] sizes each
//!   partition's read pool);
//! * [`Session`] — the paper's client API (`START` / `READ` / `WRITE` /
//!   `COMMIT`) as blocking calls, with CANToR's client-side cache giving
//!   read-your-writes over the lagging stable snapshot;
//! * [`ClusterBuilder::tcp`] — the same engines behind **real sockets**:
//!   one listener per partition, length-prefixed framed sessions
//!   (`wren-net`), bounded per-connection send queues so slow clients
//!   cannot stall a partition, and [`Session::connect_tcp`] to join
//!   from another process knowing only [`Cluster::server_addrs`]. All
//!   sockets are served by a fixed pool of epoll reactor threads
//!   ([`ClusterBuilder::reactor_threads`]) — fabric threads are
//!   O(reactor_threads + partitions), not O(connections);
//!   [`ClusterBuilder::tcp_threaded`] keeps the two-threads-per-
//!   connection fabric for comparison;
//! * [`ClusterBuilder::durable`] — per-partition write-ahead logging
//!   and checkpoints: each engine logs its commits, replication applies
//!   and stable-bound advances (group-committed per
//!   [`FsyncPolicy`](ClusterBuilder::fsync) before any response leaves
//!   the partition), rotates the log behind periodic checkpoints, and
//!   recovers on boot by replaying the newest checkpoint + log tail.
//!   [`Cluster::kill_partition`] / [`Cluster::restart_partition`]
//!   exercise the crash path end to end: an abrupt kill loses exactly
//!   what the fsync policy permits, and a restarted partition catches
//!   up from its sibling replicas before serving as if it never left.
//!   Over TCP the kill is real: the victim's listener closes and every
//!   one of its sockets is torn down, peers park the dead link behind
//!   jittered exponential backoff and re-dial on demand, and sessions
//!   transparently reconnect and retry idempotent operations
//!   (commits are never re-sent);
//! * [`ClusterBuilder::fault_plan`] — a seeded, replayable
//!   [`FaultPlan`] underneath either TCP fabric: drop / duplicate /
//!   delay / reorder server-to-server frames, refuse dials, sever
//!   links or partition the peer set — the substrate for the chaos
//!   failover oracle;
//! * [`Cluster::metrics`] — the whole stack is instrumented with
//!   `wren-obs` (lock-free counters and mergeable log-linear
//!   histograms): commit-stage / WAL / read-slice / replication /
//!   visibility-lag latencies per partition engine, socket-boundary
//!   counters in both TCP fabrics, and session-op latencies, merged
//!   into one [`MetricsSnapshot`] (diffable, Prometheus-renderable;
//!   [`ClusterBuilder::metrics_every`] logs interval deltas). Each
//!   partition also keeps a tx-lifecycle trace ring
//!   ([`Cluster::dump_traces`]) — the post-mortem for chaos runs.
//!
//! # Example
//!
//! ```
//! use wren_rt::ClusterBuilder;
//! use wren_protocol::Key;
//! use bytes::Bytes;
//!
//! let cluster = ClusterBuilder::new().dcs(2).partitions(2).build();
//! let mut alice = cluster.session(0); // DC 0
//! alice.begin().unwrap();
//! alice.write(Key(7), Bytes::from_static(b"v1"));
//! alice.commit().unwrap();
//! // Alice sees her write immediately (client-side cache)...
//! alice.begin().unwrap();
//! assert_eq!(alice.read_one(Key(7)).unwrap(), Some(Bytes::from_static(b"v1")));
//! alice.commit().unwrap();
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod engine;
mod error;
mod metrics;
mod reactor_fabric;
mod session;
mod tcp;

pub use cluster::{Cluster, ClusterBuilder};
pub use error::RtError;
pub use session::Session;
pub use wren_core::{FsyncPolicy, ServerTrace, TxEvent};
pub use wren_net::fault::{FaultPlan, FaultStats};
pub use wren_net::Backend;
pub use wren_obs::MetricsSnapshot;
