//! Runtime-layer instrumentation: fabric and session metric handles,
//! plus the cluster's merged-snapshot plumbing.
//!
//! The per-partition protocol metrics live inside each
//! [`WrenServer`](wren_core::WrenServer) (see `wren_core::metrics`);
//! this module adds the two layers the runtime itself owns:
//!
//! * [`FabricMetrics`] — what the TCP fabrics see at the socket
//!   boundary: frames and bytes in/out, connections accepted and
//!   severed, dial-backoff parks, the outbox-depth high-water mark,
//!   the frame-ceiling drop counter and the frames-per-`writev`
//!   histogram of the vectored drains. Both fabrics (threaded and
//!   reactor) record into the same metric names, so comparing the two
//!   topologies is a diff of two snapshots.
//! * [`SessionMetrics`] — client-side operation latencies (begin /
//!   read / commit round trips) and the explicit-abort counter, shared
//!   by every session the cluster hands out.
//!
//! [`Cluster::metrics`](crate::Cluster::metrics) merges the partition
//! registries with these two (and the fault plan's, if any) into one
//! [`MetricsSnapshot`](wren_obs::MetricsSnapshot).

use wren_obs::{Counter, Gauge, Histogram, Registry};

/// Socket-boundary metric handles, one set per TCP fabric.
#[derive(Debug, Clone)]
pub(crate) struct FabricMetrics {
    registry: Registry,
    /// Frames enqueued onto outbound server→server links.
    pub frames_out: Counter,
    /// Payload bytes of those frames.
    pub bytes_out: Counter,
    /// Frames decoded off accepted connections (hellos excluded).
    pub frames_in: Counter,
    /// Payload bytes of those frames.
    pub bytes_in: Counter,
    /// Connections accepted by the fabric's listeners.
    pub conns_accepted: Counter,
    /// Accepted connections torn down (EOF, error, kill, shutdown).
    pub conns_severed: Counter,
    /// Refused peer dials that parked a link behind its backoff gate.
    pub dial_backoff_parks: Counter,
    /// Server→server messages refused for exceeding the frame ceiling
    /// (0 on any healthy run; the loopback oracles assert it).
    pub dropped_frames: Counter,
    /// High-water mark of queued (unwritten) bytes across outboxes.
    pub outbox_depth_bytes: Gauge,
    /// Frames retired per `writev` call by the vectored drains (both
    /// fabrics); a mean above 1 under pipelined load is the syscall
    /// batching working.
    pub writev_frames_per_call: Histogram,
    /// SQEs submitted per `io_uring_enter` by the uring backend's
    /// event loops; a mean above 1 under pipelined load is the
    /// submission batching working. Empty on epoll clusters.
    pub uring_sqe_per_enter: Histogram,
}

impl FabricMetrics {
    pub(crate) fn new() -> FabricMetrics {
        let registry = Registry::new();
        FabricMetrics {
            frames_out: registry.counter("tcp_frames_out"),
            bytes_out: registry.counter("tcp_bytes_out"),
            frames_in: registry.counter("tcp_frames_in"),
            bytes_in: registry.counter("tcp_bytes_in"),
            conns_accepted: registry.counter("tcp_conns_accepted"),
            conns_severed: registry.counter("tcp_conns_severed"),
            dial_backoff_parks: registry.counter("tcp_dial_backoff_parks"),
            dropped_frames: registry.counter("tcp_dropped_frames"),
            outbox_depth_bytes: registry.gauge("tcp_outbox_depth_bytes"),
            writev_frames_per_call: registry.histogram("fabric_writev_frames_per_call"),
            uring_sqe_per_enter: registry.histogram("uring_sqe_per_enter"),
            registry,
        }
    }

    pub(crate) fn registry(&self) -> Registry {
        self.registry.clone()
    }
}

/// Client-side operation metric handles, shared by every session a
/// cluster creates ([`Cluster::session`](crate::Cluster::session)).
#[derive(Debug, Clone)]
pub(crate) struct SessionMetrics {
    registry: Registry,
    /// `begin()` round-trip latency in µs.
    pub begin_micros: Histogram,
    /// `read()` latency in µs (cache-only reads included).
    pub read_micros: Histogram,
    /// `commit()` round-trip latency in µs.
    pub commit_micros: Histogram,
    /// Commits the coordinator explicitly aborted (in-doubt 2PC).
    pub tx_aborted: Counter,
}

impl SessionMetrics {
    pub(crate) fn new() -> SessionMetrics {
        let registry = Registry::new();
        SessionMetrics {
            begin_micros: registry.histogram("session_begin_micros"),
            read_micros: registry.histogram("session_read_micros"),
            commit_micros: registry.histogram("session_commit_micros"),
            tx_aborted: registry.counter("session_tx_aborted"),
            registry,
        }
    }

    pub(crate) fn registry(&self) -> Registry {
        self.registry.clone()
    }
}
