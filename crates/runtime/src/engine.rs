//! The parallel read engine: one writer thread plus a pool of read
//! workers per partition.
//!
//! Wren's protocol guarantee is that read-only transactions never block
//! — but through PR 2 the *runtime* still funneled every `SliceReq`
//! through the partition's single protocol thread, so reads queued
//! behind commits, replication applies, gossip and GC. This module makes
//! the guarantee thread-level:
//!
//! * the **writer thread** owns the [`WrenServer`] state machine and all
//!   mutating protocol handling — start/read fan-out, 2PC, replication,
//!   gossip, GC ticks ([`server_loop`]);
//! * **read workers** ([`read_worker`]) answer `SliceReq` straight from
//!   storage through a [`SliceReader`] — an `Arc` of the partition's
//!   stripe-locked `ConcurrentShardedStore` plus the atomic slice
//!   counters — never touching the writer's state;
//! * the [`Router`](crate::cluster::Router) diverts `SliceReq` messages
//!   onto a per-partition MPMC channel the workers share; every other
//!   message still lands in the writer's inbox.
//!
//! Why this is safe: a slice request names a snapshot `(lt, rt)` that is
//! *stable* — every version inside it is already installed at every
//! partition of the DC (the paper's central invariant, §IV-B). A
//! concurrent writer can only be installing versions newer than any
//! stable snapshot, so a worker either does not see them (they are above
//! its visibility ceiling) or sees them fully spliced (the store's
//! stripe locks rule out torn state). Stable-time watermarks flow
//! through the store's atomics in both directions: workers observe the
//! writer's published `lst`/`rst`, and a `SliceReq`'s carried stable
//! times are published by the worker exactly as the writer path would.
//!
//! The writer's **GC tick cannot sweep a queued slice's versions**
//! either, no matter how far the read channel lags: the GC watermark is
//! the DC-wide minimum over every partition's *oldest active
//! transaction* snapshot (`GcGossip`), and a `SliceReq` only exists
//! while its coordinator still holds the transaction's context — whose
//! `(lt, rt)` is exactly the queued read's bound. The coordinator
//! therefore pins the watermark at or below every in-flight read, and a
//! stale gossiped contribution only errs *lower* (safer). The pin lives
//! at the coordinator, which is why the workers need no GC bookkeeping
//! of their own.
//!
//! Shutdown is deterministic: the cluster queues one poison job per
//! worker (behind any pending slices, which are still served), then
//! [`PartitionEngine::join`] joins the workers before the writer — no
//! detached reader can outlive the engine (and the store itself is kept
//! alive by the workers' `Arc`s regardless).

use crate::cluster::{Router, RtMsg};
use crossbeam_channel::{Receiver, RecvTimeoutError};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wren_clock::{SkewedClock, Timestamp};
use wren_core::{ServerStats, SliceReader, WrenConfig, WrenServer};
use wren_protocol::{Dest, Key, Outgoing, ServerId, TxId, WrenMsg};
use wren_core::FsyncPolicy;

/// What travels on a partition's read channel: a slice request peeled
/// out of the protocol stream, or a poison pill stopping one worker.
pub(crate) enum ReadJob {
    /// Serve `keys` at snapshot `(lt, rt)` and answer `coordinator`.
    Slice {
        /// The coordinator awaiting the `SliceResp`.
        coordinator: ServerId,
        /// The transaction the slice belongs to.
        tx: TxId,
        /// Local stable snapshot time.
        lt: Timestamp,
        /// Remote stable snapshot time.
        rt: Timestamp,
        /// Keys this partition owns.
        keys: Vec<Key>,
    },
    /// Stop the worker that receives this.
    Shutdown,
}

/// One partition's running engine: the writer thread handle, the read
/// worker handles, and a reader handle kept so [`join`](Self::join) can
/// take the slice counters *after* every worker has finished. The
/// metric registry and trace ring are cloned out before the state
/// machine moves into the writer thread, so the cluster can snapshot a
/// live partition (and dump its trace post-mortem) without touching it.
pub(crate) struct PartitionEngine {
    writer: JoinHandle<ServerStats>,
    workers: Vec<JoinHandle<()>>,
    reader: SliceReader,
    registry: wren_obs::Registry,
    trace: wren_core::ServerTrace,
}

/// Tick intervals for a writer loop: replication, gossip, optional GC,
/// optional checkpoint rotation.
pub(crate) type Ticks = (Duration, Duration, Option<Duration>, Option<Duration>);

/// How a durable partition engine opens (or re-opens) its log.
pub(crate) struct Durability {
    /// The partition's durability directory (`wal.N` / `ckpt.N` pairs).
    pub dir: PathBuf,
    /// Group-commit fsync policy.
    pub policy: FsyncPolicy,
    /// Whether to run post-restart catch-up: ask the sibling replicas to
    /// re-ship what died in the crashed process's inbox. `false` on a
    /// cluster-wide cold start (nothing was lost), `true` on
    /// [`Cluster::restart_partition`](crate::Cluster::restart_partition).
    pub rejoin: bool,
}

impl PartitionEngine {
    /// Spawns the writer thread and the read workers for the partition
    /// `id`. `read_pool` carries the receiving side of the channel the
    /// router diverts this partition's `SliceReq`s to, plus the pool
    /// size; `None` means the writer serves reads inline as before.
    #[allow(clippy::too_many_arguments)] // internal: one call site per mode
    pub(crate) fn launch(
        id: ServerId,
        cfg: WrenConfig,
        epoch: Instant,
        rx: Receiver<RtMsg>,
        read_pool: Option<(Receiver<ReadJob>, usize)>,
        router: Arc<Router>,
        ticks: Ticks,
        durable: Option<Durability>,
        tx_abort_timeout: Duration,
    ) -> PartitionEngine {
        // Built on the spawning thread so reader handles can be taken
        // before the state machine moves into the writer thread — and so
        // recovery (checkpoint load + WAL replay) completes before any
        // traffic can reach the partition.
        let rejoin = durable.as_ref().is_some_and(|d| d.rejoin);
        let mut server = match &durable {
            Some(d) => WrenServer::recover(id, cfg, SkewedClock::perfect(), &d.dir, d.policy)
                .expect("durable partition recovery"),
            None => WrenServer::new(id, cfg, SkewedClock::perfect()),
        };
        server.set_tx_abort_timeout(tx_abort_timeout.as_micros() as u64);
        let registry = server.registry();
        let trace = server.trace();
        let reader = server.reader();
        let mut workers = Vec::new();
        if let Some((read_rx, n_workers)) = read_pool {
            workers.reserve(n_workers);
            for _ in 0..n_workers {
                let reader = server.reader();
                let rx = read_rx.clone();
                let router = Arc::clone(&router);
                workers.push(std::thread::spawn(move || {
                    read_worker(id, reader, rx, router)
                }));
            }
        }
        let writer =
            std::thread::spawn(move || server_loop(id, server, epoch, rx, router, ticks, rejoin));
        PartitionEngine {
            writer,
            workers,
            reader,
            registry,
            trace,
        }
    }

    /// The partition's metric registry (live — snapshot any time).
    pub(crate) fn registry(&self) -> wren_obs::Registry {
        self.registry.clone()
    }

    /// The partition's tx-lifecycle trace ring (live handle).
    pub(crate) fn trace(&self) -> wren_core::ServerTrace {
        self.trace.clone()
    }

    /// Joins the engine's threads deterministically — workers first
    /// (they drain any queued slices, then hit the poison jobs
    /// [`Cluster::shutdown`](crate::Cluster::shutdown) queued, one per
    /// worker), then the writer — and returns the writer's final
    /// statistics with the slice counters re-read *after* the worker
    /// joins: the writer may snapshot its stats while a worker is still
    /// mid-slice, so only a post-join load of the shared atomics counts
    /// every served slice.
    pub(crate) fn join(mut self) -> ServerStats {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let mut stats = self.writer.join().unwrap_or_default();
        stats.slices_served = self.reader.slices_served();
        stats.keys_read = self.reader.keys_read();
        stats
    }
}

/// A read worker: serves queued slice requests straight from storage
/// until it receives a poison pill (or every sender disappears).
///
/// The loop is intentionally tiny — receive, read at the stable
/// snapshot, reply — because everything protocol-shaped already
/// happened: the coordinator chose the snapshot, and stability
/// guarantees the answer is fully installed here.
fn read_worker(id: ServerId, reader: SliceReader, rx: Receiver<ReadJob>, router: Arc<Router>) {
    while let Ok(job) = rx.recv() {
        match job {
            ReadJob::Slice {
                coordinator,
                tx,
                lt,
                rt,
                keys,
            } => {
                let resp = reader.serve(tx, lt, rt, &keys);
                router.send_to_server(Dest::Server(id), coordinator, resp);
            }
            ReadJob::Shutdown => return,
        }
    }
}

/// Upper bound on how many queued messages one wake-up drains before
/// dispatching responses and re-checking the tick schedule. Bounded so a
/// flooded inbox cannot starve replication/gossip ticks indefinitely.
const MAX_DRAIN: usize = 64;

/// The writer thread: drains the inbox, fires ticks on schedule.
///
/// A wake-up consumes the whole pending burst (up to [`MAX_DRAIN`]) in
/// one go rather than one message per loop turn: replication batches
/// that queued up while the thread slept are applied back to back —
/// each through the store's per-stripe batched splice — before any
/// clock reads or tick checks are paid again. With read workers
/// attached, `SliceReq`s never reach this loop at all.
///
/// **Durability discipline**: every `router.dispatch` is preceded by a
/// [`WrenServer::log_commit_point`], so by the time any effect of a
/// message burst or tick leaves this thread — a `CommitResp` to a
/// client, a replication batch to a sibling — the WAL records behind it
/// are flushed as far as the fsync policy promises. Under
/// `FsyncPolicy::Always` an acknowledged write is therefore on disk
/// before the acknowledgement exists; under `FsyncPolicy::Window` the
/// same holds with one fsync amortized across the window — responses
/// are *held* on this thread while the window is open and dispatched
/// only after its fsync lands (the deadline joins the tick schedule, so
/// a held response waits at most `max_delay`).
///
/// Shutdown comes in two shapes, mirroring the crash model:
/// * `RtMsg::Shutdown` is graceful — the remaining inbox is drained and
///   handled (messages queued behind the pill are real traffic from
///   still-live peers, not noise), a final commit point flushes, the
///   responses go out, and the log is sealed.
/// * `RtMsg::Kill` is abrupt — return *immediately*, dropping undrained
///   inbox messages, any undispatched responses, and whatever WAL bytes
///   the fsync policy left buffered. This is the kill-and-restart
///   oracle's process-crash stand-in.
pub(crate) fn server_loop(
    id: ServerId,
    mut server: WrenServer,
    epoch: Instant,
    rx: Receiver<RtMsg>,
    router: Arc<Router>,
    (repl, gossip, gc, ckpt): Ticks,
    rejoin: bool,
) -> ServerStats {
    let mut next_repl = epoch + repl;
    let mut next_gossip = epoch + gossip;
    let mut next_gc = gc.map(|d| epoch + d);
    let mut next_ckpt = ckpt.map(|d| Instant::now() + d);
    let mut out = Vec::new();
    // Responses whose WAL records sit in an open group-commit window
    // (`FsyncPolicy::Window`): held here until the window's fsync lands,
    // dropped on `Kill` — which is correct, because unacknowledged is
    // exactly what unsynced must remain.
    let mut held = Vec::new();

    if rejoin {
        // First thing on the wire after a restart: ask every sibling
        // replica to re-ship what was lost with the dead process's
        // inbox, before any new traffic interleaves.
        server.begin_rejoin(epoch.elapsed().as_micros() as u64, &mut out);
        commit_and_dispatch(id, &mut server, &router, &mut out, &mut held);
    }

    loop {
        let now_inst = Instant::now();
        let mut next_tick = next_repl.min(next_gossip);
        if let Some(g) = next_gc {
            next_tick = next_tick.min(g);
        }
        if let Some(c) = next_ckpt {
            next_tick = next_tick.min(c);
        }
        if let Some(d) = server.log_sync_deadline() {
            // An open fsync window wakes the loop like any other tick:
            // held responses must not outwait `max_delay`.
            next_tick = next_tick.min(d);
        }
        let wait = next_tick.saturating_duration_since(now_inst);

        match rx.recv_timeout(wait) {
            Ok(RtMsg::Proto { src, msg }) => {
                let now = epoch.elapsed().as_micros() as u64;
                server.handle(src, msg, now, &mut out);
                // Drain the burst that accumulated while we slept.
                for _ in 1..MAX_DRAIN {
                    match rx.try_recv() {
                        Some(RtMsg::Proto { src, msg }) => {
                            server.handle(src, msg, now, &mut out);
                        }
                        Some(RtMsg::Batch { src, msgs }) => {
                            for msg in msgs {
                                server.handle(src, msg, now, &mut out);
                            }
                        }
                        Some(RtMsg::PeerLinkLost { peer }) => {
                            server.on_peer_link_lost(peer, now, &mut out);
                        }
                        Some(RtMsg::Shutdown) => {
                            return finish(id, server, epoch, &rx, &router, out, held);
                        }
                        Some(RtMsg::Kill) => return server.stats(),
                        None => break,
                    }
                }
                commit_and_dispatch(id, &mut server, &router, &mut out, &mut held);
            }
            Ok(RtMsg::Batch { src, msgs }) => {
                let now = epoch.elapsed().as_micros() as u64;
                for msg in msgs {
                    server.handle(src, msg, now, &mut out);
                }
                commit_and_dispatch(id, &mut server, &router, &mut out, &mut held);
            }
            Ok(RtMsg::PeerLinkLost { peer }) => {
                let now = epoch.elapsed().as_micros() as u64;
                server.on_peer_link_lost(peer, now, &mut out);
                commit_and_dispatch(id, &mut server, &router, &mut out, &mut held);
            }
            Ok(RtMsg::Shutdown) => return finish(id, server, epoch, &rx, &router, out, held),
            Ok(RtMsg::Kill) => return server.stats(),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return server.stats(),
        }

        let now_inst = Instant::now();
        let now = epoch.elapsed().as_micros() as u64;
        if now_inst >= next_repl {
            server.on_replication_tick(now, &mut out);
            commit_and_dispatch(id, &mut server, &router, &mut out, &mut held);
            next_repl = now_inst + repl;
        }
        if now_inst >= next_gossip {
            server.on_gossip_tick(now, &mut out);
            commit_and_dispatch(id, &mut server, &router, &mut out, &mut held);
            next_gossip = now_inst + gossip;
        }
        if let Some(g) = next_gc {
            if now_inst >= g {
                server.on_gc_tick(now, &mut out);
                commit_and_dispatch(id, &mut server, &router, &mut out, &mut held);
                next_gc = Some(now_inst + gc.expect("gc enabled"));
            }
        }
        if let Some(c) = next_ckpt {
            if now_inst >= c {
                server
                    .write_checkpoint()
                    .expect("checkpoint rotation failed");
                next_ckpt = Some(now_inst + ckpt.expect("checkpoint enabled"));
            }
        }
        if server.log_sync_deadline().is_some_and(|d| now_inst >= d) {
            // The group-commit window expired: fsync now and release
            // every response that was waiting on it.
            server.sync_log().expect("wal window sync failed");
            router.dispatch(id, std::mem::take(&mut held));
        }
    }
}

/// Flush the WAL to the fsync policy's promise, then let the responses
/// leave the thread. The order is the whole point: dispatch is the
/// moment effects become observable, so the flush must come first.
///
/// Under `FsyncPolicy::Window` the commit point may leave an fsync
/// *pending* (deadline open): the burst's responses then move to `held`
/// instead of dispatching — they leave when the window closes, either
/// because a later commit point crosses the byte threshold (the
/// deadline reads `None` here and everything held goes out, oldest
/// first) or because the engine's tick loop fires the deadline.
fn commit_and_dispatch(
    id: ServerId,
    server: &mut WrenServer,
    router: &Arc<Router>,
    out: &mut Vec<Outgoing<WrenMsg>>,
    held: &mut Vec<Outgoing<WrenMsg>>,
) {
    server.log_commit_point().expect("wal commit point failed");
    if server.log_sync_deadline().is_some() {
        held.append(out);
    } else if held.is_empty() {
        router.dispatch(id, std::mem::take(out));
    } else {
        held.append(out);
        router.dispatch(id, std::mem::take(held));
    }
}

/// Graceful shutdown: handle everything still queued behind the poison
/// pill (peers may have sent real traffic before they themselves were
/// told to stop), flush, answer, and seal the log so the tail is on
/// disk regardless of fsync policy — the seal also closes any open
/// group-commit window, so held responses dispatch here over a fully
/// synced log. A `Kill` found while draining wins — abrupt beats
/// graceful (held responses drop with everything else).
fn finish(
    id: ServerId,
    mut server: WrenServer,
    epoch: Instant,
    rx: &Receiver<RtMsg>,
    router: &Arc<Router>,
    mut out: Vec<Outgoing<WrenMsg>>,
    mut held: Vec<Outgoing<WrenMsg>>,
) -> ServerStats {
    let now = epoch.elapsed().as_micros() as u64;
    while let Some(m) = rx.try_recv() {
        match m {
            RtMsg::Proto { src, msg } => server.handle(src, msg, now, &mut out),
            RtMsg::Batch { src, msgs } => {
                for msg in msgs {
                    server.handle(src, msg, now, &mut out);
                }
            }
            RtMsg::PeerLinkLost { peer } => server.on_peer_link_lost(peer, now, &mut out),
            RtMsg::Shutdown => {}
            RtMsg::Kill => return server.stats(),
        }
    }
    server.log_commit_point().expect("wal commit point failed");
    server.seal_log().expect("wal seal failed");
    held.append(&mut out);
    router.dispatch(id, held);
    server.stats()
}
