//! The **threaded** TCP fabric (plus the transport pieces both fabrics
//! share): the cluster's engines behind real sockets, one reader and
//! one outbox-writer thread per connection.
//!
//! This is the original, simplest-possible socket fabric, selected by
//! [`ClusterBuilder::tcp_threaded`](crate::ClusterBuilder::tcp_threaded)
//! and kept as the reference point for the epoll reactor fabric
//! ([`crate::reactor_fabric`]), which serves the identical wire
//! protocol from a fixed thread pool and is what
//! [`ClusterBuilder::tcp`](crate::ClusterBuilder::tcp) now builds. The
//! boundary rules ([`legal_from_client`], [`legal_from_server`], the
//! request/read ceilings) and the session-side [`TcpLink`] live here
//! and are shared by both.
//!
//! In channel mode every hop is a crossbeam send; in TCP mode every
//! protocol message — client↔coordinator, coordinator↔cohort,
//! replication, gossip, GC — is **encoded, framed, written to a socket,
//! read back, decoded and dispatched**, exactly as it would be between
//! machines. The engines themselves are untouched: the writer thread
//! and the read workers keep consuming from the same channels; the
//! fabric's connection reader threads feed those channels from the
//! wire, and outgoing dispatches are framed onto per-connection
//! outboxes instead of channel sends.
//!
//! Topology:
//!
//! * **One `TcpListener` + acceptor thread per partition server.** The
//!   acceptor only accepts; it never reads, so a peer that dribbles its
//!   handshake byte-by-byte wedges nothing but its own connection
//!   thread.
//! * **Per-connection reader threads.** The first frame is a
//!   [`Hello`] naming the peer; every later frame is a bare protocol
//!   message attributed to that identity and delivered into the
//!   partition's inbox (read slices divert to the read workers, as in
//!   channel mode).
//! * **Outbound links are dialed lazily**, one per (local engine,
//!   remote server) pair, and writes go through a bounded, never-
//!   blocking [`Outbox`] drained by a dedicated writer thread — a slow
//!   peer fills its own queue and is disconnected; the engine threads
//!   never block on `write(2)`.
//! * **Client connections** register their outbox under the client id
//!   at hello time, so coordinator responses find the socket without
//!   any per-message addressing bytes.
//!
//! Shutdown is idempotent and total: the fabric flags itself closing,
//! wakes every acceptor with a self-connection, shuts every registered
//! socket (waking reader threads and any blocked writes), closes every
//! outbox, and [`TcpFabric::join_threads`] then joins acceptors,
//! readers and outbox writers — no fabric thread outlives the cluster.
//!
//! **Failover.** A single partition can die and return without the rest
//! of the fabric noticing more than a dead host would show:
//! [`TcpFabric::kill_server`] marks the victim down, makes its acceptor
//! exit (dropping the listener, so the address frees for the restart
//! rebind) and severs every connection it owns — peers and sessions see
//! EOF mid-stream, exactly like `kill -9`. A peer link that then fails
//! to dial **parks**: the slot records a jittered, exponentially-
//! doubling next-attempt time ([`DIAL_BACKOFF_MIN`] →
//! [`DIAL_BACKOFF_MAX`]) and frames sent meanwhile are dropped
//! silently, as packets to a dead host are. When the accepted side of a
//! server link dies, the reader thread reports the loss to its engine
//! ([`Router::notify_link_lost`]) so a sibling replica can open a
//! catch-up window for whatever replication died in flight.
//! [`TcpFabric::revive_server`] clears the down flag and unparks every
//! link toward the reborn server; a fresh listener (bound with
//! `SO_REUSEADDR` on the original address) is handed back to
//! [`spawn_acceptors`].
//!
//! **Fault injection.** When the cluster was built with a
//! [`FaultPlan`], every server→server frame consults it just after
//! framing ([`wren_net::fault`] has the verdict semantics: drop-and-
//! sever, duplicate, delay/reorder) and every peer dial consults
//! [`FaultPlan::allow_dial`]; a refused dial parks the link exactly
//! like a dead host. Client↔server sockets never consult the plan —
//! sessions model the paper's co-located client.

use crate::cluster::Router;
use crate::metrics::FabricMetrics;
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wren_net::{FaultPlan, FramedReader, Hello, Outbox, SendVerdict};
use wren_protocol::frame::{frame_wren, try_frame_wren};
use wren_protocol::{ClientId, Dest, ServerId, WrenMsg};

/// Cap on a server↔server link's outbox. Effectively unbounded: the
/// protocol's tick pacing flow-controls inter-server traffic, and
/// dropping replication or 2PC messages would violate the lossless-FIFO
/// link assumption the state machines are built on. (Client links are
/// the untrusted ones — they get the small, configurable cap.) Shared
/// with the reactor fabric, which keeps the same link taxonomy.
pub(crate) const SERVER_OUTBOX_BYTES: usize = usize::MAX;

/// How long shutdown waits for the self-connection that wakes an
/// acceptor thread.
const WAKE_TIMEOUT: Duration = Duration::from_millis(500);

/// First-retry backoff after a refused dial; doubles (with jitter, see
/// [`jittered`]) up to [`DIAL_BACKOFF_MAX`]. Shared by session dials
/// (inside their [`dial_retry_budget`]) and parked peer links.
///
/// [`dial_retry_budget`]: crate::ClusterBuilder::dial_retry_budget
pub(crate) const DIAL_BACKOFF_MIN: Duration = Duration::from_millis(1);

/// Backoff ceiling for refused dials: a parked peer link probes a dead
/// server's address at least every ~75 ms (50 ms × the jitter's 1.5×
/// bound), so a restarted partition is rediscovered within one such
/// round trip without a fleet of peers hammering it in lockstep.
pub(crate) const DIAL_BACKOFF_MAX: Duration = Duration::from_millis(50);

/// Multiplies `d` by a pseudo-random factor in `[0.5, 1.5)`, so links
/// parked by the same kill don't re-dial in lockstep. Deliberately
/// seedless (backoff *timing* is not part of the deterministic fault
/// plan — only frame fates are): a SplitMix64 finalizer over a
/// process-wide Weyl counter, so no RNG dependency and no shared lock.
pub(crate) fn jittered(d: Duration) -> Duration {
    static STATE: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    let mut x = STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let factor = 0.5 + (x >> 11) as f64 / (1u64 << 53) as f64;
    d.mul_f64(factor)
}

/// Ceiling on one client *request*: the frame limit minus headroom for
/// protocol amplification, so every server-side message derived from a
/// single admitted request (`PrepareReq` = `CommitReq` + 24 bytes, a
/// one-transaction `Replicate` = + 28 bytes, `SliceReq` fan-out ≤ the
/// original `TxReadReq`) is guaranteed to stay frameable. Enforced in
/// the session library ([`TcpLink::send`]) *and* mirrored at the
/// server's accepting boundary ([`legal_from_client`]), so raw peers
/// get the same bound as library clients.
const CLIENT_REQ_MAX: usize = wren_protocol::frame::MAX_FRAME_LEN - 1024;

/// Ceiling on keys per read request. Bounds *response* size, which the
/// request's own size cannot: each returned item costs at most
/// ~65 571 bytes (a 64 KiB value plus version metadata), so a response
/// to `MAX_READ_KEYS` keys tops out near 33.6 MiB — comfortably under
/// [`MAX_FRAME_LEN`](wren_protocol::frame::MAX_FRAME_LEN). Without
/// this, a ~16 KB request naming thousands of fat keys would demand an
/// unframeable reply. Enforced client-side and at the boundary, for
/// both `TxReadReq` (client conns) and `SliceReq` (server conns).
const MAX_READ_KEYS: usize = 512;

/// One outbound server→server link: the live write handle (if any) plus
/// the dial gate that parks the link between failed attempts. Generic
/// over the handle type because both fabrics keep the same link
/// taxonomy — [`Outbox`] here, `ConnHandle` in the reactor fabric.
pub(crate) struct PeerLink<T> {
    /// The live link, `None` while disconnected or parked.
    pub(crate) out: Option<T>,
    /// Earliest next dial; `None` means dial freely.
    next_attempt: Option<Instant>,
    /// Backoff the *next* failure will park for (jittered).
    backoff: Duration,
}

impl<T> Default for PeerLink<T> {
    fn default() -> Self {
        PeerLink {
            out: None,
            next_attempt: None,
            backoff: DIAL_BACKOFF_MIN,
        }
    }
}

impl<T> PeerLink<T> {
    /// Whether a dial may be attempted now. While parked, callers drop
    /// their frame instead — packets to a dead host.
    pub(crate) fn may_dial(&self) -> bool {
        self.next_attempt.is_none_or(|at| Instant::now() >= at)
    }

    /// Records a refused dial: parks the link for the current backoff
    /// (jittered) and doubles it toward [`DIAL_BACKOFF_MAX`].
    pub(crate) fn dial_failed(&mut self) {
        self.next_attempt = Some(Instant::now() + jittered(self.backoff));
        self.backoff = (self.backoff * 2).min(DIAL_BACKOFF_MAX);
    }

    /// Resets the gate after a successful dial — or eagerly, when the
    /// peer's restart makes an immediate re-dial worthwhile.
    pub(crate) fn unpark(&mut self) {
        self.next_attempt = None;
        self.backoff = DIAL_BACKOFF_MIN;
    }
}

/// One outbound link's slot. The per-slot mutex serializes dial +
/// enqueue for that (engine, peer) pair only — it preserves the pair's
/// FIFO order (one connection at a time) without making unrelated pairs
/// (or the read workers' concurrent `SliceResp`s) queue on a global
/// lock, and without ever holding the fabric-wide map lock across a
/// blocking `connect`.
type PeerSlot = Arc<Mutex<PeerLink<Outbox>>>;

/// Per-process TCP state: listener addresses, live connections, and
/// every thread the fabric has spawned.
pub(crate) struct TcpFabric {
    /// All servers' listen addresses, DC-major partition order.
    addrs: Vec<SocketAddr>,
    n_partitions: u16,
    client_outbox_bytes: usize,
    /// Outbound links, one slot per (local engine, remote server) pair.
    /// Behind an `RwLock` because steady-state sends only *look up*
    /// their slot (every read worker's `SliceResp`, every tick's
    /// replication/gossip); the write lock is taken once per pair, on
    /// first dial.
    peers: RwLock<HashMap<(ServerId, ServerId), PeerSlot>>,
    /// Response sinks for connected clients, registered at hello time.
    clients: RwLock<HashMap<ClientId, Outbox>>,
    /// Clones of every *live* accepted stream, keyed by connection id
    /// and tagged with the server that accepted it, for shutdown (and
    /// per-server kill) severing; each connection's entry is reaped
    /// when its reader exits, so a long-running cluster with session
    /// churn does not accumulate fds.
    conns: Mutex<HashMap<u64, (ServerId, TcpStream)>>,
    next_conn: AtomicU64,
    /// Acceptors, connection readers and outbox writers. Finished
    /// handles are swept opportunistically on accept.
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Socket-boundary metric handles (frames/bytes in and out,
    /// connection churn, dial parks, the frame-ceiling drop counter —
    /// 0 on any healthy run, see `send_server`). Injected faults are
    /// *not* counted under drops; the [`FaultPlan`] keeps its own
    /// stats.
    metrics: FabricMetrics,
    /// Per-server kill flags, DC-major order: a down server sends
    /// nothing, receives nothing and accepts nothing until
    /// [`Self::revive_server`].
    down: Vec<AtomicBool>,
    /// The deterministic fault plan, when the cluster injects faults.
    faults: Option<FaultPlan>,
    closing: AtomicBool,
}

impl TcpFabric {
    pub(crate) fn new(
        addrs: Vec<SocketAddr>,
        n_partitions: u16,
        client_outbox_bytes: usize,
        faults: Option<FaultPlan>,
    ) -> TcpFabric {
        let down = addrs.iter().map(|_| AtomicBool::new(false)).collect();
        TcpFabric {
            addrs,
            n_partitions,
            client_outbox_bytes,
            peers: RwLock::new(HashMap::new()),
            clients: RwLock::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            threads: Mutex::new(Vec::new()),
            metrics: FabricMetrics::new(),
            down,
            faults,
            closing: AtomicBool::new(false),
        }
    }

    /// Ships one engine-originated message to a peer server over the
    /// (lazily dialed) outbound link. Failures degrade exactly like a
    /// channel send during shutdown: the message is dropped. A parked
    /// link (peer down, dials refused) drops silently too — packets to
    /// a dead host.
    pub(crate) fn send_server(&self, src: ServerId, to: ServerId, msg: &WrenMsg) {
        // A killed process sends nothing; frames *to* a killed server
        // would only die against its closed listener.
        if self.down[src.dc_major_index(self.n_partitions)].load(Ordering::SeqCst)
            || self.down[to.dc_major_index(self.n_partitions)].load(Ordering::SeqCst)
        {
            return;
        }
        let Some(frame) = try_frame_wren(msg) else {
            // Beyond the frame ceiling, which legitimate traffic cannot
            // reach: client requests are capped with amplification
            // headroom at their own transport ([`CLIENT_REQ_MAX`]), so
            // every per-transaction server message derived from one
            // stays under the ceiling, and multi-transaction `Replicate`
            // batches share one commit timestamp (HLC ties — a handful
            // at most, not 64 MiB). Splitting such a batch here would
            // be UNSOUND: the receiver raises its replication watermark
            // to `ct` after each message, so a half-applied batch could
            // become visible as a stable — and torn — snapshot. Drop
            // instead, and make it observable.
            self.metrics.dropped_frames.inc();
            return;
        };
        // The fault plan speaks at the frame boundary: the verdict may
        // multiply the frame (duplicate, released delays) or erase it
        // (drop), and may order the link severed afterwards.
        let (frames, sever_after): (Vec<Bytes>, bool) =
            match self.faults.as_ref().map(|f| f.on_send(src, to, &frame)) {
                None | Some(SendVerdict::Pass) => (vec![frame], false),
                Some(SendVerdict::Mutate { frames, sever }) => {
                    (frames.into_iter().map(Bytes::from).collect(), sever)
                }
            };
        // Shared map lock only long enough to fetch (or, first time,
        // create) the slot; the (blocking) dial happens under the
        // slot's own lock, never the map's.
        let key = (src, to);
        // The read guard must drop before any write() — binding the
        // lookup first keeps the scrutinee temporary from holding the
        // read lock across the write arm.
        let existing = self.peers.read().get(&key).map(Arc::clone);
        let slot: PeerSlot = match existing {
            Some(slot) => slot,
            None => Arc::clone(self.peers.write().entry(key).or_default()),
        };
        let mut link = slot.lock();
        'transmit: {
            if frames.is_empty() {
                break 'transmit; // the plan dropped it: nothing to carry
            }
            if let Some(out) = link.out.as_ref() {
                if frames.iter().all(|f| out.enqueue(f.clone())) {
                    self.note_sent(&frames, out.queued_bytes());
                    break 'transmit;
                }
                // The link died (peer gone / overflow); redial below.
                link.out = None;
            }
            if self.closing.load(Ordering::SeqCst) || !link.may_dial() {
                break 'transmit;
            }
            match self.dial(src, to) {
                Ok(out) => {
                    link.unpark();
                    for f in &frames {
                        out.enqueue(f.clone());
                    }
                    self.note_sent(&frames, out.queued_bytes());
                    // Shutdown may have drained the peers map while we
                    // dialed (our slot Arc would then no longer be
                    // reachable from it); the re-check ensures the new
                    // link cannot escape severing.
                    if self.closing.load(Ordering::SeqCst) {
                        out.shutdown();
                        break 'transmit;
                    }
                    link.out = Some(out);
                }
                // Refused: park and drop the frames, like a dead host.
                Err(_) => {
                    link.dial_failed();
                    self.metrics.dial_backoff_parks.inc();
                }
            }
        }
        if sever_after {
            if let Some(out) = link.out.take() {
                out.shutdown();
            }
        }
    }

    /// Records outbound frames (count, bytes) and the link's queued-
    /// depth high-water mark after an enqueue.
    fn note_sent(&self, frames: &[Bytes], queued: usize) {
        self.metrics.frames_out.add(frames.len() as u64);
        self.metrics
            .bytes_out
            .add(frames.iter().map(|f| f.len() as u64).sum());
        self.metrics.outbox_depth_bytes.record_max(queued as u64);
    }

    fn dial(&self, src: ServerId, to: ServerId) -> std::io::Result<Outbox> {
        if let Some(f) = &self.faults {
            if !f.allow_dial(src, to) {
                return Err(std::io::ErrorKind::ConnectionRefused.into());
            }
        }
        let stream = TcpStream::connect(self.addrs[to.dc_major_index(self.n_partitions)])?;
        stream.set_nodelay(true)?;
        let (outbox, writer) = Outbox::spawn_instrumented(
            stream,
            SERVER_OUTBOX_BYTES,
            Some(self.metrics.writev_frames_per_call.clone()),
        )?;
        outbox.enqueue(Hello::Server(src).encode_framed());
        self.threads.lock().push(writer);
        Ok(outbox)
    }

    /// Ships a response to a connected client; silently dropped if the
    /// client is gone (its session will time out, as in channel mode).
    pub(crate) fn send_client(&self, to: ClientId, msg: &WrenMsg) {
        if let Some(out) = self.clients.read().get(&to) {
            match try_frame_wren(msg) {
                Some(frame) => {
                    self.metrics.frames_out.inc();
                    self.metrics.bytes_out.add(frame.len() as u64);
                    out.enqueue(frame);
                    self.metrics
                        .outbox_depth_bytes
                        .record_max(out.queued_bytes() as u64);
                }
                // A response beyond the frame ceiling cannot be
                // delivered; sever the connection so the client fails
                // fast instead of waiting out its timeout.
                None => out.shutdown(),
            }
        }
    }

    /// Flags the fabric closed and severs everything: wakes acceptors,
    /// shuts accepted sockets (waking their reader threads), kills
    /// outbound and client outboxes. Idempotent — every step tolerates
    /// having already run.
    pub(crate) fn shutdown(&self) {
        self.closing.store(true, Ordering::SeqCst);
        for addr in &self.addrs {
            // Wake the acceptor blocked in accept(); it re-checks the
            // closing flag and exits. The dummy connection is dropped
            // unserved.
            let _ = TcpStream::connect_timeout(addr, WAKE_TIMEOUT);
        }
        for (_, slot) in self.peers.write().drain() {
            if let Some(out) = slot.lock().out.take() {
                out.shutdown();
            }
        }
        for (_, out) in self.clients.write().drain() {
            out.shutdown();
        }
        for (_, (_, conn)) in self.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Abruptly takes one server off the network (see the module docs):
    /// down flag, acceptor wake-and-exit (dropping the listener, so the
    /// address frees), and a hard sever of every link and connection the
    /// victim owns. Peers and sessions observe EOF mid-stream.
    pub(crate) fn kill_server(&self, id: ServerId) {
        let idx = id.dc_major_index(self.n_partitions);
        self.down[idx].store(true, Ordering::SeqCst);
        // Wake the victim's acceptor blocked in accept(); it observes
        // the down flag and exits, releasing the listening socket.
        let _ = TcpStream::connect_timeout(&self.addrs[idx], WAKE_TIMEOUT);
        // Outbound links from the victim (its process died) and toward
        // it (its end of those sockets died).
        for (&(from, to), slot) in self.peers.read().iter() {
            if from == id || to == id {
                if let Some(out) = slot.lock().out.take() {
                    out.shutdown();
                }
            }
        }
        // Accepted connections the victim owned: inbound peer links and
        // client sessions get EOF, their reader threads exit and reap
        // the registry entries.
        for (owner, conn) in self.conns.lock().values() {
            if *owner == id {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
    }

    /// Puts a restarted server back on the network: clears the down
    /// flag and unparks every peer link toward it, so the first
    /// post-restart send re-dials immediately instead of waiting out a
    /// backoff window. The caller re-arms the accept path by handing a
    /// fresh listener to [`spawn_acceptors`].
    pub(crate) fn revive_server(&self, id: ServerId) {
        let idx = id.dc_major_index(self.n_partitions);
        self.down[idx].store(false, Ordering::SeqCst);
        for (&(_, to), slot) in self.peers.read().iter() {
            if to == id {
                slot.lock().unpark();
            }
        }
    }

    /// Server→server messages refused for exceeding the frame ceiling
    /// (0 on any healthy run; the loopback oracle suite asserts it).
    /// Thin shim over the registry counter of the same name.
    pub(crate) fn dropped_frames(&self) -> u64 {
        self.metrics.dropped_frames.get()
    }

    /// The fabric's metric registry (folded into the cluster snapshot).
    pub(crate) fn registry(&self) -> wren_obs::Registry {
        self.metrics.registry()
    }

    /// Joins every fabric thread. Loops because connection threads can
    /// register their outbox writer handles concurrently; once a batch
    /// is joined, nothing can add more, so the queue drains to empty.
    pub(crate) fn join_threads(&self) {
        loop {
            let batch: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
            if batch.is_empty() {
                return;
            }
            for handle in batch {
                let _ = handle.join();
            }
        }
    }

    fn register_client(&self, id: ClientId, outbox: Outbox) {
        if let Some(old) = self.clients.write().insert(id, outbox.clone()) {
            // A reconnect (e.g. after migration) displaces the old
            // registration; sever the stale connection.
            old.shutdown();
        }
        // Shutdown may have drained the client map between the insert
        // and its sweep; re-checking after the insert guarantees one
        // side sees the other (the closing store precedes the sweep).
        if self.closing.load(Ordering::SeqCst) {
            outbox.shutdown();
        }
    }

    fn unregister_client(&self, id: ClientId, outbox: &Outbox) {
        let mut clients = self.clients.write();
        if clients.get(&id).is_some_and(|cur| cur.same_as(outbox)) {
            clients.remove(&id);
        }
    }
}

/// Spawns the acceptor threads, one per local server, after the router
/// (and its fabric) exist. Handles are parked in the fabric.
pub(crate) fn spawn_acceptors(router: &Arc<Router>, listeners: Vec<(ServerId, TcpListener)>) {
    let fabric = router.tcp_threaded().expect("acceptors need a threaded TCP fabric");
    let mut threads = fabric.threads.lock();
    for (me, listener) in listeners {
        let router = Arc::clone(router);
        threads.push(std::thread::spawn(move || accept_loop(me, listener, router)));
    }
}

fn accept_loop(me: ServerId, listener: TcpListener, router: Arc<Router>) {
    let fabric = router.tcp_threaded().expect("threaded TCP fabric");
    let me_idx = me.dc_major_index(fabric.n_partitions);
    loop {
        // Exiting drops the listener — on a kill that is the point: the
        // address frees for the restart's `SO_REUSEADDR` rebind.
        if fabric.closing.load(Ordering::SeqCst) || fabric.down[me_idx].load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Transient (EMFILE under fd pressure, EINTR): back off
                // briefly instead of burning a core on the error.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        // Register the raw socket for shutdown *before* any reads, so
        // even a connection still dribbling its hello is severable. A
        // conn we cannot register we must not serve: its reader thread
        // would be un-severable and hang join_threads at shutdown.
        let conn_id = fabric.next_conn.fetch_add(1, Ordering::Relaxed);
        match stream.try_clone() {
            Ok(clone) => {
                fabric.conns.lock().insert(conn_id, (me, clone));
            }
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
        }
        // Re-check AFTER registering: shutdown (and kill_server) store
        // their flag before sweeping `conns`, so a connection accepted
        // during the race is severed by exactly one side — the sweep
        // (if the push won) or this branch (if it lost). Without the
        // ordering, a conn accepted mid-shutdown could escape severing
        // and leave its reader thread blocking `join_threads` forever.
        if fabric.closing.load(Ordering::SeqCst) || fabric.down[me_idx].load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            fabric.conns.lock().remove(&conn_id);
            return;
        }
        fabric.metrics.conns_accepted.inc();
        let _ = stream.set_nodelay(true);
        let router = Arc::clone(&router);
        let handle = std::thread::spawn(move || serve_conn(me, conn_id, stream, router));
        // Sweep finished reader/writer handles while we are here, so
        // session churn does not grow the join list without bound
        // (dropping a finished handle just detaches a dead thread).
        let mut threads = fabric.threads.lock();
        threads.retain(|h| !h.is_finished());
        threads.push(handle);
    }
}

/// One accepted connection: handshake, then frames → local dispatch
/// until EOF, error, or fabric shutdown. Reaps the connection's
/// shutdown-registry entry on the way out, whatever the exit path.
fn serve_conn(me: ServerId, conn_id: u64, stream: TcpStream, router: Arc<Router>) {
    let fabric = router.tcp_threaded().expect("threaded TCP fabric");
    let mut reader = FramedReader::new(stream);
    if let Ok(hello) = reader.read_hello() {
        match hello {
            // A forged out-of-range ServerId would index out of bounds
            // in version vectors and the address table downstream —
            // validate at the boundary, sever on nonsense.
            Hello::Server(src)
                if src.partition.index() < fabric.n_partitions as usize
                    && src.dc_major_index(fabric.n_partitions) < fabric.addrs.len() =>
            {
                // Inbound server links are read-only: replies travel on
                // the replier's own outbound link, so no outbox here.
                read_frames(&mut reader, legal_from_server, |msgs, bytes| {
                    fabric.metrics.frames_in.add(msgs.len() as u64);
                    fabric.metrics.bytes_in.add(bytes as u64);
                    router.deliver_local_batch(Dest::Server(src), me, msgs);
                });
                // The conn that carried `src`-origin traffic died (EOF,
                // error, or a sever). Tell the engine, so a sibling's
                // death opens a catch-up window — unless the loss is
                // our own teardown, which needs no reaction.
                let me_idx = me.dc_major_index(fabric.n_partitions);
                if !fabric.closing.load(Ordering::SeqCst)
                    && !fabric.down[me_idx].load(Ordering::SeqCst)
                {
                    router.notify_link_lost(me, src);
                }
            }
            Hello::Server(_) => {}
            Hello::Client(id) => serve_client_conn(me, id, &mut reader, &router, fabric),
        }
    }
    fabric.metrics.conns_severed.inc();
    fabric.conns.lock().remove(&conn_id);
}

/// The client half of [`serve_conn`]: outbox + registration around the
/// frame loop.
fn serve_client_conn(
    me: ServerId,
    id: ClientId,
    reader: &mut FramedReader,
    router: &Arc<Router>,
    fabric: &TcpFabric,
) {
    let Ok(write_half) = reader.stream().try_clone() else {
        return;
    };
    let Ok((outbox, writer)) = Outbox::spawn_instrumented(
        write_half,
        fabric.client_outbox_bytes,
        Some(fabric.metrics.writev_frames_per_call.clone()),
    ) else {
        return;
    };
    fabric.threads.lock().push(writer);
    fabric.register_client(id, outbox.clone());
    read_frames(reader, legal_from_client, |msgs, bytes| {
        fabric.metrics.frames_in.add(msgs.len() as u64);
        fabric.metrics.bytes_in.add(bytes as u64);
        router.deliver_local_batch(Dest::Client(id), me, msgs);
    });
    fabric.unregister_client(id, &outbox);
    // Hard shutdown, not a graceful flush: the reader only exits when
    // the client is gone or misbehaving, and a half-closed client that
    // stopped reading would otherwise leave the outbox writer blocked
    // in write(2) with its socket already gone from every registry —
    // unjoinable at cluster stop.
    outbox.shutdown();
}

/// Messages a client session may legitimately send its coordinator,
/// within the transport's amplification bounds. Anything else on a
/// client connection (a `SliceReq`, a response type, gossip, an
/// oversized or over-wide request…) would reach engine paths the state
/// machines only expect from trusted sources, or force the engine to
/// build an unframeable reply — filtered at the boundary so remote
/// frames can never trip a server-side `debug_assert` or the
/// server→server frame ceiling. Shared with the reactor fabric: the
/// boundary rules are a property of the protocol, not of the thread
/// topology serving the socket.
pub(crate) fn legal_from_client(msg: &WrenMsg) -> bool {
    match msg {
        WrenMsg::StartTxReq { .. } => true,
        WrenMsg::TxReadReq { keys, .. } => keys.len() <= MAX_READ_KEYS,
        WrenMsg::CommitReq { .. } => msg.wire_size() <= CLIENT_REQ_MAX,
        _ => false,
    }
}

/// Messages one partition server may legitimately send another: the
/// intra-DC transaction traffic, replication, and gossip — not the
/// client-only requests and not the client-bound responses. `SliceReq`
/// carries the same keys bound as the client read it derives from.
/// Shared with the reactor fabric.
pub(crate) fn legal_from_server(msg: &WrenMsg) -> bool {
    match msg {
        WrenMsg::SliceReq { keys, .. } => keys.len() <= MAX_READ_KEYS,
        WrenMsg::SliceResp { .. }
        | WrenMsg::PrepareReq { .. }
        | WrenMsg::PrepareResp { .. }
        | WrenMsg::Commit { .. }
        | WrenMsg::Replicate { .. }
        | WrenMsg::Heartbeat { .. }
        | WrenMsg::StableGossip { .. }
        | WrenMsg::GcGossip { .. }
        | WrenMsg::GossipUp { .. }
        | WrenMsg::GossipDown { .. }
        | WrenMsg::CatchUpReq { .. }
        | WrenMsg::CatchUpDone { .. } => true,
        WrenMsg::StartTxReq { .. }
        | WrenMsg::TxReadReq { .. }
        | WrenMsg::CommitReq { .. }
        | WrenMsg::StartTxResp { .. }
        | WrenMsg::TxReadResp { .. }
        | WrenMsg::CommitResp { .. } => false,
    }
}

/// Reads frames until EOF/error, delivering decoded messages that pass
/// the connection's legality filter in **bursts**: one blocking read
/// for the burst's first frame, then every further frame the socket
/// read(s) already buffered (via [`FramedReader::buffered_frame`]),
/// handed to `deliver` together with their total payload bytes — so a
/// pipelined run of requests costs one downstream delivery, not one
/// per frame. A corrupt or protocol-illegal frame severs the
/// connection — after the burst's earlier legal frames are delivered,
/// exactly as the one-frame-at-a-time loop behaved.
fn read_frames(
    reader: &mut FramedReader,
    legal: fn(&WrenMsg) -> bool,
    mut deliver: impl FnMut(Vec<WrenMsg>, usize),
) {
    loop {
        let mut burst = Vec::new();
        let mut bytes = 0usize;
        // Block for the burst's first frame…
        match reader.next_frame() {
            Ok(Some(payload)) => match WrenMsg::decode(&payload) {
                Ok(msg) if legal(&msg) => {
                    bytes += payload.len();
                    burst.push(msg);
                }
                _ => return, // corrupt or protocol-illegal peer: sever
            },
            Ok(None) | Err(_) => return,
        }
        // …then drain what the decoder already holds, socket untouched.
        let mut sever = false;
        loop {
            match reader.buffered_frame() {
                Ok(Some(payload)) => match WrenMsg::decode(&payload) {
                    Ok(msg) if legal(&msg) => {
                        bytes += payload.len();
                        burst.push(msg);
                    }
                    _ => {
                        sever = true;
                        break;
                    }
                },
                Ok(None) => break,
                Err(_) => {
                    sever = true;
                    break;
                }
            }
        }
        deliver(burst, bytes);
        if sever {
            return;
        }
    }
}

/// A bound listener tagged with the server it serves.
pub(crate) type BoundListeners = Vec<(ServerId, TcpListener)>;

/// Binds one loopback listener per server, DC-major partition order.
pub(crate) fn bind_listeners(
    n_dcs: u8,
    n_partitions: u16,
) -> std::io::Result<(BoundListeners, Vec<SocketAddr>)> {
    let mut listeners = Vec::new();
    let mut addrs = Vec::new();
    for dc in 0..n_dcs {
        for p in 0..n_partitions {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(listener.local_addr()?);
            listeners.push((ServerId::new(dc, p), listener));
        }
    }
    Ok((listeners, addrs))
}

// ---------------------------------------------------------------------
// Client side: a session's framed link to its coordinators.
// ---------------------------------------------------------------------

/// A client session's socket bundle to one server.
struct PeerIo {
    write: TcpStream,
    reader: FramedReader,
}

/// The TCP leg of a [`Session`](crate::Session): lazily-dialed framed
/// connections to whichever coordinators the session talks to (one,
/// until it migrates), with blocking timed receives.
///
/// The session layer is strictly request-response (one in-flight
/// operation, as in the paper's client model), so a plain blocking read
/// with `SO_RCVTIMEO` is the whole receive path — no demultiplexing.
pub(crate) struct TcpLink {
    id: ClientId,
    addrs: Arc<Vec<SocketAddr>>,
    n_partitions: u16,
    timeout: Duration,
    /// Total time `connect` keeps retrying refused dials before
    /// reporting the address unreachable (a [`ClusterBuilder`] knob).
    ///
    /// [`ClusterBuilder`]: crate::ClusterBuilder::dial_retry_budget
    dial_budget: Duration,
    conns: HashMap<ServerId, PeerIo>,
    /// The server the last request went to (whose link `recv` reads).
    active: Option<ServerId>,
}

impl TcpLink {
    pub(crate) fn new(
        id: ClientId,
        addrs: Arc<Vec<SocketAddr>>,
        n_partitions: u16,
        timeout: Duration,
        dial_budget: Duration,
    ) -> TcpLink {
        TcpLink {
            id,
            addrs,
            n_partitions,
            timeout,
            dial_budget,
            conns: HashMap::new(),
            active: None,
        }
    }

    pub(crate) fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Drops every cached connection: the next operation redials. The
    /// session layer calls this on migration, because helloing a new
    /// coordinator makes the cluster sever the displaced registration's
    /// socket — any conn cached before the migration is (or will be)
    /// dead, and a migration back would otherwise hit it and surface a
    /// spurious `Shutdown`.
    pub(crate) fn reset(&mut self) {
        self.conns.clear();
        self.active = None;
    }

    /// Dials `to`'s listener, retrying on `ECONNREFUSED` with jittered
    /// exponential backoff until the dial budget drains. During cluster
    /// startup a session can legitimately race the listener into
    /// existence (separate processes especially: addresses are
    /// exchanged before every partition is up), and during a failover a
    /// generous budget rides out a kill-to-restart window entirely; a
    /// refused dial beyond the budget means the partition is genuinely
    /// down and the error names its address ([`RtError::Unreachable`]).
    ///
    /// [`RtError::Unreachable`]: crate::RtError::Unreachable
    fn connect(&mut self, to: ServerId) -> Result<(), crate::RtError> {
        use std::io::Write;
        let addr = self.addrs[to.dc_major_index(self.n_partitions)];
        let deadline = Instant::now() + self.dial_budget;
        let mut backoff = DIAL_BACKOFF_MIN;
        let mut stream = loop {
            match TcpStream::connect_timeout(&addr, self.timeout) {
                Ok(s) => break s,
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(crate::RtError::Unreachable(addr));
                    }
                    std::thread::sleep(jittered(backoff).min(deadline - now));
                    backoff = (backoff * 2).min(DIAL_BACKOFF_MAX);
                }
                Err(_) => return Err(crate::RtError::Shutdown),
            }
        };
        let io = (|| -> std::io::Result<PeerIo> {
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.write_all(&Hello::Client(self.id).encode_framed())?;
            let write = stream.try_clone()?;
            Ok(PeerIo {
                write,
                reader: FramedReader::new(stream),
            })
        })()
        .map_err(|_| crate::RtError::Shutdown)?;
        self.conns.insert(to, io);
        Ok(())
    }

    /// Frames and writes one request. [`RtError::Unreachable`] means
    /// the server's address refused connections beyond the dial's retry
    /// budget; [`RtError::Shutdown`] covers other transport failures
    /// (cluster down mid-connection); [`RtError::TooLarge`] means the
    /// request exceeds the transport's ceilings (total size, or keys
    /// per read). The size bounds are also enforced at the server's
    /// accepting boundary; checking here turns a would-be severed
    /// connection into a clean client-side error.
    pub(crate) fn send(&mut self, to: ServerId, msg: &WrenMsg) -> Result<(), crate::RtError> {
        use std::io::Write;
        if !legal_from_client(msg) {
            return Err(crate::RtError::TooLarge);
        }
        // Within CLIENT_REQ_MAX < MAX_FRAME_LEN, so framing can't fail.
        let frame = frame_wren(msg);
        if !self.conns.contains_key(&to) {
            self.connect(to)?;
        }
        self.active = Some(to);
        let conn = self.conns.get_mut(&to).expect("just ensured");
        if conn.write.write_all(&frame).is_err() {
            self.conns.remove(&to);
            return Err(crate::RtError::Shutdown);
        }
        Ok(())
    }

    /// Blocks for the response to the last request.
    pub(crate) fn recv(&mut self) -> Result<WrenMsg, crate::RtError> {
        let active = self.active.ok_or(crate::RtError::Shutdown)?;
        let conn = self.conns.get_mut(&active).ok_or(crate::RtError::Shutdown)?;
        match conn.reader.next_frame() {
            Ok(Some(payload)) => {
                WrenMsg::decode(&payload).map_err(|_| crate::RtError::Shutdown)
            }
            Ok(None) => {
                self.conns.remove(&active);
                Err(crate::RtError::Shutdown)
            }
            Err(e) if e.is_timeout() => Err(crate::RtError::Timeout),
            Err(_) => {
                self.conns.remove(&active);
                Err(crate::RtError::Shutdown)
            }
        }
    }
}
