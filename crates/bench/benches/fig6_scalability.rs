//! **Fig. 6a/6b**: Wren's peak throughput normalized to Cure's, when
//! scaling partitions per DC (4/8/16, 3 DCs) and DCs (3/5, 16
//! partitions), for the three transaction mixes.
//!
//! Paper result: Wren consistently above 1.0× (up to 1.38× with more
//! partitions, up to 1.43× with 5 DCs); Wren's own throughput scales
//! 3.76–3.88× from 4 to 16 partitions (ideal 4×) and ~1.44–1.53× from
//! 3 to 5 DCs (ideal 1.66×).

use wren_bench::{banner, peak_throughput, sweep, Scale};
use wren_harness::{SystemKind, Topology};
use wren_workload::{TxMix, WorkloadSpec};

const MIXES: [TxMix; 3] = [TxMix::R95_W5, TxMix::R90_W10, TxMix::R50_W50];

fn peaks(scale: Scale, topology: &Topology, mix: TxMix, seed: u64) -> (f64, f64) {
    let workload = WorkloadSpec {
        mix,
        ..WorkloadSpec::default()
    };
    let wren = peak_throughput(&sweep(SystemKind::Wren, scale, topology, &workload, seed));
    let cure = peak_throughput(&sweep(SystemKind::Cure, scale, topology, &workload, seed));
    (wren, cure)
}

fn main() {
    let scale = Scale::from_env();

    banner(
        "Fig. 6a",
        "Wren peak throughput normalized to Cure, varying partitions/DC (3 DCs)",
    );
    println!(
        "    {:>9} {:>7}  {:>12}  {:>12}  {:>10}",
        "mix", "parts", "wren ktx/s", "cure ktx/s", "norm"
    );
    let mut wren_by_parts: Vec<(u16, TxMix, f64)> = Vec::new();
    for parts in [4u16, 8, 16] {
        let topology = Topology::aws(3, parts);
        for mix in MIXES {
            let (wren, cure) = peaks(scale, &topology, mix, 45);
            println!(
                "    {:>9} {:>7}  {:>12.2}  {:>12.2}  {:>10.2}",
                mix.label(),
                parts,
                wren / 1000.0,
                cure / 1000.0,
                wren / cure
            );
            wren_by_parts.push((parts, mix, wren));
        }
    }
    // The paper highlights near-ideal scale-out from 4 to 16 partitions.
    for mix in MIXES {
        let at = |parts: u16| {
            wren_by_parts
                .iter()
                .find(|(p, m, _)| *p == parts && *m == mix)
                .map(|(_, _, t)| *t)
                .unwrap_or(0.0)
        };
        if at(4) > 0.0 {
            println!(
                "    scale-out {}: 4→16 partitions = {:.2}x (ideal 4x)",
                mix.label(),
                at(16) / at(4)
            );
        }
    }

    banner(
        "Fig. 6b",
        "Wren peak throughput normalized to Cure, varying DCs (16 partitions/DC)",
    );
    println!(
        "    {:>9} {:>5}  {:>12}  {:>12}  {:>10}",
        "mix", "DCs", "wren ktx/s", "cure ktx/s", "norm"
    );
    let mut wren_by_dcs: Vec<(u8, TxMix, f64)> = Vec::new();
    for dcs in [3u8, 5] {
        let topology = Topology::aws(dcs, 16);
        for mix in MIXES {
            let (wren, cure) = peaks(scale, &topology, mix, 46);
            println!(
                "    {:>9} {:>5}  {:>12.2}  {:>12.2}  {:>10.2}",
                mix.label(),
                dcs,
                wren / 1000.0,
                cure / 1000.0,
                wren / cure
            );
            wren_by_dcs.push((dcs, mix, wren));
        }
    }
    for mix in MIXES {
        let at = |dcs: u8| {
            wren_by_dcs
                .iter()
                .find(|(d, m, _)| *d == dcs && *m == mix)
                .map(|(_, _, t)| *t)
                .unwrap_or(0.0)
        };
        if at(3) > 0.0 {
            println!(
                "    scale-out {}: 3→5 DCs = {:.2}x (ideal 1.66x)",
                mix.label(),
                at(5) / at(3)
            );
        }
    }
}
