//! **Fig. 4a/4b**: throughput vs. average transaction latency under
//! write-heavier mixes — 90:10 (a) and 50:50 (b), 3 DCs, 8 partitions,
//! p=4.
//!
//! Paper result: Wren outperforms Cure and H-Cure on both mixes (up to
//! 3.6× lower latency / 1.33× higher throughput vs Cure across Figs.
//! 4–5); peak throughput of all three systems drops as the write ratio
//! grows (longer commits, more replication).

use wren_bench::{banner, print_curve, sweep, Scale};
use wren_harness::{SystemKind, Topology};
use wren_workload::{TxMix, WorkloadSpec};

fn main() {
    let scale = Scale::from_env();
    let topology = Topology::aws(3, 8);

    for (fig, mix) in [("Fig. 4a", TxMix::R90_W10), ("Fig. 4b", TxMix::R50_W50)] {
        let workload = WorkloadSpec {
            mix,
            ..WorkloadSpec::default()
        };
        banner(
            fig,
            &format!(
                "throughput vs average TX latency ({} r:w, 3 DCs, 8 partitions, p=4)",
                mix.label()
            ),
        );
        for system in SystemKind::ALL {
            let curve = sweep(system, scale, &topology, &workload, 43);
            print_curve(system.label(), &curve);
        }
    }
}
