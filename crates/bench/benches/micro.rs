//! Criterion micro-benchmarks for the hot paths of every substrate:
//! clocks, version vectors, version chains, the codec, zipfian sampling
//! and end-to-end server message handling.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wren_clock::{HybridClock, SkewedClock, Timestamp, VersionVector};
use wren_core::{WrenConfig, WrenServer};
use wren_protocol::{ClientId, Dest, Key, ServerId, TxId, WrenMsg, WrenVersion};
use wren_storage::{
    ConcurrentShardedStore, MvStore, ShardedStore, SnapshotBound, VersionChain, Versioned,
};
use wren_workload::Zipfian;

fn bench_clocks(c: &mut Criterion) {
    c.bench_function("hlc_tick", |b| {
        let mut clock = HybridClock::new();
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(clock.tick(now))
        });
    });
    c.bench_function("hlc_tick_at_least", |b| {
        let mut clock = HybridClock::new();
        let floor = Timestamp::from_micros(1 << 30);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(clock.tick_at_least(now, floor))
        });
    });
    c.bench_function("vv_join_5", |b| {
        let mut a = VersionVector::new(5);
        let other = VersionVector::from_entries(
            (0..5).map(|i| Timestamp::from_micros(i * 7)).collect(),
        );
        b.iter(|| {
            a.join(black_box(&other));
        });
    });
}

fn sample_version(ct: u64) -> WrenVersion {
    WrenVersion {
        value: bytes::Bytes::from_static(b"12345678"),
        ut: Timestamp::from_micros(ct),
        rdt: Timestamp::from_micros(ct / 2),
        tx: TxId::new(ServerId::new(0, 0), ct),
        sr: wren_protocol::DcId(0),
    }
}

/// Depth of the chain for the deep-read benchmarks: models a key with a
/// replication backlog of versions newer than the reader's snapshot.
const DEEP: u64 = 1_024;

fn deep_chain() -> VersionChain<WrenVersion> {
    let mut chain = VersionChain::new();
    for ct in 0..DEEP {
        chain.insert(sample_version(ct * 10));
    }
    chain
}

fn bench_storage(c: &mut Criterion) {
    c.bench_function("chain_insert_in_order", |b| {
        b.iter(|| {
            let mut chain = VersionChain::new();
            for ct in 0..64u64 {
                chain.insert(sample_version(ct));
            }
            black_box(chain.len())
        });
    });
    c.bench_function("chain_insert_out_of_order", |b| {
        let mut rng = SmallRng::seed_from_u64(7);
        let cts: Vec<u64> = (0..64).map(|_| rng.gen_range(0u64..100_000)).collect();
        b.iter(|| {
            let mut chain = VersionChain::new();
            for &ct in &cts {
                chain.insert(sample_version(ct));
            }
            black_box(chain.len())
        });
    });
    // The chain-read microbenchmark: a snapshot far behind the newest
    // version, so almost the whole chain is too new to be visible.
    // `binary` is the indexed read path; `linear_oracle` re-enacts the
    // seed's closure-predicate scan for the before/after comparison.
    {
        let chain = deep_chain();
        let bound = SnapshotBound::bist(0, Timestamp::from_micros(95), Timestamp::from_micros(94));
        c.bench_function("chain_read_deep_binary", |b| {
            b.iter(|| black_box(chain.latest_visible(&bound)))
        });
        c.bench_function("chain_read_deep_linear_oracle", |b| {
            b.iter(|| {
                black_box(
                    chain
                        .iter()
                        .find(|v| bound.admits(&v.order_key(), v.remote_dep())),
                )
            })
        });
        let shallow_bound = SnapshotBound::bist(
            0,
            Timestamp::from_micros(10 * DEEP),
            Timestamp::from_micros(10 * DEEP - 1),
        );
        c.bench_function("chain_read_newest_visible", |b| {
            b.iter(|| black_box(chain.latest_visible(&shallow_bound)))
        });
    }
    c.bench_function("store_latest_visible", |b| {
        let mut store: MvStore<Key, WrenVersion> = MvStore::new();
        for k in 0..1_000u64 {
            for ct in 0..8 {
                store.insert(Key(k), sample_version(k * 10 + ct));
            }
        }
        let bound = SnapshotBound::at_most(Timestamp::from_micros(5_000));
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 1_000;
            black_box(store.latest_visible(&Key(k), &bound))
        });
    });
    // Insert cost at a *fixed* store shape: a fresh pre-seeded store
    // per iteration (off the clock), 256 inserts on it. The seed's
    // `b.iter` version reused one store across the whole run, so every
    // sample inserted into ever-deeper chains and the number measured
    // how long the run had been going, not the operation.
    c.bench_function("store_insert", |b| {
        b.iter_batched(
            || {
                let mut store: MvStore<Key, WrenVersion> = MvStore::new();
                for ct in 0..4_096u64 {
                    store.insert(Key(ct % 1_024), sample_version(ct));
                }
                store
            },
            |mut store| {
                for ct in 4_096..4_352u64 {
                    store.insert(Key(ct % 1_024), sample_version(ct));
                }
                black_box(store.stats().versions);
                store
            },
            BatchSize::SmallInput,
        )
    });
}

/// Sharded-vs-flat: the striped store must read and insert at flat-map
/// speed (compare against `store_latest_visible` / `store_insert`).
fn bench_sharded_store(c: &mut Criterion) {
    c.bench_function("sharded_store_latest_visible", |b| {
        let mut store: ShardedStore<Key, WrenVersion> = ShardedStore::new();
        for k in 0..1_000u64 {
            for ct in 0..8 {
                store.insert(Key(k), sample_version(k * 10 + ct));
            }
        }
        let bound = SnapshotBound::at_most(Timestamp::from_micros(5_000));
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 1_000;
            black_box(store.latest_visible(&Key(k), &bound))
        });
    });
    // Mirrors `store_insert`'s fresh-store-per-iteration shape exactly
    // (same seed, same 256 on-clock inserts) so sharded-vs-flat stays a
    // like-for-like comparison instead of two differently-aged stores.
    c.bench_function("sharded_store_insert", |b| {
        b.iter_batched(
            || {
                let mut store: ShardedStore<Key, WrenVersion> = ShardedStore::new();
                for ct in 0..4_096u64 {
                    store.insert(Key(ct % 1_024), sample_version(ct));
                }
                store
            },
            |mut store| {
                for ct in 4_096..4_352u64 {
                    store.insert(Key(ct % 1_024), sample_version(ct));
                }
                // O(1) observable: a full `stats()` rollup would add an
                // O(stripes) term and bias the comparison.
                black_box(store.stripe_stats(0).versions);
                store
            },
            BatchSize::SmallInput,
        )
    });
}

/// Keys in the parallel-read bench's store.
const PR_KEYS: u64 = 4_096;
/// Total slice reads per timed iteration of `parallel_read_slices_N`,
/// split evenly across the N reader threads — the figure of merit is
/// wall-clock for a fixed amount of read work, so more workers should
/// finish sooner on a multi-core host.
const PR_TOTAL_READS: u64 = 32_768;

/// Read scaling on the stripe-locked concurrent store: N reader threads
/// splitting a fixed slice workload, against a store shaped like the
/// `store_latest_visible` one (4 versions per key, bound past all of
/// them). `_1` is the single-threaded baseline the 4- and 8-reader
/// variants are judged against; thread spawn/join is on the clock but
/// amortized over thousands of reads per thread.
fn bench_parallel_reads(c: &mut Criterion) {
    let store = Arc::new(ConcurrentShardedStore::<Key, WrenVersion>::new());
    for k in 0..PR_KEYS {
        for ct in 0..4 {
            store.insert(Key(k), sample_version(k * 10 + ct));
        }
    }
    store.publish_stable(
        Timestamp::from_micros(PR_KEYS * 10 + 100),
        Timestamp::from_micros(PR_KEYS * 10 + 99),
    );
    for n_readers in [1usize, 4, 8] {
        c.bench_function(&format!("parallel_read_slices_{n_readers}"), |b| {
            let per_reader = PR_TOTAL_READS / n_readers as u64;
            b.iter(|| {
                std::thread::scope(|s| {
                    for w in 0..n_readers {
                        let store = Arc::clone(&store);
                        s.spawn(move || {
                            let (lt, rt) = store.stable();
                            let bound = SnapshotBound::bist(0, lt, rt);
                            // Per-thread xorshift: distinct key walks, no
                            // shared RNG contention.
                            let mut x = 0x9e37_79b9u64.wrapping_add(w as u64);
                            let mut found = 0usize;
                            for _ in 0..per_reader {
                                x ^= x << 13;
                                x ^= x >> 7;
                                x ^= x << 17;
                                let k = Key(x % PR_KEYS);
                                if store.latest_visible(&k, &bound).is_some() {
                                    found += 1;
                                }
                            }
                            black_box(found)
                        });
                    }
                });
            })
        });
    }
}

/// Number of transactions in the modeled replication batch.
const BATCH_TXS: u64 = 32;
/// Hot keys the batch writes (zipfian workloads concentrate updates).
const HOT_KEYS: u64 = 4;

/// A replication-shaped batch: 32 transactions sharing one commit
/// timestamp, two writes each, spread over 4 hot keys — so each key's
/// chain receives a 16-version run at a single splice point.
fn replication_batch() -> Vec<(Key, WrenVersion)> {
    // ct = 5005 lands mid-chain (existing versions sit at multiples of
    // 10 up to 10 * DEEP): the out-of-order case replication lag causes.
    let ct = Timestamp::from_micros(5_005);
    (0..BATCH_TXS)
        .flat_map(|tx| {
            (0..2u64).map(move |w| {
                (
                    Key((tx * 2 + w) % HOT_KEYS),
                    WrenVersion {
                        value: bytes::Bytes::from_static(b"12345678"),
                        ut: ct,
                        rdt: Timestamp::from_micros(2_000),
                        tx: TxId::new(ServerId::new(1, 0), tx),
                        sr: wren_protocol::DcId(1),
                    },
                )
            })
        })
        .collect()
}

/// A deep store whose chains carry **capacity headroom**: each key gets
/// 16 sacrificial oldest versions that a GC sweep then drains (front
/// drains keep the allocation), so applying the 64-version batch never
/// grows a `Vec`. Without the headroom, both apply strategies pay one
/// identical ~80 KiB chain realloc that swamps the algorithmic
/// difference being measured — production chains amortize growth the
/// same way.
fn deep_store_with_headroom() -> ShardedStore<Key, WrenVersion> {
    let mut s = ShardedStore::new();
    for k in 0..HOT_KEYS {
        for i in 0..(DEEP + 16) {
            s.insert(Key(k), sample_version((i + 1) * 10));
        }
    }
    s.collect(&SnapshotBound::at_most(Timestamp::from_micros(170)));
    debug_assert_eq!(s.stats().versions as u64, HOT_KEYS * DEEP);
    s
}

/// The replicate-apply comparison the write path is built around: a
/// 32-tx batch landing mid-chain on deep (1024-version) chains, applied
/// one version at a time vs. through the batched splice. Setup (building
/// the store and cloning the batch) and teardown (the routine returns
/// the store) are both off the clock.
fn bench_replicate_apply(c: &mut Criterion) {
    let batch = replication_batch();

    c.bench_function("replicate_apply_one_at_a_time", |b| {
        b.iter_batched(
            || (deep_store_with_headroom(), batch.clone()),
            |(mut store, items)| {
                for (k, v) in items {
                    store.insert(k, v);
                }
                black_box(store.stats().versions);
                store
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("replicate_apply_batched", |b| {
        b.iter_batched(
            || (deep_store_with_headroom(), batch.clone()),
            |(mut store, mut items)| {
                store.apply_batch(&mut items);
                black_box(store.stats().versions);
                store
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_codec(c: &mut Criterion) {
    let msg = WrenMsg::SliceResp {
        tx: TxId::new(ServerId::new(0, 3), 77),
        items: (0..8)
            .map(|i| (Key(i), Some(sample_version(i * 5))))
            .collect(),
    };
    c.bench_function("codec_encode_slice_resp", |b| {
        b.iter(|| black_box(msg.encode()));
    });
    let bytes = msg.encode();
    c.bench_function("codec_decode_slice_resp", |b| {
        b.iter(|| black_box(WrenMsg::decode(&bytes).unwrap()));
    });
    // The transport's per-message cost: encode straight into a framed
    // buffer (header + payload, one allocation), then reassemble the
    // frame from the byte stream and decode — what every TCP hop pays
    // on each side of the socket.
    c.bench_function("codec_frame_roundtrip", |b| {
        use wren_protocol::frame::{frame_wren, FrameDecoder};
        b.iter(|| {
            let framed = frame_wren(&msg);
            let mut dec = FrameDecoder::new();
            dec.extend(&framed);
            let payload = dec.next_frame().unwrap().expect("complete frame");
            black_box(WrenMsg::decode(&payload).unwrap())
        });
    });
}

/// A framed echo server's response: the payload re-wrapped in a length
/// header, as one preallocated buffer.
fn reframe(payload: &[u8]) -> bytes::Bytes {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    bytes::Bytes::from(out)
}

/// Framed request→response over loopback through each socket fabric:
/// the full per-operation transport bill — encode, frame, write(2),
/// wakeup, decode, re-frame, write back, read back — that a session
/// pays on every server round trip. `threaded_roundtrip` drives the
/// per-connection-thread pieces (`FramedReader` + `Outbox`);
/// `reactor_roundtrip` the epoll reactor. Same message as
/// `codec_frame_roundtrip`, so (roundtrip − 2×frame-cost) isolates the
/// thread-topology overhead.
fn bench_transport(c: &mut Criterion) {
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use wren_net::{ConnHandle, FramedReader, Outbox, Reactor, ReactorHandler};
    use wren_protocol::frame::frame_wren;

    let msg = WrenMsg::SliceResp {
        tx: TxId::new(ServerId::new(0, 3), 77),
        items: (0..8)
            .map(|i| (Key(i), Some(sample_version(i * 5))))
            .collect(),
    };

    c.bench_function("threaded_roundtrip", |b| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            stream.set_nodelay(true).unwrap();
            let (outbox, writer) =
                Outbox::spawn(stream.try_clone().unwrap(), 16 * 1024 * 1024).unwrap();
            let mut reader = FramedReader::new(stream);
            while let Ok(Some(payload)) = reader.next_frame() {
                outbox.enqueue(reframe(&payload));
            }
            outbox.close();
            writer.join().unwrap();
        });
        let mut write = TcpStream::connect(addr).unwrap();
        write.set_nodelay(true).unwrap();
        let mut reader = FramedReader::new(write.try_clone().unwrap());
        b.iter(|| {
            write.write_all(&frame_wren(&msg)).unwrap();
            let payload = reader.next_frame().unwrap().expect("echo");
            black_box(WrenMsg::decode(&payload).unwrap())
        });
        drop(write);
        drop(reader);
        server.join().unwrap();
    });

    struct Echo;
    impl ReactorHandler for Echo {
        type Conn = ();
        fn on_accept(&self, _ctx: u64, _h: &ConnHandle) -> Option<()> {
            Some(())
        }
        fn on_frame(&self, _c: &mut (), h: &ConnHandle, payload: bytes::Bytes) -> bool {
            h.enqueue(reframe(&payload))
        }
        fn on_close(&self, _c: &mut (), _h: &ConnHandle) {}
    }

    c.bench_function("reactor_roundtrip", |b| {
        let reactor = Reactor::start(2, Echo).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        reactor.add_listener(listener, 0, 16 * 1024 * 1024).unwrap();
        let mut write = TcpStream::connect(addr).unwrap();
        write.set_nodelay(true).unwrap();
        let mut reader = FramedReader::new(write.try_clone().unwrap());
        b.iter(|| {
            write.write_all(&frame_wren(&msg)).unwrap();
            let payload = reader.next_frame().unwrap().expect("echo");
            black_box(WrenMsg::decode(&payload).unwrap())
        });
        reactor.shutdown();
        reactor.join();
    });

    // The batched counterpart: 32 requests written back-to-back, then
    // all 32 echoes read. Where `reactor_roundtrip` serializes one
    // wakeup per message, this shape lets the reactor decode a burst
    // per readiness event and drain the outbox with vectored writes —
    // (pipelined / 32) vs. roundtrip is the syscall-amortization win.
    c.bench_function("reactor_roundtrip_pipelined", |b| {
        const PIPELINE: usize = 32;
        let reactor = Reactor::start(2, Echo).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        reactor.add_listener(listener, 0, 16 * 1024 * 1024).unwrap();
        let mut write = TcpStream::connect(addr).unwrap();
        write.set_nodelay(true).unwrap();
        let mut reader = FramedReader::new(write.try_clone().unwrap());
        let framed = frame_wren(&msg);
        let mut burst = Vec::with_capacity(framed.len() * PIPELINE);
        for _ in 0..PIPELINE {
            burst.extend_from_slice(&framed);
        }
        b.iter(|| {
            write.write_all(&burst).unwrap();
            for _ in 0..PIPELINE {
                let payload = reader.next_frame().unwrap().expect("echo");
                black_box(WrenMsg::decode(&payload).unwrap());
            }
        });
        reactor.shutdown();
        reactor.join();
    });

    // The same two shapes over the io_uring backend: identical handler,
    // identical wire traffic, only the syscall interface changes —
    // `uring_roundtrip` vs `reactor_roundtrip` is the per-event
    // latency delta, `uring_roundtrip_pipelined` vs
    // `reactor_roundtrip_pipelined` the amortized-throughput one
    // (linked-send chains + one `io_uring_enter` per burst vs one
    // writev per drain). Registered only when the kernel offers
    // io_uring — benchmarking the epoll fallback under a uring name
    // would poison baseline comparisons.
    if !wren_net::uring::available() {
        eprintln!("SKIP uring_roundtrip / uring_roundtrip_pipelined: io_uring unavailable");
        return;
    }
    use wren_net::{Backend, ReactorOptions};
    let uring_opts = || ReactorOptions {
        backend: Backend::Uring,
        ..ReactorOptions::default()
    };

    c.bench_function("uring_roundtrip", |b| {
        let reactor = Reactor::with_options(2, Echo, uring_opts()).unwrap();
        assert_eq!(reactor.backend(), Backend::Uring);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        reactor.add_listener(listener, 0, 16 * 1024 * 1024).unwrap();
        let mut write = TcpStream::connect(addr).unwrap();
        write.set_nodelay(true).unwrap();
        let mut reader = FramedReader::new(write.try_clone().unwrap());
        b.iter(|| {
            write.write_all(&frame_wren(&msg)).unwrap();
            let payload = reader.next_frame().unwrap().expect("echo");
            black_box(WrenMsg::decode(&payload).unwrap())
        });
        reactor.shutdown();
        reactor.join();
    });

    c.bench_function("uring_roundtrip_pipelined", |b| {
        const PIPELINE: usize = 32;
        let reactor = Reactor::with_options(2, Echo, uring_opts()).unwrap();
        assert_eq!(reactor.backend(), Backend::Uring);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        reactor.add_listener(listener, 0, 16 * 1024 * 1024).unwrap();
        let mut write = TcpStream::connect(addr).unwrap();
        write.set_nodelay(true).unwrap();
        let mut reader = FramedReader::new(write.try_clone().unwrap());
        let framed = frame_wren(&msg);
        let mut burst = Vec::with_capacity(framed.len() * PIPELINE);
        for _ in 0..PIPELINE {
            burst.extend_from_slice(&framed);
        }
        b.iter(|| {
            write.write_all(&burst).unwrap();
            for _ in 0..PIPELINE {
                let payload = reader.next_frame().unwrap().expect("echo");
                black_box(WrenMsg::decode(&payload).unwrap());
            }
        });
        reactor.shutdown();
        reactor.join();
    });
}

fn bench_workload(c: &mut Criterion) {
    c.bench_function("zipfian_sample", |b| {
        let zipf = Zipfian::new(10_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| black_box(zipf.sample(&mut rng)));
    });
}

fn bench_server(c: &mut Criterion) {
    // 64 tx starts on a fresh coordinator per iteration. Every
    // StartTxReq leaves a live tx in the coordinator's table (the bench
    // never commits), so the seed's single-server `b.iter` version
    // measured lookups in a table that grew for the whole run.
    c.bench_function("wren_server_start_tx", |b| {
        b.iter_batched(
            || {
                let cfg = WrenConfig::new(1, 1);
                WrenServer::new(ServerId::new(0, 0), cfg, SkewedClock::perfect())
            },
            |mut server| {
                let mut out = Vec::new();
                for i in 1..=64u64 {
                    out.clear();
                    server.handle(
                        Dest::Client(ClientId(0)),
                        WrenMsg::StartTxReq {
                            lst: Timestamp::ZERO,
                            rst: Timestamp::ZERO,
                        },
                        i * 10,
                        &mut out,
                    );
                    black_box(&out);
                }
                server
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_wal(c: &mut Criterion) {
    use wren_core::{DurableLog, FsyncPolicy};
    use wren_protocol::RepTx;

    let batch: Vec<RepTx> = (0..32u64)
        .map(|i| RepTx {
            tx: TxId::new(ServerId::new(1, 0), i),
            rst: Timestamp::from_micros(i),
            writes: vec![(Key(i), bytes::Bytes::from(vec![0u8; 64]))],
        })
        .collect();

    // Buffered logging throughput: encode + append a 32-tx replication
    // batch and hit the commit point, with fsync off so the cost
    // measured is the codec and the write path, not the disk.
    c.bench_function("wal_append_batch", |b| {
        let dir = std::env::temp_dir().join(format!("wren-bench-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut log = DurableLog::open(&dir, FsyncPolicy::Off).unwrap().log;
        let mut ct = 0u64;
        b.iter(|| {
            ct += 10;
            log.log_remote_batch(1, true, Timestamp::from_micros(ct), black_box(&batch));
            log.commit_point().unwrap();
        });
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    });

    // The same batch under the durable default: every commit point is
    // an fsync, so this is the floor on acknowledged-write latency.
    c.bench_function("wal_append_batch_fsync", |b| {
        let dir =
            std::env::temp_dir().join(format!("wren-bench-walsync-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut log = DurableLog::open(&dir, FsyncPolicy::Always).unwrap().log;
        let mut ct = 0u64;
        b.iter(|| {
            ct += 10;
            log.log_remote_batch(1, true, Timestamp::from_micros(ct), black_box(&batch));
            log.commit_point().unwrap();
        });
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

fn bench_obs(c: &mut Criterion) {
    use wren_obs::Registry;

    // The per-sample cost the instrumentation adds to every hot path it
    // sits on (commit stages, WAL fsyncs, read slices): one branch-free
    // bucket index plus three relaxed atomics. The acceptance budget is
    // ~30 ns; anything near that is invisible next to a syscall.
    c.bench_function("hist_record", |b| {
        let registry = Registry::new();
        let hist = registry.histogram("bench_latency_micros");
        let mut v = 1u64;
        b.iter(|| {
            // Vary the value so records land across buckets, not on one
            // cache-hot counter.
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box(v >> 40));
        });
    });

    // Scraping cost: snapshotting a registry shaped like one partition
    // engine's (a dozen histograms plus counters/gauges). This runs per
    // scrape interval, not per operation, so milliseconds would be fine
    // — it comes in far under that.
    c.bench_function("registry_snapshot", |b| {
        let registry = Registry::new();
        for name in [
            "commit_prepare_micros",
            "commit_decide_micros",
            "commit_apply_micros",
            "read_slice_micros",
            "wal_fsync_micros",
            "wal_append_bytes",
            "checkpoint_micros",
            "replication_batch_txs",
            "replication_lag_micros",
            "visibility_lag_local_micros",
            "visibility_lag_remote_micros",
        ] {
            let h = registry.histogram(name);
            for i in 0..1_000u64 {
                h.record(i * 37 % 10_000);
            }
        }
        for name in ["slices_served", "keys_read", "tx_aborts_indoubt"] {
            registry.counter(name).add(12_345);
        }
        registry.gauge("visibility_lag_local_gauge_micros").set(42);
        b.iter(|| black_box(registry.snapshot()));
    });
}

criterion_group!(
    benches,
    bench_clocks,
    bench_storage,
    bench_sharded_store,
    bench_parallel_reads,
    bench_replicate_apply,
    bench_codec,
    bench_transport,
    bench_workload,
    bench_server,
    bench_wal,
    bench_obs
);
criterion_main!(benches);
