//! **Fig. 5a/5b**: throughput vs. average transaction latency when
//! transactions read from p=2 (a) and p=8 (b) partitions — 95:5 mix,
//! 3 DCs, 8 partitions.
//!
//! Paper result: Wren outperforms Cure and H-Cure with both small and
//! large transactions; higher p lowers everyone's peak throughput (more
//! partitions contacted per transaction).

use wren_bench::{banner, print_curve, sweep, Scale};
use wren_harness::{SystemKind, Topology};
use wren_workload::WorkloadSpec;

fn main() {
    let scale = Scale::from_env();
    let topology = Topology::aws(3, 8);

    for (fig, p) in [("Fig. 5a", 2usize), ("Fig. 5b", 8usize)] {
        let workload = WorkloadSpec {
            partitions_per_tx: p,
            ..WorkloadSpec::default()
        };
        banner(
            fig,
            &format!("throughput vs average TX latency (p={p}, 95:5, 3 DCs, 8 partitions)"),
        );
        for system in SystemKind::ALL {
            let curve = sweep(system, scale, &topology, &workload, 44);
            print_curve(system.label(), &curve);
        }
    }
}
