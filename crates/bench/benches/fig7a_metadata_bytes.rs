//! **Fig. 7a**: bytes exchanged for update replication and for the
//! stabilization protocol, normalized to Cure at the same throughput —
//! default workload, 3 and 5 DCs.
//!
//! Paper result: with 5 DCs Wren exchanges up to 37% fewer replication
//! bytes and up to 60% fewer stabilization bytes, because updates,
//! snapshots and stabilization messages carry 2 timestamps in Wren versus
//! M (one per DC) in Cure.

use wren_bench::{banner, spec, Scale};
use wren_harness::{run, SystemKind, Topology};
use wren_workload::WorkloadSpec;

fn main() {
    let scale = Scale::from_env();
    let threads = *scale.thread_levels.last().unwrap_or(&4);

    banner(
        "Fig. 7a",
        "replication + stabilization bytes normalized w.r.t. Cure (default workload)",
    );
    println!(
        "    {:>4}  {:>12}  {:>18}  {:>20}",
        "DCs", "system", "repl bytes/tx", "stabilization B/s"
    );
    for dcs in [3u8, 5] {
        let topology = Topology::aws(dcs, 8);
        let workload = WorkloadSpec::default();
        let mut per_system = Vec::new();
        for system in [SystemKind::Wren, SystemKind::Cure] {
            let r = run(
                system,
                &spec(scale, topology.clone(), workload.clone(), threads, 47),
            );
            // Normalize replication per committed transaction (the paper
            // normalizes at equal throughput) and stabilization per second
            // (it is load-independent gossip).
            let repl_per_tx = r.bytes.replication as f64 / r.committed.max(1) as f64;
            let stab_per_s = r.bytes.stabilization as f64 / r.duration_secs;
            println!(
                "    {:>4}  {:>12}  {:>18.1}  {:>20.0}",
                dcs,
                system.label(),
                repl_per_tx,
                stab_per_s
            );
            per_system.push((system, repl_per_tx, stab_per_s));
        }
        let (_, wren_repl, wren_stab) = per_system[0];
        let (_, cure_repl, cure_stab) = per_system[1];
        println!(
            "    {:>4}  normalized: replication {:.2}, stabilization {:.2}  (Cure = 1.0)",
            dcs,
            wren_repl / cure_repl,
            wren_stab / cure_stab
        );
        assert!(
            wren_repl < cure_repl && wren_stab < cure_stab,
            "Wren metadata must be cheaper than Cure's"
        );
    }
}
