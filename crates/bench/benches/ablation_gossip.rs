//! **Ablation**: BiST dissemination topology — all-to-all broadcast vs.
//! the k-ary aggregation tree the paper mentions (§IV-B, "partitions
//! within a DC are organized as a tree to reduce communication costs").
//!
//! Expectation: the tree cuts stabilization traffic from O(N²) to O(N)
//! messages per round at the cost of `depth` extra rounds of stabilization
//! lag, which shows up as slightly higher local update visibility. Both
//! topologies must leave throughput/latency and correctness untouched.

use wren_bench::{banner, spec, Scale};
use wren_harness::{run, SystemKind, Topology};
use wren_workload::WorkloadSpec;

fn main() {
    let scale = Scale::from_env();
    let threads = scale.thread_levels[scale.thread_levels.len() / 2];

    banner(
        "Ablation",
        "BiST topology: broadcast vs aggregation tree (3 DCs, 16 partitions, 95:5)",
    );
    println!(
        "    {:>10}  {:>12}  {:>17}  {:>14}  {:>12}",
        "fanout", "ktx/s", "stab bytes/s", "local vis ms", "mean lat ms"
    );
    for fanout in [0u16, 2, 4] {
        let mut topology = Topology::aws(3, 16);
        topology.gossip_fanout = fanout;
        topology.visibility_sample_every = 8;
        let workload = WorkloadSpec::default();
        let r = run(
            SystemKind::Wren,
            &spec(scale, topology, workload, threads, 50),
        );
        let local_vis = if r.visibility_local.is_empty() {
            0.0
        } else {
            r.visibility_local.iter().sum::<u64>() as f64
                / r.visibility_local.len() as f64
                / 1_000.0
        };
        println!(
            "    {:>10}  {:>12.2}  {:>17.0}  {:>14.2}  {:>12.2}",
            if fanout == 0 { "broadcast".to_string() } else { format!("tree-{fanout}") },
            r.throughput / 1000.0,
            r.bytes.stabilization as f64 / r.duration_secs,
            local_vis,
            r.latency.mean_ms,
        );
        assert_eq!(r.blocking.blocked_txs, 0, "Wren never blocks, any topology");
    }
    println!();
    println!(
        "  tree mode trades a few ms of extra snapshot lag for an order of magnitude\n  \
         less stabilization traffic at 16 partitions."
    );
}
