//! **Fig. 3a/3b**: throughput vs. average transaction latency and mean
//! blocking time, default workload — 3 DCs, 8 partitions/DC, 4 partitions
//! per transaction, 95:5 r:w ratio.
//!
//! Paper result: Wren achieves up to 2.33× lower response times and up to
//! 25% higher throughput than Cure; H-Cure lands in between; Cure/H-Cure
//! mean blocking time is ~2 ms at low load and ~4 ms near saturation,
//! while Wren never blocks.

use wren_bench::{banner, print_blocking, print_curve, sweep, Scale};
use wren_harness::{SystemKind, Topology};
use wren_workload::WorkloadSpec;

fn main() {
    let scale = Scale::from_env();
    let topology = Topology::aws(3, 8);
    let workload = WorkloadSpec::default(); // 95:5, p = 4

    banner(
        "Fig. 3a",
        "throughput vs average TX latency (3 DCs, 8 partitions, p=4, 95:5)",
    );
    let mut curves = Vec::new();
    for system in SystemKind::ALL {
        let curve = sweep(system, scale, &topology, &workload, 42);
        print_curve(system.label(), &curve);
        let points: Vec<_> = curve
            .iter()
            .map(|p| (p.threads, p.result.clone()))
            .collect();
        if let Ok(path) = wren_harness::csv::write_curve("fig3a", system.label(), &points) {
            println!("    (csv: {})", path.display());
        }
        curves.push((system, curve));
    }

    banner(
        "Fig. 3b",
        "mean blocking time of blocked transactions (Wren never blocks)",
    );
    for (system, curve) in &curves {
        if *system != SystemKind::Wren {
            print_blocking(system.label(), curve);
        }
    }
    let wren = &curves
        .iter()
        .find(|(s, _)| *s == SystemKind::Wren)
        .expect("wren curve")
        .1;
    let blocked: u64 = wren.iter().map(|p| p.result.blocking.blocked_txs).sum();
    println!("  Wren: blocked transactions across the whole sweep = {blocked}");
    assert_eq!(blocked, 0, "Wren must never block a read");
}
