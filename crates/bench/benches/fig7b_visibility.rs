//! **Fig. 7b**: CDF of update-visibility latency, 3 DCs.
//!
//! Paper result: Cure makes local updates visible immediately; Wren's
//! local visibility lags by a few ms (the older, fully-installed
//! snapshot); Wren's remote visibility is slightly higher than Cure's
//! (68 vs 59 ms worst case, ≈15%) because the RST tracks the minimum over
//! *all* remote DCs while Cure tracks each origin separately.

use wren_bench::{banner, spec, Scale};
use wren_harness::{cdf, run, SystemKind, Topology};
use wren_workload::WorkloadSpec;

fn main() {
    let scale = Scale::from_env();
    let threads = scale.thread_levels[scale.thread_levels.len() / 2];

    let mut topology = Topology::aws(3, 8);
    topology.visibility_sample_every = 2;
    let workload = WorkloadSpec::default();

    banner("Fig. 7b", "CDF of update visibility latency (3 DCs)");

    let wren = run(
        SystemKind::Wren,
        &spec(scale, topology.clone(), workload.clone(), threads, 48),
    );
    let cure = run(
        SystemKind::Cure,
        &spec(scale, topology.clone(), workload.clone(), threads, 48),
    );

    let series: [(&str, &[u64]); 4] = [
        ("Wren local (L)", &wren.visibility_local),
        ("Wren remote (R)", &wren.visibility_remote),
        ("Cure local", &cure.visibility_local),
        ("Cure remote (R)", &cure.visibility_remote),
    ];

    for (label, samples) in series {
        let slug = label
            .to_lowercase()
            .replace([' ', '(', ')'], "_");
        let _ = wren_harness::csv::write_cdf("fig7b", &slug, samples);
        let curve = cdf(samples, 10);
        println!("  {label}: {} samples", samples.len());
        print!("    ");
        for (value, frac) in &curve {
            print!("p{:.0}={:.1}ms ", frac * 100.0, *value as f64 / 1000.0);
        }
        println!();
    }

    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64 / 1000.0;
    println!();
    println!(
        "  means: Wren local {:.1} ms | Wren remote {:.1} ms | Cure local {:.1} ms | Cure remote {:.1} ms",
        mean(&wren.visibility_local),
        mean(&wren.visibility_remote),
        mean(&cure.visibility_local),
        mean(&cure.visibility_remote),
    );
    println!(
        "  remote visibility overhead of Wren vs Cure: {:.1}%",
        (mean(&wren.visibility_remote) / mean(&cure.visibility_remote) - 1.0) * 100.0
    );
}
