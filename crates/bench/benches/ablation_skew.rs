//! **Ablation**: decomposing Cure's read blocking into its clock-skew and
//! pending-transaction components by sweeping the maximum NTP-style clock
//! offset.
//!
//! Expectation (paper §V-B): Cure's blocking grows with skew (a laggard
//! partition cannot install a fast coordinator's snapshot until its
//! physical clock catches up); H-Cure's does not (its hybrid clock absorbs
//! snapshot timestamps), leaving only the pending-transaction component;
//! Wren never blocks at any skew.

use wren_bench::{banner, spec, Scale};
use wren_harness::{run, SystemKind, Topology};
use wren_workload::WorkloadSpec;

fn main() {
    let scale = Scale::from_env();
    let threads = scale.thread_levels[scale.thread_levels.len() / 2];

    banner(
        "Ablation",
        "mean blocking time vs. maximum clock skew (3 DCs, 8 partitions, 95:5)",
    );
    println!(
        "    {:>10}  {:>14}  {:>14}  {:>12}",
        "skew ±µs", "Cure block ms", "H-Cure block ms", "Wren blocked"
    );
    for skew in [0i64, 500, 1_000, 2_000, 4_000] {
        let mut topology = Topology::aws(3, 8);
        topology.skew_max_micros = skew;
        let workload = WorkloadSpec::default();
        let results: Vec<_> = [SystemKind::Cure, SystemKind::HCure, SystemKind::Wren]
            .iter()
            .map(|s| run(*s, &spec(scale, topology.clone(), workload.clone(), threads, 49)))
            .collect();
        println!(
            "    {:>10}  {:>14.3}  {:>14.3}  {:>12}",
            skew,
            results[0].blocking.mean_block_ms,
            results[1].blocking.mean_block_ms,
            results[2].blocking.blocked_txs,
        );
        assert_eq!(results[2].blocking.blocked_txs, 0);
    }
    println!();
    println!(
        "  Cure's column should grow with skew; H-Cure's should stay (nearly) flat —\n  \
         the residual is the pending-transaction component both share."
    );
}
