//! Shared helpers for the per-figure benchmark harness.
//!
//! Every figure of the paper's evaluation (§V) has a bench target under
//! `benches/` (all `harness = false`). Each prints the same rows/series
//! the paper plots. Two scales are supported:
//!
//! * **quick** (default): shortened windows and fewer thread levels, so
//!   `cargo bench --workspace` completes in minutes;
//! * **full** (`WREN_FULL=1`): the paper's deployment sizes and a full
//!   1/2/4/8/16-thread sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use wren_harness::{run, ExperimentSpec, RunResult, SystemKind, Topology};
use wren_workload::WorkloadSpec;

/// Scale parameters for a bench invocation.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Warm-up window (µs).
    pub warmup_micros: u64,
    /// Measurement window (µs).
    pub measure_micros: u64,
    /// Closed-loop sessions per client process, one sweep point each.
    pub thread_levels: &'static [u16],
    /// Keys per partition.
    pub keys_per_partition: u64,
}

impl Scale {
    /// Reads the scale from the environment (`WREN_FULL=1` for
    /// paper-scale sweeps).
    pub fn from_env() -> Self {
        if std::env::var("WREN_FULL").map(|v| v == "1").unwrap_or(false) {
            Scale {
                warmup_micros: 2_000_000,
                measure_micros: 10_000_000,
                thread_levels: &[1, 2, 4, 8, 16],
                keys_per_partition: 10_000,
            }
        } else {
            Scale {
                warmup_micros: 400_000,
                measure_micros: 1_600_000,
                thread_levels: &[1, 4, 16],
                keys_per_partition: 2_000,
            }
        }
    }
}

/// Builds the experiment spec for a figure: paper defaults with the
/// figure's overrides applied.
pub fn spec(
    scale: Scale,
    topology: Topology,
    workload: WorkloadSpec,
    threads: u16,
    seed: u64,
) -> ExperimentSpec {
    let mut workload = workload;
    workload.keys_per_partition = scale.keys_per_partition;
    ExperimentSpec {
        topology,
        workload,
        threads_per_client: threads,
        warmup_micros: scale.warmup_micros,
        measure_micros: scale.measure_micros,
        seed,
    }
}

/// One point of a latency-throughput curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Threads per client process at this point.
    pub threads: u16,
    /// The run's metrics.
    pub result: RunResult,
}

/// Sweeps the closed-loop thread count for one system, producing the
/// latency-throughput curve of Figs. 3–5.
pub fn sweep(
    system: SystemKind,
    scale: Scale,
    topology: &Topology,
    workload: &WorkloadSpec,
    seed: u64,
) -> Vec<CurvePoint> {
    scale
        .thread_levels
        .iter()
        .map(|&threads| CurvePoint {
            threads,
            result: run(
                system,
                &spec(scale, topology.clone(), workload.clone(), threads, seed),
            ),
        })
        .collect()
}

/// Prints a latency-throughput curve in the paper's axes (throughput in
/// 1000×TX/s, mean latency in ms).
pub fn print_curve(label: &str, curve: &[CurvePoint]) {
    println!("  {label}:");
    println!(
        "    {:>7}  {:>12}  {:>10}  {:>9}  {:>9}",
        "threads", "ktx/s", "mean ms", "p95 ms", "p99 ms"
    );
    for p in curve {
        println!(
            "    {:>7}  {:>12.2}  {:>10.2}  {:>9.2}  {:>9.2}",
            p.threads,
            p.result.throughput / 1000.0,
            p.result.latency.mean_ms,
            p.result.latency.p95_ms,
            p.result.latency.p99_ms,
        );
    }
}

/// Prints a blocking-time curve (Fig. 3b's axes).
pub fn print_blocking(label: &str, curve: &[CurvePoint]) {
    println!("  {label}:");
    println!(
        "    {:>7}  {:>12}  {:>14}  {:>12}",
        "threads", "ktx/s", "mean block ms", "blocked frac"
    );
    for p in curve {
        println!(
            "    {:>7}  {:>12.2}  {:>14.3}  {:>12.3}",
            p.threads,
            p.result.throughput / 1000.0,
            p.result.blocking.mean_block_ms,
            p.result.blocking.blocked_fraction,
        );
    }
}

/// Peak throughput over a sweep (TX/s).
pub fn peak_throughput(curve: &[CurvePoint]) -> f64 {
    curve
        .iter()
        .map(|p| p.result.throughput)
        .fold(0.0, f64::max)
}

/// Prints a figure banner.
pub fn banner(figure: &str, caption: &str) {
    println!();
    println!("=== {figure} — {caption} ===");
}
