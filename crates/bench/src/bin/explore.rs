//! `explore` — run one custom experiment from the command line.
//!
//! A downstream user's entry point for poking at the design space without
//! writing code:
//!
//! ```bash
//! cargo run --release -p wren-bench --bin explore -- \
//!     --system wren --dcs 3 --partitions 8 --threads 8 \
//!     --mix 50:50 --spread 4 --seconds 2 --skew-us 2000 --fanout 0
//! ```
//!
//! Prints throughput, latency percentiles, blocking, wire bytes and (if
//! `--visibility` is set) update-visibility statistics.

use wren_harness::{run, ExperimentSpec, SystemKind, Topology};
use wren_workload::{TxMix, WorkloadSpec};

struct Args {
    system: SystemKind,
    dcs: u8,
    partitions: u16,
    threads: u16,
    mix: TxMix,
    spread: usize,
    seconds: f64,
    skew_us: i64,
    fanout: u16,
    seed: u64,
    visibility: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            system: SystemKind::Wren,
            dcs: 3,
            partitions: 8,
            threads: 4,
            mix: TxMix::R95_W5,
            spread: 4,
            seconds: 2.0,
            skew_us: 2_000,
            fanout: 0,
            seed: 42,
            visibility: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: explore [--system wren|cure|hcure] [--dcs M] [--partitions N]\n\
         \u{20}             [--threads T] [--mix 95:5|90:10|50:50] [--spread P]\n\
         \u{20}             [--seconds S] [--skew-us U] [--fanout K] [--seed X] [--visibility]"
    );
    std::process::exit(2);
}

fn parse() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--system" => {
                args.system = match val().to_lowercase().as_str() {
                    "wren" => SystemKind::Wren,
                    "cure" => SystemKind::Cure,
                    "hcure" | "h-cure" => SystemKind::HCure,
                    _ => usage(),
                }
            }
            "--dcs" => args.dcs = val().parse().unwrap_or_else(|_| usage()),
            "--partitions" => args.partitions = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = val().parse().unwrap_or_else(|_| usage()),
            "--mix" => {
                args.mix = match val().as_str() {
                    "95:5" => TxMix::R95_W5,
                    "90:10" => TxMix::R90_W10,
                    "50:50" => TxMix::R50_W50,
                    _ => usage(),
                }
            }
            "--spread" => args.spread = val().parse().unwrap_or_else(|_| usage()),
            "--seconds" => args.seconds = val().parse().unwrap_or_else(|_| usage()),
            "--skew-us" => args.skew_us = val().parse().unwrap_or_else(|_| usage()),
            "--fanout" => args.fanout = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--visibility" => args.visibility = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let a = parse();
    let mut topology = Topology::aws(a.dcs, a.partitions);
    topology.skew_max_micros = a.skew_us;
    topology.gossip_fanout = a.fanout;
    if a.visibility {
        topology.visibility_sample_every = 4;
    }
    let spec = ExperimentSpec {
        topology,
        workload: WorkloadSpec {
            mix: a.mix,
            partitions_per_tx: a.spread.min(a.partitions as usize),
            ..WorkloadSpec::default()
        },
        threads_per_client: a.threads,
        warmup_micros: (a.seconds * 0.25 * 1e6) as u64,
        measure_micros: (a.seconds * 1e6) as u64,
        seed: a.seed,
    };

    eprintln!(
        "running {} on {} DCs x {} partitions, {} threads/client, {} mix, p={} ...",
        a.system.label(),
        a.dcs,
        a.partitions,
        a.threads,
        a.mix.label(),
        a.spread,
    );
    let r = run(a.system, &spec);

    println!("system:            {}", a.system.label());
    println!("committed:         {}", r.committed);
    println!("throughput:        {:.1} tx/s", r.throughput);
    println!(
        "latency:           mean {:.2} ms | p50 {:.2} | p95 {:.2} | p99 {:.2}",
        r.latency.mean_ms, r.latency.p50_ms, r.latency.p95_ms, r.latency.p99_ms
    );
    println!(
        "blocking:          {} txs ({:.1}%), mean {:.3} ms",
        r.blocking.blocked_txs,
        r.blocking.blocked_fraction * 100.0,
        r.blocking.mean_block_ms
    );
    println!(
        "bytes:             repl {} | heartbeat {} | stabilization {} | client {} | intra-DC {}",
        r.bytes.replication,
        r.bytes.heartbeat,
        r.bytes.stabilization,
        r.bytes.client_server,
        r.bytes.intra_dc
    );
    println!("server CPU:        {:.1}%", r.server_cpu_utilization * 100.0);
    if a.visibility {
        let mean = |v: &[u64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<u64>() as f64 / v.len() as f64 / 1000.0
            }
        };
        println!(
            "visibility:        local {:.1} ms ({} samples) | remote {:.1} ms ({} samples)",
            mean(&r.visibility_local),
            r.visibility_local.len(),
            mean(&r.visibility_remote),
            r.visibility_remote.len()
        );
    }
}
