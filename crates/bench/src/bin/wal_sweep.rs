//! `wal_sweep` — the WAL group-commit amortization curve.
//!
//! Runs the same closed-loop TCP workload (`run_rt`) over a durable
//! cluster under each fsync policy: `Always` (every commit point pays
//! its own fsync — the durability floor), a `Window { max_delay }`
//! grid (commit points share fsyncs within the window; acknowledgement
//! waits for the window's sync, trading latency for fewer disk
//! barriers), and `Off` as the no-durability ceiling. Prints a
//! markdown table ready for `docs/wal_group_commit.md`.
//!
//! ```bash
//! cargo run --release -p wren-bench --bin wal_sweep
//! # quicker, noisier:
//! WAL_SWEEP_TXS=100 cargo run --release -p wren-bench --bin wal_sweep
//! ```

use std::time::Duration;
use wren_harness::{run_rt, FsyncPolicy, RtSpec, RtTransport};

fn spec(policy: Option<FsyncPolicy>, txs: usize) -> RtSpec {
    RtSpec {
        dcs: 1,
        partitions: 2,
        read_workers: 2,
        transport: RtTransport::Tcp,
        sessions_per_dc: 8,
        txs_per_session: txs,
        keys: 256,
        reads_per_tx: 1,
        writes_per_tx: 3,
        fsync: policy,
    }
}

fn main() {
    let txs: usize = std::env::var("WAL_SWEEP_TXS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);

    let window = |micros: u64| FsyncPolicy::Window {
        max_delay: Duration::from_micros(micros),
        max_bytes: 1 << 20,
    };
    let grid: Vec<(String, Option<FsyncPolicy>)> = vec![
        ("Always".into(), Some(FsyncPolicy::Always)),
        ("Window 50us".into(), Some(window(50))),
        ("Window 200us".into(), Some(window(200))),
        ("Window 1ms".into(), Some(window(1_000))),
        ("Window 5ms".into(), Some(window(5_000))),
        ("Off (ceiling)".into(), Some(FsyncPolicy::Off)),
        ("No WAL".into(), None),
    ];

    eprintln!(
        "wal_sweep: 8 sessions x {txs} txs, 3 writes/tx, TCP reactor fabric, 2 partitions"
    );
    println!("| policy | txs/s | mean ms | p50 ms | p99 ms | p99.9 ms |");
    println!("|---|---|---|---|---|---|");
    for (label, policy) in grid {
        // One warmup run keeps page-cache/allocator effects out of the
        // first row's numbers.
        let _ = run_rt(&spec(policy, txs / 4));
        let r = run_rt(&spec(policy, txs));
        println!(
            "| {label} | {:.0} | {:.3} | {:.3} | {:.3} | {:.3} |",
            r.throughput, r.mean_latency_ms, r.p50_latency_ms, r.p99_latency_ms, r.p999_latency_ms
        );
    }
}
