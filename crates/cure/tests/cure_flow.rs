//! End-to-end flow tests for the Cure/H-Cure baselines, with emphasis on
//! the behaviour that motivates Wren: reads that block.

use bytes::Bytes;
use wren_clock::SkewedClock;
use wren_cure::{CureClient, CureConfig, CureServer};
use wren_protocol::{ClientId, CureMsg, Dest, Key, Outgoing, ServerId, Value};

/// Synchronous pump over a mesh of Cure servers with per-server clocks.
struct Pump {
    cfg: CureConfig,
    servers: Vec<CureServer>,
    to_clients: Vec<(ClientId, CureMsg)>,
    now: u64,
}

impl Pump {
    fn new(cfg: CureConfig, skews: &[i64]) -> Self {
        let mut servers = Vec::new();
        for dc in 0..cfg.n_dcs {
            for p in 0..cfg.n_partitions {
                let idx = dc as usize * cfg.n_partitions as usize + p as usize;
                let skew = skews.get(idx).copied().unwrap_or(0);
                servers.push(CureServer::new(
                    ServerId::new(dc, p),
                    cfg,
                    SkewedClock::new(skew, 0.0),
                ));
            }
        }
        Pump {
            cfg,
            servers,
            to_clients: Vec::new(),
            now: 1_000, // start past zero so skewed clocks stay positive
        }
    }

    fn idx(&self, id: ServerId) -> usize {
        id.dc.index() * self.cfg.n_partitions as usize + id.partition.index()
    }

    fn server(&mut self, id: ServerId) -> &mut CureServer {
        let i = self.idx(id);
        &mut self.servers[i]
    }

    fn drain(&mut self, mut pending: Vec<(Dest, ServerId, CureMsg)>) {
        while let Some((from, to_server, msg)) = pending.pop() {
            let now = self.now;
            let mut out = Vec::new();
            let i = self.idx(to_server);
            self.servers[i].handle(from, msg, now, &mut out);
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => pending.push((Dest::Server(to_server), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
    }

    #[allow(clippy::wrong_self_convention)] // "from" = message provenance, not conversion
    fn from_client(&mut self, client: ClientId, coordinator: ServerId, msg: CureMsg) {
        self.drain(vec![(Dest::Client(client), coordinator, msg)]);
    }

    fn try_client_resp(&mut self, client: ClientId) -> Option<CureMsg> {
        let pos = self.to_clients.iter().position(|(c, _)| *c == client)?;
        Some(self.to_clients.remove(pos).1)
    }

    fn client_resp(&mut self, client: ClientId) -> CureMsg {
        self.try_client_resp(client).expect("no response for client")
    }

    fn tick_replication(&mut self, advance: u64) {
        self.now += advance;
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            self.servers[i].on_replication_tick(self.now, &mut out);
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    fn tick_gossip(&mut self, advance: u64) {
        self.now += advance;
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            self.servers[i].on_gossip_tick(self.now, &mut out);
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    fn stabilize(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.tick_replication(1_000);
            self.tick_gossip(1_000);
        }
    }
}

fn val(s: &str) -> Value {
    Bytes::copy_from_slice(s.as_bytes())
}

fn run_tx(
    pump: &mut Pump,
    client: &mut CureClient,
    reads: &[Key],
    writes: &[(Key, &str)],
) -> Vec<(Key, Option<Value>)> {
    let coord = client.coordinator();
    let id = client.id();
    pump.from_client(id, coord, client.start());
    client.on_start_resp(pump.client_resp(id));

    let mut results = Vec::new();
    if !reads.is_empty() {
        let outcome = client.read(reads);
        results.extend(outcome.local.clone());
        if let Some(req) = outcome.request {
            pump.from_client(id, coord, req);
            // The read may block server-side; pump ticks until it answers.
            let mut guard = 0;
            loop {
                if let Some(resp) = pump.try_client_resp(id) {
                    results.extend(client.on_read_resp(resp));
                    break;
                }
                pump.tick_replication(500);
                guard += 1;
                assert!(guard < 10_000, "read never unblocked");
            }
        }
    }
    if !writes.is_empty() {
        client.write(writes.iter().map(|(k, v)| (*k, val(v))));
    }
    pump.from_client(id, coord, client.commit());
    client.on_commit_resp(pump.client_resp(id));
    results
}

fn value_of(results: &[(Key, Option<Value>)], key: Key) -> Option<Value> {
    results
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.clone())
        .expect("key missing")
}

fn keys_on_distinct_partitions(n_partitions: u16, n: usize) -> Vec<Key> {
    let mut keys = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut k = 0u64;
    while keys.len() < n {
        let key = Key(k);
        if seen.insert(key.partition(n_partitions)) {
            keys.push(key);
        }
        k += 1;
    }
    keys
}

#[test]
fn write_then_read_sees_own_writes_without_cache() {
    // Cure's snapshot (coordinator's current clock) covers the client's own
    // commit — the read may block, but it returns the fresh value.
    let mut pump = Pump::new(CureConfig::cure(1, 2), &[]);
    let coord = ServerId::new(0, 0);
    let mut c = CureClient::new(ClientId(1), coord, 1);
    let keys = keys_on_distinct_partitions(2, 2);

    run_tx(&mut pump, &mut c, &[], &[(keys[0], "v1"), (keys[1], "v1")]);
    let results = run_tx(&mut pump, &mut c, &keys, &[]);
    assert_eq!(value_of(&results, keys[0]), Some(val("v1")));
    assert_eq!(value_of(&results, keys[1]), Some(val("v1")));
}

#[test]
fn read_blocks_on_uninstalled_snapshot_then_unblocks() {
    let mut pump = Pump::new(CureConfig::cure(1, 2), &[]);
    let coord = ServerId::new(0, 0);
    let mut writer = CureClient::new(ClientId(1), coord, 1);
    let mut reader = CureClient::new(ClientId(2), coord, 1);
    let keys = keys_on_distinct_partitions(2, 2);
    let off_coord_key = keys
        .iter()
        .find(|k| k.partition(2) != coord.partition)
        .copied()
        .unwrap();

    // Commit a write but do NOT tick: it sits in the committed list, the
    // version clock cannot advance past it.
    run_tx(&mut pump, &mut writer, &[], &[(off_coord_key, "w")]);

    // A new transaction gets a snapshot at the coordinator's current clock
    // — ahead of what the cohort has installed. Its read must block.
    pump.now += 10;
    let id = reader.id();
    pump.from_client(id, coord, reader.start());
    reader.on_start_resp(pump.client_resp(id));
    let outcome = reader.read(&[off_coord_key]);
    pump.from_client(id, coord, outcome.request.unwrap());

    let cohort = ServerId::new(0, off_coord_key.partition(2).0);
    assert!(
        pump.server(cohort).pending_reads() > 0,
        "read should be blocked at the cohort"
    );
    assert!(pump.try_client_resp(id).is_none(), "no response while blocked");

    // Replication ticks apply the commit and advance the version clock;
    // the pending read drains.
    pump.tick_replication(1_000);
    pump.tick_replication(1_000);
    let resp = pump.client_resp(id);
    let got = reader.on_read_resp(resp);
    assert_eq!(got[0].1, Some(val("w")), "unblocked read returns the fresh value");

    let stats = pump.server(cohort).stats();
    assert!(stats.slices_blocked >= 1);
    assert!(stats.total_block_micros > 0);
    assert!(!pump.server(cohort).blocked_samples().is_empty());

    pump.from_client(id, coord, reader.commit());
    reader.on_commit_resp(pump.client_resp(id));
}

#[test]
fn clock_skew_blocks_cure_but_not_hcure() {
    // Coordinator's clock is 2 ms ahead of the cohort's. A fresh snapshot
    // takes the coordinator's clock; in Cure the cohort cannot install it
    // until its own physical clock catches up, even with nothing pending.
    let skews = &[2_000, 0]; // partition 0 fast, partition 1 slow
    let run = |cfg: CureConfig| -> (bool, u64) {
        let mut pump = Pump::new(cfg, skews);
        let coord = ServerId::new(0, 0);
        let mut reader = CureClient::new(ClientId(1), coord, 1);
        let keys = keys_on_distinct_partitions(2, 2);
        let slow_key = keys
            .iter()
            .find(|k| k.partition(2).0 == 1)
            .copied()
            .unwrap();

        // Let both partitions tick once so version clocks are initialized.
        pump.stabilize(1);

        let id = reader.id();
        pump.from_client(id, coord, reader.start());
        reader.on_start_resp(pump.client_resp(id));
        let outcome = reader.read(&[slow_key]);
        pump.from_client(id, coord, outcome.request.unwrap());

        let cohort = ServerId::new(0, 1);
        let blocked = pump.server(cohort).pending_reads() > 0;

        // Tick in small steps until the response arrives; measure how long.
        let start = pump.now;
        let mut waited = 0;
        while pump.try_client_resp(id).is_none() {
            pump.tick_replication(100);
            waited = pump.now - start;
            assert!(waited < 1_000_000, "never unblocked");
        }
        (blocked, waited)
    };

    let (cure_blocked, cure_wait) = run(CureConfig::cure(1, 2));
    let (_hcure_blocked, hcure_wait) = run(CureConfig::h_cure(1, 2));

    assert!(cure_blocked, "Cure must block under clock skew");
    assert!(
        cure_wait >= 1_500,
        "Cure should wait out most of the 2 ms skew, waited {cure_wait} µs"
    );
    assert!(
        hcure_wait <= 300,
        "H-Cure should unblock within a tick, waited {hcure_wait} µs"
    );
}

#[test]
fn geo_replication_and_gss_visibility() {
    let mut pump = Pump::new(CureConfig::cure(2, 2), &[]);
    let mut alice = CureClient::new(ClientId(1), ServerId::new(0, 0), 2);
    let mut bob = CureClient::new(ClientId(2), ServerId::new(1, 0), 2);
    let keys = keys_on_distinct_partitions(2, 2);

    run_tx(&mut pump, &mut alice, &[], &[(keys[0], "geo")]);
    pump.stabilize(4);

    let results = run_tx(&mut pump, &mut bob, &[keys[0]], &[]);
    assert_eq!(value_of(&results, keys[0]), Some(val("geo")));
}

#[test]
fn atomicity_across_partitions() {
    let mut pump = Pump::new(CureConfig::cure(1, 4), &[]);
    let coord = ServerId::new(0, 0);
    let mut writer = CureClient::new(ClientId(1), coord, 1);
    let mut reader = CureClient::new(ClientId(2), coord, 1);
    let keys = keys_on_distinct_partitions(4, 4);

    let refs: Vec<(Key, &str)> = keys.iter().map(|k| (*k, "atomic")).collect();
    run_tx(&mut pump, &mut writer, &[], &refs);

    for _ in 0..3 {
        let results = run_tx(&mut pump, &mut reader, &keys, &[]);
        let seen: Vec<bool> = keys
            .iter()
            .map(|k| value_of(&results, *k).is_some())
            .collect();
        assert!(
            seen.iter().all(|s| *s) || seen.iter().all(|s| !*s),
            "atomicity violated: {seen:?}"
        );
        pump.stabilize(1);
    }
}

#[test]
fn gc_prunes_overwritten_versions() {
    let mut pump = Pump::new(CureConfig::cure(1, 1), &[]);
    let coord = ServerId::new(0, 0);
    let mut c = CureClient::new(ClientId(1), coord, 1);

    for i in 0..8 {
        let v = format!("v{i}");
        let id = c.id();
        pump.from_client(id, coord, c.start());
        c.on_start_resp(pump.client_resp(id));
        c.write([(Key(0), val(&v))]);
        pump.from_client(id, coord, c.commit());
        c.on_commit_resp(pump.client_resp(id));
        pump.stabilize(1);
    }
    let before = pump.server(coord).store().stats().versions;

    // GC gossip + prune.
    pump.now += 1_000;
    let now = pump.now;
    let mut out = Vec::new();
    pump.server(coord).on_gc_tick(now, &mut out);
    pump.now += 1_000;
    let now = pump.now;
    let mut out2 = Vec::new();
    pump.server(coord).on_gc_tick(now, &mut out2);

    let after = pump.server(coord).store().stats().versions;
    assert!(after < before, "GC must prune ({before} -> {after})");

    let results = run_tx(&mut pump, &mut c, &[Key(0)], &[]);
    assert_eq!(value_of(&results, Key(0)), Some(val("v7")));
}

#[test]
fn wren_never_blocks_where_cure_does() {
    // Control experiment mirroring `read_blocks_on_uninstalled_snapshot`:
    // the same sequence against Wren's server leaves nothing pending.
    use wren_core::{WrenClient, WrenConfig, WrenServer};
    use wren_protocol::WrenMsg;

    let cfg = WrenConfig::new(1, 2);
    let mut servers: Vec<WrenServer> = (0..2)
        .map(|p| WrenServer::new(ServerId::new(0, p), cfg, SkewedClock::perfect()))
        .collect();
    let coord = ServerId::new(0, 0);
    let mut writer = WrenClient::new(ClientId(1), coord);
    let mut reader = WrenClient::new(ClientId(2), coord);

    let route = |servers: &mut Vec<WrenServer>,
                     from: Dest,
                     to: ServerId,
                     msg: WrenMsg,
                     to_clients: &mut Vec<(ClientId, WrenMsg)>| {
        let mut queue = vec![(from, to, msg)];
        while let Some((from, to, msg)) = queue.pop() {
            let mut out = Vec::new();
            servers[to.partition.index()].handle(from, msg, 0, &mut out);
            for Outgoing { to: dest, msg } in out {
                match dest {
                    Dest::Server(s) => queue.push((Dest::Server(to), s, msg)),
                    Dest::Client(c) => to_clients.push((c, msg)),
                }
            }
        }
    };

    let mut inbox = Vec::new();
    // Writer commits to partition 1; nothing is applied (no ticks).
    route(&mut servers, Dest::Client(writer.id()), coord, writer.start(), &mut inbox);
    writer.on_start_resp(inbox.pop().unwrap().1);
    writer.write([(Key(1), val("w"))]);
    route(&mut servers, Dest::Client(writer.id()), coord, writer.commit(), &mut inbox);
    writer.on_commit_resp(inbox.pop().unwrap().1);

    // Reader's transaction: the read completes IMMEDIATELY (sees the older
    // snapshot), no queueing anywhere — Wren's nonblocking property.
    route(&mut servers, Dest::Client(reader.id()), coord, reader.start(), &mut inbox);
    reader.on_start_resp(inbox.pop().unwrap().1);
    let outcome = reader.read(&[Key(1)]);
    if let Some(req) = outcome.request {
        route(&mut servers, Dest::Client(reader.id()), coord, req, &mut inbox);
    }
    assert!(
        inbox.iter().any(|(c, _)| *c == reader.id()),
        "Wren read must complete synchronously without any tick"
    );
}
