use std::collections::BTreeMap;
use wren_clock::{Timestamp, VersionVector};

/// Caps retained samples so long experiments stay bounded.
const MAX_SAMPLES: usize = 200_000;

/// Update-visibility sampler for Cure (Fig. 7b's "Cure R" curve).
///
/// Unlike Wren — where one scalar watermark per class (LST/RST) gates
/// visibility — Cure gates a remote update from DC `o` on the **per-origin
/// entry** `GSS[o]` of the global stable snapshot, so pending samples are
/// kept per origin DC. Local updates become visible as soon as the
/// partition's version clock covers them (snapshots carry the
/// coordinator's *current* clock, hence "local updates become visible
/// immediately in Cure", §V-G).
#[derive(Debug, Clone)]
pub struct CureVisibilitySampler {
    sample_every: u64,
    seen_local: u64,
    seen_remote: u64,
    pending_local: BTreeMap<Timestamp, Vec<u64>>,
    /// Per origin DC: commit timestamp → commit instants awaiting GSS.
    pending_remote: Vec<BTreeMap<Timestamp, Vec<u64>>>,
    local: Vec<u64>,
    remote: Vec<u64>,
}

impl CureVisibilitySampler {
    /// Creates a sampler for `n_dcs` DCs recording every `sample_every`-th
    /// update (0 disables).
    pub fn new(n_dcs: u8, sample_every: u64) -> Self {
        CureVisibilitySampler {
            sample_every,
            seen_local: 0,
            seen_remote: 0,
            pending_local: BTreeMap::new(),
            pending_remote: vec![BTreeMap::new(); n_dcs as usize],
            local: Vec::new(),
            remote: Vec::new(),
        }
    }

    /// Whether sampling is active.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// Notes a locally-committed update.
    pub fn register_local(&mut self, ct: Timestamp) {
        if !self.enabled() {
            return;
        }
        self.seen_local += 1;
        if self.seen_local.is_multiple_of(self.sample_every) && self.local.len() < MAX_SAMPLES {
            self.pending_local
                .entry(ct)
                .or_default()
                .push(ct.physical_micros());
        }
    }

    /// Notes a replicated update from DC `origin`.
    pub fn register_remote(&mut self, origin: usize, ct: Timestamp) {
        if !self.enabled() {
            return;
        }
        self.seen_remote += 1;
        if self.seen_remote.is_multiple_of(self.sample_every) && self.remote.len() < MAX_SAMPLES {
            self.pending_remote[origin]
                .entry(ct)
                .or_default()
                .push(ct.physical_micros());
        }
    }

    /// Drains local samples covered by the version clock.
    pub fn advance_local(&mut self, version_clock: Timestamp, now_micros: u64) {
        if !self.enabled() {
            return;
        }
        drain(&mut self.pending_local, version_clock, now_micros, &mut self.local);
    }

    /// Drains remote samples covered by the global stable snapshot.
    pub fn advance_remote(&mut self, gss: &VersionVector, now_micros: u64) {
        if !self.enabled() {
            return;
        }
        for (origin, pending) in self.pending_remote.iter_mut().enumerate() {
            drain(pending, gss.get(origin), now_micros, &mut self.remote);
        }
    }

    /// Completed local visibility samples (µs).
    pub fn local_samples(&self) -> &[u64] {
        &self.local
    }

    /// Completed remote visibility samples (µs).
    pub fn remote_samples(&self) -> &[u64] {
        &self.remote
    }

    /// Discards completed samples (warm-up boundary).
    pub fn reset(&mut self) {
        self.local.clear();
        self.remote.clear();
    }
}

fn drain(
    pending: &mut BTreeMap<Timestamp, Vec<u64>>,
    watermark: Timestamp,
    now_micros: u64,
    out: &mut Vec<u64>,
) {
    let still_pending = pending.split_off(&watermark.successor());
    for (_, commits) in std::mem::replace(pending, still_pending) {
        for committed_at in commits {
            out.push(now_micros.saturating_sub(committed_at));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(micros: u64) -> Timestamp {
        Timestamp::from_micros(micros)
    }

    #[test]
    fn remote_samples_gate_on_their_origin_entry() {
        let mut s = CureVisibilitySampler::new(3, 1);
        s.register_remote(1, ts(1_000));
        s.register_remote(2, ts(1_000));
        // GSS covers origin 1 but not origin 2.
        let gss = VersionVector::from_entries(vec![ts(0), ts(1_000), ts(500)]);
        s.advance_remote(&gss, 40_000);
        assert_eq!(s.remote_samples(), &[39_000]);
        let gss = VersionVector::from_entries(vec![ts(0), ts(1_000), ts(1_000)]);
        s.advance_remote(&gss, 70_000);
        assert_eq!(s.remote_samples(), &[39_000, 69_000]);
    }

    #[test]
    fn local_samples_gate_on_version_clock() {
        let mut s = CureVisibilitySampler::new(3, 1);
        s.register_local(ts(100));
        s.advance_local(ts(99), 500);
        assert!(s.local_samples().is_empty());
        s.advance_local(ts(100), 600);
        assert_eq!(s.local_samples(), &[500]);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut s = CureVisibilitySampler::new(3, 0);
        s.register_local(ts(1));
        s.register_remote(0, ts(1));
        s.advance_local(ts(10), 20);
        s.advance_remote(&VersionVector::from_entries(vec![ts(10); 3]), 20);
        assert!(s.local_samples().is_empty());
        assert!(s.remote_samples().is_empty());
    }

    #[test]
    fn reset_clears() {
        let mut s = CureVisibilitySampler::new(1, 1);
        s.register_local(ts(1));
        s.advance_local(ts(1), 2);
        s.reset();
        assert!(s.local_samples().is_empty());
    }
}
