//! The **Cure** and **H-Cure** baselines the paper compares Wren against.
//!
//! Cure (Akkoorath et al., ICDCS 2016) is the state-of-the-art TCC design
//! at the time of the Wren paper. It shares Wren's overall shape — 2PC
//! commits, periodic apply/replicate ticks, intra-DC stabilization gossip
//! — but differs in exactly the two dimensions Wren's contributions
//! target:
//!
//! 1. **Dependency metadata.** Cure tracks causality with a vector of one
//!    entry *per DC*: item versions, snapshots, replication messages and
//!    stabilization gossip all carry M timestamps
//!    ([`wren_protocol::CureVersion`], [`wren_protocol::CureMsg`]).
//!    Fig. 7a of the paper measures this against Wren's two scalars.
//! 2. **Snapshot choice.** A transaction's snapshot takes the
//!    coordinator's *current clock* as its local entry. Fresh — but a read
//!    can reach a partition that has not yet installed that snapshot and
//!    must **block** until it does ([`CureServer`] queues it and Fig. 3b
//!    plots the waiting). **H-Cure** ([`CureConfig::h_cure`]) swaps the
//!    physical clock for a hybrid logical clock, which removes the
//!    clock-skew component of the blocking but not the
//!    pending-transaction component — the paper uses it to show HLCs
//!    alone do not fix blocking.
//!
//! Both variants share this implementation, toggled by [`CureConfig::hlc`].
//!
//! # Example
//!
//! ```
//! use wren_cure::{CureClient, CureConfig, CureServer};
//! use wren_clock::SkewedClock;
//! use wren_protocol::{ClientId, Dest, Key, ServerId};
//! use bytes::Bytes;
//!
//! let cfg = CureConfig::cure(1, 1);
//! let sid = ServerId::new(0, 0);
//! let mut server = CureServer::new(sid, cfg, SkewedClock::perfect());
//! let mut client = CureClient::new(ClientId(0), sid, 1);
//! let mut out = Vec::new();
//!
//! let msg = client.start();
//! server.handle(Dest::Client(client.id()), msg, 0, &mut out);
//! client.on_start_resp(out.pop().unwrap().msg);
//! client.write([(Key(1), Bytes::from_static(b"hi"))]);
//! let msg = client.commit();
//! server.handle(Dest::Client(client.id()), msg, 10, &mut out);
//! let commit_vec = client.on_commit_resp(out.pop().unwrap().msg);
//! assert_eq!(commit_vec.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod config;
mod server;
mod visibility;

pub use client::{CureClient, CureClientStats, CureReadOutcome};
pub use config::CureConfig;
pub use server::{CureMetrics, CureServer, CureServerStats};
pub use visibility::CureVisibilitySampler;
