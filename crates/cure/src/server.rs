use crate::{CureConfig, CureVisibilitySampler};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use wren_clock::{HybridClock, PhysicalClock, SkewedClock, Timestamp, VersionVector};
use wren_protocol::{
    ClientId, CureMsg, CureRepTx, CureReplicateBatch, CureVersion, Dest, Key, Outgoing,
    PartitionId, ServerId, TxId, Value,
};
use wren_storage::{ConcurrentShardedStore, SnapshotBound};

/// Counters exposed by a Cure server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CureServerStats {
    /// Transactions this server coordinated to commit.
    pub txs_coordinated: u64,
    /// Transactions committed as a cohort.
    pub txs_cohort_committed: u64,
    /// Slice requests served.
    pub slices_served: u64,
    /// Slice requests that had to wait for a snapshot to be installed.
    pub slices_blocked: u64,
    /// Total microseconds slice requests spent blocked.
    pub total_block_micros: u64,
    /// Individual keys read.
    pub keys_read: u64,
    /// Local versions applied.
    pub local_versions_applied: u64,
    /// Remote versions applied.
    pub remote_versions_applied: u64,
    /// Replication batches shipped.
    pub replicate_batches_sent: u64,
    /// Heartbeats shipped.
    pub heartbeats_sent: u64,
    /// Versions removed by GC.
    pub gc_versions_removed: u64,
}

/// Read-only slice-path instrumentation, mirroring `wren-core`'s split so
/// the baseline pays the same metric-recording costs on its read path as
/// Wren does (a fair comparison — see `WrenServer`'s `ReadPathStats`).
#[derive(Debug)]
struct ReadPathStats {
    slices_served: wren_obs::Counter,
    keys_read: wren_obs::Counter,
    read_slice_micros: wren_obs::Histogram,
}

/// Pre-resolved metric handles for a Cure server. Deliberately the same
/// subset `wren-core` records on its hot paths (commit stages, read
/// slices), so throughput/latency comparisons between the protocols are
/// not skewed by one side carrying instrumentation the other lacks.
#[derive(Debug, Clone)]
pub struct CureMetrics {
    registry: wren_obs::Registry,
    /// Commit stage 1 — prepare fan-out to last vote, in µs.
    pub commit_prepare_micros: wren_obs::Histogram,
    /// Commit stage 2 — cohort vote to commit verdict applied, in µs.
    pub commit_decide_micros: wren_obs::Histogram,
    /// Read-slice service time in µs.
    pub read_slice_micros: wren_obs::Histogram,
    /// Slice requests served.
    pub slices_served: wren_obs::Counter,
    /// Individual keys read.
    pub keys_read: wren_obs::Counter,
}

impl CureMetrics {
    /// Creates every handle against a fresh registry.
    pub fn new() -> Self {
        let registry = wren_obs::Registry::new();
        CureMetrics {
            commit_prepare_micros: registry.histogram("commit_prepare_micros"),
            commit_decide_micros: registry.histogram("commit_decide_micros"),
            read_slice_micros: registry.histogram("read_slice_micros"),
            slices_served: registry.counter("slices_served"),
            keys_read: registry.counter("keys_read"),
            registry,
        }
    }

    /// The registry behind the handles.
    pub fn registry(&self) -> &wren_obs::Registry {
        &self.registry
    }
}

impl Default for CureMetrics {
    fn default() -> Self {
        CureMetrics::new()
    }
}

#[derive(Debug)]
struct TxCtx {
    client: ClientId,
    snapshot: VersionVector,
    pending_slices: usize,
    read_acc: Vec<(Key, Option<CureVersion>)>,
    pending_prepares: usize,
    max_pt: Timestamp,
    cohorts: Vec<PartitionId>,
    /// True-time micros when the commit fan-out started (stage timing).
    since: u64,
}

#[derive(Debug, Clone)]
struct PreparedTx {
    pt: Timestamp,
    snapshot: VersionVector,
    writes: Vec<(Key, Value)>,
    /// True-time micros when this cohort voted (stage timing).
    since: u64,
}

#[derive(Debug, Clone)]
struct CommittedTx {
    snapshot: VersionVector,
    writes: Vec<(Key, Value)>,
}

/// A read waiting for its snapshot to be installed — the blocking the
/// paper's Fig. 3b measures and Wren eliminates.
#[derive(Debug)]
struct PendingRead {
    coordinator: ServerId,
    tx: TxId,
    snapshot: VersionVector,
    keys: Vec<Key>,
    arrived_micros: u64,
}

/// A Cure (or H-Cure) partition server.
///
/// Structure mirrors `wren_core::WrenServer`: the same 2PC commit, the
/// same apply/replicate tick, the same gossip scheme — the differences are
/// exactly the ones the paper evaluates:
///
/// * item metadata and snapshots are **M-entry vectors** (one per DC);
/// * a transaction snapshot takes the coordinator's *current clock* as its
///   local entry, so a read may target a snapshot **not yet installed** at
///   some partition and must **block** there
///   ([`CureServer::pending_reads`] + [`CureServerStats::slices_blocked`]);
/// * with [`CureConfig::hlc`] set (H-Cure), the server's timestamp source
///   absorbs incoming snapshot timestamps, removing the clock-skew
///   component of blocking but not the pending-transaction component.
#[derive(Debug)]
pub struct CureServer {
    id: ServerId,
    cfg: CureConfig,
    clock: SkewedClock,
    /// Timestamp source for proposals (and, under H-Cure, version clocks).
    ts_source: HybridClock,
    vv: VersionVector,
    /// Global stable snapshot: componentwise min of the DC's version
    /// vectors.
    gss: VersionVector,
    /// Stripe-locked shared store: same storage layer as the Wren server,
    /// so the protocol comparison is not skewed by lock costs.
    store: Arc<ConcurrentShardedStore<Key, CureVersion>>,
    /// Slice-path counters (the `&self` read path's half of the stats).
    read_stats: Arc<ReadPathStats>,
    /// Lock-free metric handles (same hot-path subset as `wren-core`).
    metrics: CureMetrics,
    prepared: HashMap<TxId, PreparedTx>,
    committed: BTreeMap<(Timestamp, TxId), CommittedTx>,
    next_seq: u64,
    tx_ctx: HashMap<TxId, TxCtx>,
    gossip_contrib: Vec<VersionVector>,
    gc_contrib: Vec<VersionVector>,
    pending_reads: Vec<PendingRead>,
    /// `(transaction, block duration µs)` per blocked slice, for Fig. 3b.
    blocked_samples: Vec<(TxId, u64)>,
    stats: CureServerStats,
    vis: CureVisibilitySampler,
    /// Sibling replicas of this partition in every other DC (fixed for
    /// the server's lifetime; computed once).
    siblings: Vec<ServerId>,
    /// Every other partition of this DC (fixed; computed once).
    peers: Vec<ServerId>,
    /// Children in the k-ary stabilization tree (fixed; computed once).
    children: Vec<ServerId>,
    /// Scratch buckets for grouping a read-set by partition, reused
    /// across transactions so the per-read grouping allocates nothing.
    scratch_reads: Vec<Vec<Key>>,
    /// Scratch buckets for grouping a write-set by partition.
    scratch_writes: Vec<Vec<(Key, Value)>>,
    /// Scratch buffer for flattening a replication batch before the
    /// store-level batch apply, reused across batches.
    scratch_apply: Vec<(Key, CureVersion)>,
}

impl CureServer {
    /// Creates the replica of `id.partition` in `id.dc`.
    pub fn new(id: ServerId, cfg: CureConfig, clock: SkewedClock) -> Self {
        let m = cfg.n_dcs as usize;
        let n = cfg.n_partitions as usize;
        let siblings: Vec<ServerId> = (0..cfg.n_dcs)
            .filter(|dc| *dc != id.dc.0)
            .map(|dc| ServerId {
                dc: wren_protocol::DcId(dc),
                partition: id.partition,
            })
            .collect();
        let peers: Vec<ServerId> = (0..cfg.n_partitions)
            .filter(|p| *p != id.partition.0)
            .map(|p| ServerId {
                dc: id.dc,
                partition: wren_protocol::PartitionId(p),
            })
            .collect();
        let children = Self::compute_tree_children(id, &cfg);
        let metrics = CureMetrics::new();
        let read_stats = Arc::new(ReadPathStats {
            slices_served: metrics.slices_served.clone(),
            keys_read: metrics.keys_read.clone(),
            read_slice_micros: metrics.read_slice_micros.clone(),
        });
        CureServer {
            id,
            cfg,
            clock,
            ts_source: HybridClock::new(),
            vv: VersionVector::new(m),
            gss: VersionVector::new(m),
            store: Arc::new(ConcurrentShardedStore::new()),
            read_stats,
            metrics,
            prepared: HashMap::new(),
            committed: BTreeMap::new(),
            next_seq: 1,
            tx_ctx: HashMap::new(),
            gossip_contrib: vec![VersionVector::new(m); n],
            gc_contrib: vec![VersionVector::new(m); n],
            pending_reads: Vec::new(),
            blocked_samples: Vec::new(),
            stats: CureServerStats::default(),
            vis: CureVisibilitySampler::new(cfg.n_dcs, cfg.visibility_sample_every),
            siblings,
            peers,
            children,
            scratch_reads: vec![Vec::new(); n],
            scratch_writes: vec![Vec::new(); n],
            scratch_apply: Vec::new(),
        }
    }

    /// Children of `id.partition` in the k-ary stabilization tree (empty
    /// in broadcast mode).
    fn compute_tree_children(id: ServerId, cfg: &CureConfig) -> Vec<ServerId> {
        let f = cfg.gossip_fanout;
        if f == 0 {
            return Vec::new();
        }
        let i = id.partition.0 as u32;
        let n = cfg.n_partitions as u32;
        (1..=f as u32)
            .map(|k| i * f as u32 + k)
            .filter(|c| *c < n)
            .map(|c| ServerId {
                dc: id.dc,
                partition: wren_protocol::PartitionId(c as u16),
            })
            .collect()
    }

    /// This server's identity.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The local version clock `VV[m]`.
    pub fn version_clock(&self) -> Timestamp {
        self.vv.get(self.dc_index())
    }

    /// The global stable snapshot this server has computed.
    pub fn gss(&self) -> &VersionVector {
        &self.gss
    }

    /// Counters. Slice-path counters are folded in from the shared
    /// atomics (the `&self` read path's half of the split).
    pub fn stats(&self) -> CureServerStats {
        let mut stats = self.stats;
        stats.slices_served = self.read_stats.slices_served.get();
        stats.keys_read = self.read_stats.keys_read.get();
        stats
    }

    /// The lock-free metric handles (commit-stage and read histograms).
    pub fn metrics(&self) -> &CureMetrics {
        &self.metrics
    }

    /// The metric registry (snapshot/merge at cluster level).
    pub fn registry(&self) -> wren_obs::Registry {
        self.metrics.registry.clone()
    }

    /// Reads currently blocked waiting for a snapshot.
    pub fn pending_reads(&self) -> usize {
        self.pending_reads.len()
    }

    /// Per-blocked-read `(transaction, duration µs)` samples (Fig. 3b).
    pub fn blocked_samples(&self) -> &[(TxId, u64)] {
        &self.blocked_samples
    }

    /// Clears blocking samples (warm-up boundary).
    pub fn reset_blocked_samples(&mut self) {
        self.blocked_samples.clear();
        self.stats.slices_blocked = 0;
        self.stats.total_block_micros = 0;
    }

    /// The visibility sampler (Fig. 7b).
    pub fn visibility(&self) -> &CureVisibilitySampler {
        &self.vis
    }

    /// Mutable access to the visibility sampler.
    pub fn visibility_mut(&mut self) -> &mut CureVisibilitySampler {
        &mut self.vis
    }

    /// Read-only store access for tests.
    pub fn store(&self) -> &ConcurrentShardedStore<Key, CureVersion> {
        &self.store
    }

    fn dc_index(&self) -> usize {
        self.id.dc.index()
    }

    fn partition_of(&self, key: Key) -> PartitionId {
        key.partition(self.cfg.n_partitions)
    }

    fn server(&self, partition: PartitionId) -> ServerId {
        ServerId {
            dc: self.id.dc,
            partition,
        }
    }

    /// Handles one protocol message.
    pub fn handle(
        &mut self,
        from: Dest,
        msg: CureMsg,
        now_micros: u64,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) {
        match msg {
            CureMsg::StartTxReq { seen } => {
                let Dest::Client(client) = from else {
                    debug_assert!(false, "StartTxReq must come from a client");
                    return;
                };
                self.on_start(client, seen, now_micros, out);
            }
            CureMsg::TxReadReq { tx, keys } => self.on_read(tx, keys, now_micros, out),
            CureMsg::SliceReq { tx, snapshot, keys } => {
                let Dest::Server(coord) = from else {
                    debug_assert!(false, "SliceReq must come from a server");
                    return;
                };
                self.on_slice_req(coord, tx, snapshot, keys, now_micros, out);
            }
            CureMsg::SliceResp { tx, items } => self.on_slice_resp(tx, items, out),
            CureMsg::CommitReq { tx, writes } => self.on_commit_req(tx, writes, now_micros, out),
            CureMsg::PrepareReq {
                tx,
                snapshot,
                writes,
            } => {
                let Dest::Server(coord) = from else {
                    debug_assert!(false, "PrepareReq must come from a server");
                    return;
                };
                let pt = self.prepare(tx, snapshot, writes, now_micros);
                out.push(Outgoing::to_server(coord, CureMsg::PrepareResp { tx, pt }));
            }
            CureMsg::PrepareResp { tx, pt } => self.on_prepare_resp(tx, pt, now_micros, out),
            CureMsg::Commit { tx, ct } => self.commit(tx, ct, now_micros),
            CureMsg::Replicate { batch } => {
                let Dest::Server(sibling) = from else {
                    debug_assert!(false, "Replicate must come from a server");
                    return;
                };
                self.on_replicate(sibling, batch, now_micros, out);
            }
            CureMsg::Heartbeat { t } => {
                let Dest::Server(sibling) = from else {
                    debug_assert!(false, "Heartbeat must come from a server");
                    return;
                };
                self.vv.raise(sibling.dc.index(), t);
                self.retry_pending_reads(now_micros, out);
            }
            CureMsg::StableGossip { vv } => {
                let Dest::Server(peer) = from else {
                    debug_assert!(false, "StableGossip must come from a server");
                    return;
                };
                self.gossip_contrib[peer.partition.index()] = vv;
                self.recompute_gss(now_micros);
            }
            CureMsg::GossipUp { vv } => {
                let Dest::Server(child) = from else {
                    debug_assert!(false, "GossipUp must come from a server");
                    return;
                };
                self.gossip_contrib[child.partition.index()] = vv;
            }
            CureMsg::GossipDown { gsv } => {
                // Adopt the root's stable vector and cascade downwards.
                self.gss.join(&gsv);
                let gss = self.gss.clone();
                self.vis.advance_remote(&gss, now_micros);
                for &child in &self.children {
                    out.push(Outgoing::to_server(
                        child,
                        CureMsg::GossipDown { gsv: gsv.clone() },
                    ));
                }
                self.retry_pending_reads(now_micros, out);
            }
            CureMsg::GcGossip { oldest } => {
                let Dest::Server(peer) = from else {
                    debug_assert!(false, "GcGossip must come from a server");
                    return;
                };
                self.gc_contrib[peer.partition.index()] = oldest;
            }
            CureMsg::StartTxResp { .. }
            | CureMsg::TxReadResp { .. }
            | CureMsg::CommitResp { .. } => {
                debug_assert!(false, "client-bound message delivered to a server");
            }
        }
    }

    /// Assigns a snapshot vector: the stable vector with the local entry
    /// bumped to the coordinator's **current clock** — fresher than Wren's
    /// LST, but possibly not installed everywhere, which is what makes
    /// Cure reads block.
    fn on_start(
        &mut self,
        client: ClientId,
        seen: VersionVector,
        now_micros: u64,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) {
        let phys = self.clock.now_micros(now_micros);
        let m = self.dc_index();
        let mut snapshot = self.gss.clone();
        if seen.len() == snapshot.len() {
            snapshot.join(&seen);
        }
        let local_now = if self.cfg.hlc {
            self.ts_source.merge(phys, Timestamp::ZERO);
            self.ts_source.current()
        } else {
            Timestamp::from_micros(phys)
        };
        snapshot.raise(m, local_now);

        let tx = TxId::new(self.id, self.next_seq);
        self.next_seq += 1;
        self.tx_ctx.insert(
            tx,
            TxCtx {
                client,
                snapshot: snapshot.clone(),
                pending_slices: 0,
                read_acc: Vec::new(),
                pending_prepares: 0,
                max_pt: Timestamp::ZERO,
                cohorts: Vec::new(),
                since: 0,
            },
        );
        out.push(Outgoing::to_client(client, CureMsg::StartTxResp { tx, snapshot }));
    }

    /// Fans a read out; the coordinator's own slice goes through the same
    /// blocking check as everyone else's (a self-addressed `SliceResp` if
    /// it must wait).
    fn on_read(
        &mut self,
        tx: TxId,
        keys: Vec<Key>,
        now_micros: u64,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) {
        let Some(ctx) = self.tx_ctx.get(&tx) else {
            debug_assert!(false, "read for unknown transaction");
            return;
        };
        let snapshot = ctx.snapshot.clone();
        let client = ctx.client;

        // Group keys by owning partition into the reusable scratch
        // buckets (direct indexing; no per-transaction map allocations).
        let mut groups = std::mem::take(&mut self.scratch_reads);
        for k in keys {
            groups[self.partition_of(k).index()].push(k);
        }
        let own = self.id.partition.index();

        let mut local_items = None;
        let mut local_pending = false;
        if !groups[own].is_empty() {
            let local_keys = std::mem::take(&mut groups[own]);
            if self.snapshot_installed(&snapshot) {
                local_items = Some(self.read_slice(&local_keys, &snapshot));
                // Keep the bucket's allocation for the next transaction.
                groups[own] = local_keys;
                groups[own].clear();
            } else {
                // The coordinator itself lags the snapshot: queue the local
                // slice like any remote one; it answers itself later. The
                // pending read owns the key list, so the bucket stays empty.
                self.queue_pending(self.id, tx, snapshot.clone(), local_keys, now_micros);
                local_pending = true;
            }
        }
        let remote_slices = groups
            .iter()
            .enumerate()
            .filter(|(p, g)| *p != own && !g.is_empty())
            .count();

        let ctx = self.tx_ctx.get_mut(&tx).expect("checked above");
        ctx.read_acc = local_items.unwrap_or_default();
        ctx.pending_slices = remote_slices + usize::from(local_pending);

        if ctx.pending_slices == 0 {
            let items = std::mem::take(&mut ctx.read_acc);
            out.push(Outgoing::to_client(client, CureMsg::TxReadResp { tx, items }));
            self.scratch_reads = groups;
            return;
        }
        for (partition, bucket) in groups.iter_mut().enumerate() {
            if partition == own || bucket.is_empty() {
                continue;
            }
            let keys = std::mem::take(bucket);
            out.push(Outgoing::to_server(
                self.server(PartitionId(partition as u16)),
                CureMsg::SliceReq {
                    tx,
                    snapshot: snapshot.clone(),
                    keys,
                },
            ));
        }
        self.scratch_reads = groups;
    }

    fn on_slice_req(
        &mut self,
        coordinator: ServerId,
        tx: TxId,
        snapshot: VersionVector,
        keys: Vec<Key>,
        now_micros: u64,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) {
        if self.cfg.hlc {
            // H-Cure: absorb the snapshot timestamp so the version clock
            // can pass it at the next tick even if the physical clock lags.
            let phys = self.clock.now_micros(now_micros);
            self.ts_source.merge(phys, snapshot.get(self.dc_index()));
        }
        if self.snapshot_installed(&snapshot) {
            let items = self.read_slice(&keys, &snapshot);
            out.push(Outgoing::to_server(coordinator, CureMsg::SliceResp { tx, items }));
        } else {
            self.queue_pending(coordinator, tx, snapshot, keys, now_micros);
        }
    }

    fn queue_pending(
        &mut self,
        coordinator: ServerId,
        tx: TxId,
        snapshot: VersionVector,
        keys: Vec<Key>,
        now_micros: u64,
    ) {
        self.stats.slices_blocked += 1;
        self.pending_reads.push(PendingRead {
            coordinator,
            tx,
            snapshot,
            keys,
            arrived_micros: now_micros,
        });
    }

    /// Whether every component of `snapshot` is installed here: the local
    /// entry is covered by the version clock and every remote entry by the
    /// corresponding replication watermark.
    fn snapshot_installed(&self, snapshot: &VersionVector) -> bool {
        let m = self.dc_index();
        if self.version_clock() < snapshot.get(m) {
            return false;
        }
        (0..snapshot.len()).all(|i| i == m || self.vv.get(i) >= snapshot.get(i))
    }

    /// Serves any pending reads whose snapshot has become installed.
    fn retry_pending_reads(&mut self, now_micros: u64, out: &mut Vec<Outgoing<CureMsg>>) {
        if self.pending_reads.is_empty() {
            return;
        }
        let mut still_pending = Vec::new();
        let pending = std::mem::take(&mut self.pending_reads);
        for p in pending {
            if self.snapshot_installed(&p.snapshot) {
                let blocked_for = now_micros.saturating_sub(p.arrived_micros);
                self.stats.total_block_micros += blocked_for;
                self.blocked_samples.push((p.tx, blocked_for));
                let items = self.read_slice(&p.keys, &p.snapshot);
                if p.coordinator == self.id {
                    // Self-addressed completion: feed it straight back in.
                    self.on_slice_resp(p.tx, items, out);
                } else {
                    out.push(Outgoing::to_server(
                        p.coordinator,
                        CureMsg::SliceResp { tx: p.tx, items },
                    ));
                }
            } else {
                still_pending.push(p);
            }
        }
        self.pending_reads = still_pending;
    }

    /// Cure's visibility rule: a version is in the snapshot iff its commit
    /// timestamp is covered by the snapshot entry of its origin DC.
    ///
    /// Takes `&self`, mirroring `wren-core`'s handle/read split. Unlike
    /// Wren, Cure cannot hand this to off-thread workers wholesale: the
    /// *admission* check ([`snapshot_installed`](Self::snapshot_installed))
    /// consults the writer-owned version vector, and a non-installed
    /// snapshot must queue — blocking is the protocol's defining cost.
    fn read_slice(
        &self,
        keys: &[Key],
        snapshot: &VersionVector,
    ) -> Vec<(Key, Option<CureVersion>)> {
        let start = std::time::Instant::now();
        self.read_stats.slices_served.inc();
        self.read_stats.keys_read.add(keys.len() as u64);
        let bound = SnapshotBound::vector(snapshot);
        let mut items = Vec::with_capacity(keys.len());
        for &k in keys {
            items.push((k, self.store.latest_visible(&k, &bound)));
        }
        self.read_stats
            .read_slice_micros
            .record(start.elapsed().as_micros() as u64);
        items
    }

    fn on_slice_resp(
        &mut self,
        tx: TxId,
        items: Vec<(Key, Option<CureVersion>)>,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) {
        let Some(ctx) = self.tx_ctx.get_mut(&tx) else {
            debug_assert!(false, "slice response for unknown transaction");
            return;
        };
        ctx.read_acc.extend(items);
        ctx.pending_slices -= 1;
        if ctx.pending_slices == 0 {
            let items = std::mem::take(&mut ctx.read_acc);
            let client = ctx.client;
            out.push(Outgoing::to_client(client, CureMsg::TxReadResp { tx, items }));
        }
    }

    fn on_commit_req(
        &mut self,
        tx: TxId,
        writes: Vec<(Key, Value)>,
        now_micros: u64,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) {
        let Some(ctx) = self.tx_ctx.get(&tx) else {
            debug_assert!(false, "commit for unknown transaction");
            return;
        };
        let snapshot = ctx.snapshot.clone();
        let client = ctx.client;

        if writes.is_empty() {
            self.tx_ctx.remove(&tx);
            out.push(Outgoing::to_client(
                client,
                CureMsg::CommitResp {
                    tx,
                    commit_vec: snapshot,
                },
            ));
            return;
        }

        // Group writes by owning partition into the reusable scratch
        // buckets (no per-transaction map allocations).
        let mut groups = std::mem::take(&mut self.scratch_writes);
        for (k, v) in writes {
            groups[self.partition_of(k).index()].push((k, v));
        }
        let own = self.id.partition.index();

        let cohorts: Vec<PartitionId> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(p, _)| PartitionId(p as u16))
            .collect();
        let has_local = !groups[own].is_empty();

        {
            let ctx = self.tx_ctx.get_mut(&tx).expect("checked above");
            ctx.pending_prepares = cohorts.len();
            ctx.cohorts = cohorts;
            ctx.max_pt = Timestamp::ZERO;
            ctx.since = now_micros;
        }

        let mut local_writes = Vec::new();
        for (partition, bucket) in groups.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let writes = std::mem::take(bucket);
            if partition == own {
                local_writes = writes;
            } else {
                out.push(Outgoing::to_server(
                    self.server(PartitionId(partition as u16)),
                    CureMsg::PrepareReq {
                        tx,
                        snapshot: snapshot.clone(),
                        writes,
                    },
                ));
            }
        }
        self.scratch_writes = groups;
        if has_local {
            let pt = self.prepare(tx, snapshot, local_writes, now_micros);
            self.on_prepare_resp(tx, pt, now_micros, out);
        }
    }

    /// Proposes a commit timestamp above the snapshot's local entry and
    /// everything previously proposed here.
    fn prepare(
        &mut self,
        tx: TxId,
        snapshot: VersionVector,
        writes: Vec<(Key, Value)>,
        now_micros: u64,
    ) -> Timestamp {
        let phys = self.clock.now_micros(now_micros);
        let floor = snapshot.get(self.dc_index()).max(self.version_clock());
        let pt = self.ts_source.tick_at_least(phys, floor);
        self.prepared.insert(
            tx,
            PreparedTx {
                pt,
                snapshot,
                writes,
                since: now_micros,
            },
        );
        pt
    }

    fn on_prepare_resp(
        &mut self,
        tx: TxId,
        pt: Timestamp,
        now_micros: u64,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) {
        let m = self.dc_index();
        let Some(ctx) = self.tx_ctx.get_mut(&tx) else {
            debug_assert!(false, "prepare response for unknown transaction");
            return;
        };
        ctx.max_pt = ctx.max_pt.max(pt);
        ctx.pending_prepares -= 1;
        if ctx.pending_prepares > 0 {
            return;
        }
        let ct = ctx.max_pt;
        let client = ctx.client;
        let since = ctx.since;
        let mut commit_vec = ctx.snapshot.clone();
        commit_vec.set(m, ct);
        let cohorts = std::mem::take(&mut ctx.cohorts);
        self.tx_ctx.remove(&tx);
        self.metrics
            .commit_prepare_micros
            .record(now_micros.saturating_sub(since));
        for partition in cohorts {
            if partition == self.id.partition {
                self.commit(tx, ct, now_micros);
            } else {
                out.push(Outgoing::to_server(
                    self.server(partition),
                    CureMsg::Commit { tx, ct },
                ));
            }
        }
        self.stats.txs_coordinated += 1;
        out.push(Outgoing::to_client(client, CureMsg::CommitResp { tx, commit_vec }));
    }

    fn commit(&mut self, tx: TxId, ct: Timestamp, now_micros: u64) {
        let phys = self.clock.now_micros(now_micros);
        self.ts_source.merge(phys, ct);
        let Some(prepared) = self.prepared.remove(&tx) else {
            debug_assert!(false, "commit for unprepared transaction");
            return;
        };
        self.metrics
            .commit_decide_micros
            .record(now_micros.saturating_sub(prepared.since));
        self.committed.insert(
            (ct, tx),
            CommittedTx {
                snapshot: prepared.snapshot,
                writes: prepared.writes,
            },
        );
        self.stats.txs_cohort_committed += 1;
    }

    /// Applies a replication batch with the store's batched splice: the
    /// batch shares one commit timestamp, so each key's run pays a single
    /// chain search ([`ShardedStore::apply_batch`]).
    fn on_replicate(
        &mut self,
        sibling: ServerId,
        batch: CureReplicateBatch,
        now_micros: u64,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) {
        let src = sibling.dc;
        let ct = batch.ct;
        let mut items = std::mem::take(&mut self.scratch_apply);
        debug_assert!(items.is_empty());
        for rep in batch.txs {
            for (k, v) in rep.writes {
                items.push((
                    k,
                    CureVersion {
                        value: v,
                        ut: ct,
                        deps: rep.deps.clone(),
                        tx: rep.tx,
                        sr: src,
                    },
                ));
            }
            self.vis.register_remote(src.index(), ct);
        }
        let applied = self.store.apply_batch(&mut items);
        self.stats.remote_versions_applied += applied as u64;
        self.scratch_apply = items;
        self.vv.raise(src.index(), ct);
        self.retry_pending_reads(now_micros, out);
    }

    /// Apply/replicate tick: identical structure to Wren's Algorithm 4,
    /// with the version clock driven by the physical clock (Cure) or the
    /// hybrid clock (H-Cure). Returns the number of versions applied.
    pub fn on_replication_tick(
        &mut self,
        now_micros: u64,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) -> usize {
        let phys = self.clock.now_micros(now_micros);

        let idle_bound = if self.cfg.hlc {
            self.ts_source.merge(phys, Timestamp::ZERO);
            self.ts_source.current()
        } else {
            // Cure: version clocks track *physical* time, so a partition
            // whose clock lags cannot cover a fast coordinator's snapshot —
            // the skew-induced blocking Fig. 3b shows.
            let t = Timestamp::from_micros(phys);
            // Absorb into the proposal source so future proposals stay
            // strictly above the version clock (no commit at ≤ ub).
            self.ts_source.merge(phys, t);
            t
        };

        let ub = if self.prepared.is_empty() {
            idle_bound
        } else {
            self.prepared
                .values()
                .map(|p| p.pt)
                .min()
                .expect("non-empty")
                .predecessor()
        };

        if ub <= self.version_clock() {
            return 0;
        }

        let mut applied = 0usize;
        let m = self.dc_index();
        if self.committed.is_empty() {
            self.vv.set(m, ub);
            for &sibling in &self.siblings {
                out.push(Outgoing::to_server(sibling, CureMsg::Heartbeat { t: ub }));
            }
            self.stats.heartbeats_sent += self.siblings.len() as u64;
            self.after_version_clock_advance(now_micros, out);
            return 0;
        }

        let keep = self.committed.split_off(&(ub.successor(), TxId::from_raw(0)));
        let ready = std::mem::replace(&mut self.committed, keep);

        let mut batch: Vec<CureRepTx> = Vec::new();
        let mut batch_ct = Timestamp::ZERO;
        for ((ct, tx), ctx) in ready {
            if ct != batch_ct && !batch.is_empty() {
                self.ship_batch(batch_ct, std::mem::take(&mut batch), out);
            }
            batch_ct = ct;
            let mut deps = ctx.snapshot.clone();
            deps.set(m, ct);
            for (k, v) in &ctx.writes {
                self.store.insert(
                    *k,
                    CureVersion {
                        value: v.clone(),
                        ut: ct,
                        deps: deps.clone(),
                        tx,
                        sr: self.id.dc,
                    },
                );
                applied += 1;
                self.stats.local_versions_applied += 1;
            }
            self.vis.register_local(ct);
            batch.push(CureRepTx {
                tx,
                deps,
                writes: ctx.writes,
            });
        }
        if !batch.is_empty() {
            self.ship_batch(batch_ct, batch, out);
        }
        self.vv.set(m, ub);
        self.after_version_clock_advance(now_micros, out);
        applied
    }

    fn after_version_clock_advance(
        &mut self,
        now_micros: u64,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) {
        self.vis.advance_local(self.version_clock(), now_micros);
        self.retry_pending_reads(now_micros, out);
    }

    fn ship_batch(
        &mut self,
        ct: Timestamp,
        mut txs: Vec<CureRepTx>,
        out: &mut Vec<Outgoing<CureMsg>>,
    ) {
        // The last sibling takes ownership of the batch; only the others
        // pay for a deep clone of the transaction list.
        let n = self.siblings.len();
        for (i, &sibling) in self.siblings.iter().enumerate() {
            let batch_txs = if i + 1 == n {
                std::mem::take(&mut txs)
            } else {
                txs.clone()
            };
            out.push(Outgoing::to_server(
                sibling,
                CureMsg::Replicate {
                    batch: CureReplicateBatch { ct, txs: batch_txs },
                },
            ));
        }
        self.stats.replicate_batches_sent += n as u64;
    }

    /// Stabilization tick: exchange the **full version vector** (M
    /// timestamps — the metadata Fig. 7a charges to Cure) and refresh the
    /// global stable snapshot. Broadcast or k-ary tree, mirroring Wren.
    pub fn on_gossip_tick(&mut self, now_micros: u64, out: &mut Vec<Outgoing<CureMsg>>) {
        self.gossip_contrib[self.id.partition.index()] = self.vv.clone();
        let vv = self.vv.clone();

        if self.cfg.gossip_fanout == 0 {
            for &peer in &self.peers {
                out.push(Outgoing::to_server(peer, CureMsg::StableGossip { vv: vv.clone() }));
            }
            self.recompute_gss(now_micros);
            return;
        }

        // Tree mode: fold own vector with children subtree minima.
        let mut subtree = vv;
        for child in &self.children {
            subtree.meet(&self.gossip_contrib[child.partition.index()]);
        }
        match self.tree_parent() {
            Some(parent) => {
                out.push(Outgoing::to_server(parent, CureMsg::GossipUp { vv: subtree }));
            }
            None => {
                self.gss.join(&subtree);
                let gss = self.gss.clone();
                self.vis.advance_remote(&gss, now_micros);
                for &child in &self.children {
                    out.push(Outgoing::to_server(
                        child,
                        CureMsg::GossipDown { gsv: gss.clone() },
                    ));
                }
                self.retry_pending_reads(now_micros, out);
            }
        }
    }

    /// Parent in the k-ary stabilization tree, or `None` at the root / in
    /// broadcast mode.
    fn tree_parent(&self) -> Option<ServerId> {
        let f = self.cfg.gossip_fanout;
        let i = self.id.partition.0;
        if f == 0 || i == 0 {
            return None;
        }
        Some(self.server(wren_protocol::PartitionId((i - 1) / f)))
    }

    fn recompute_gss(&mut self, now_micros: u64) {
        let mut gss = self.gossip_contrib[0].clone();
        for contrib in &self.gossip_contrib[1..] {
            gss.meet(contrib);
        }
        // GSS is monotone: join with the previous value guards against
        // stale contributions.
        gss.join(&self.gss);
        self.vis.advance_remote(&gss, now_micros);
        self.gss = gss;
    }

    /// GC tick: exchange oldest-active snapshot vectors and prune chains.
    /// Returns the number of versions collected.
    pub fn on_gc_tick(&mut self, _now_micros: u64, out: &mut Vec<Outgoing<CureMsg>>) -> usize {
        let mut oldest = {
            let mut cur = self.gss.clone();
            cur.set(self.dc_index(), self.version_clock());
            cur
        };
        for ctx in self.tx_ctx.values() {
            oldest.meet(&ctx.snapshot);
        }
        self.gc_contrib[self.id.partition.index()] = oldest.clone();
        for &peer in &self.peers {
            out.push(Outgoing::to_server(
                peer,
                CureMsg::GcGossip {
                    oldest: oldest.clone(),
                },
            ));
        }

        let mut watermark = self.gc_contrib[0].clone();
        for contrib in &self.gc_contrib[1..] {
            watermark.meet(contrib);
        }
        if watermark.iter().all(|t| t.is_zero()) {
            return 0;
        }
        let oldest = SnapshotBound::vector(&watermark);
        let removed = self.store.collect(&oldest);
        self.stats.gc_versions_removed += removed as u64;
        removed
    }
}
