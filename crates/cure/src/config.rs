/// Static configuration for a Cure or H-Cure deployment.
///
/// Mirrors [`wren_core::WrenConfig`](https://docs.rs/wren-core) so the two
/// systems run under identical tick schedules — the paper evaluates all
/// three systems "in the same code-base" with the same stabilization
/// period (§V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CureConfig {
    /// Number of data centers (`M`).
    pub n_dcs: u8,
    /// Number of partitions per DC (`N`).
    pub n_partitions: u16,
    /// Apply/replication tick interval (µs).
    pub replication_tick_micros: u64,
    /// Stabilization gossip interval (µs).
    pub gossip_tick_micros: u64,
    /// Garbage-collection exchange interval (µs; 0 disables).
    pub gc_tick_micros: u64,
    /// Visibility sampling rate (record every k-th update; 0 disables).
    pub visibility_sample_every: u64,
    /// `false` → **Cure**: version clocks advance with the physical clock,
    /// so clock skew blocks reads.
    /// `true` → **H-Cure**: version clocks advance with a hybrid logical
    /// clock that absorbs snapshot timestamps, removing the skew component
    /// of blocking (but not the pending-transaction component).
    pub hlc: bool,
    /// Stabilization topology: `0` = all-to-all broadcast; `k ≥ 1` = a
    /// k-ary aggregation tree rooted at partition 0 (same scheme as Wren's,
    /// for a fair bytes comparison).
    pub gossip_fanout: u16,
}

impl Default for CureConfig {
    fn default() -> Self {
        CureConfig {
            n_dcs: 3,
            n_partitions: 8,
            replication_tick_micros: 1_000,
            gossip_tick_micros: 5_000,
            gc_tick_micros: 50_000,
            visibility_sample_every: 0,
            hlc: false,
            gossip_fanout: 0,
        }
    }
}

impl CureConfig {
    /// An `m` DC × `n` partition Cure deployment with default ticks.
    pub fn cure(m: u8, n: u16) -> Self {
        CureConfig {
            n_dcs: m,
            n_partitions: n,
            ..CureConfig::default()
        }
    }

    /// An `m` DC × `n` partition H-Cure deployment with default ticks.
    pub fn h_cure(m: u8, n: u16) -> Self {
        CureConfig {
            hlc: true,
            ..CureConfig::cure(m, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_differ_only_in_clock_mode() {
        let c = CureConfig::cure(3, 8);
        let h = CureConfig::h_cure(3, 8);
        assert!(!c.hlc);
        assert!(h.hlc);
        assert_eq!(c.gossip_tick_micros, h.gossip_tick_micros);
    }
}
