use std::collections::{BTreeMap, HashMap};
use wren_clock::VersionVector;
use wren_protocol::{ClientId, CureMsg, Key, ServerId, TxId, Value};

/// Client-side statistics for the Cure baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CureClientStats {
    /// Transactions started.
    pub txs_started: u64,
    /// Update transactions committed.
    pub txs_committed: u64,
    /// Keys answered from the write-set.
    pub hits_write_set: u64,
    /// Keys answered from the read-set.
    pub hits_read_set: u64,
    /// Keys fetched from servers.
    pub server_reads: u64,
}

/// What a [`CureClient::read`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CureReadOutcome {
    /// Keys answered from the write-set or read-set.
    pub local: Vec<(Key, Option<Value>)>,
    /// Request for the remaining keys, if any.
    pub request: Option<CureMsg>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Starting,
    Idle,
    Reading,
    Committing,
}

#[derive(Debug)]
struct ActiveTx {
    id: TxId,
    phase: Phase,
    ws: BTreeMap<Key, Value>,
    rs: HashMap<Key, Option<Value>>,
}

/// A Cure client session.
///
/// Cure needs **no client-side cache**: the snapshot's local entry is the
/// coordinator's current clock, which covers the client's own commits —
/// the price is that reads at laggard partitions must block until that
/// snapshot is installed. The client piggybacks the join of every commit
/// vector it has seen ([`CureClient::seen`]) for cross-transaction
/// monotonicity.
#[derive(Debug)]
pub struct CureClient {
    id: ClientId,
    coordinator: ServerId,
    seen: VersionVector,
    tx: Option<ActiveTx>,
    stats: CureClientStats,
}

impl CureClient {
    /// Creates a session bound to `coordinator` in an `n_dcs`-DC system.
    pub fn new(id: ClientId, coordinator: ServerId, n_dcs: u8) -> Self {
        CureClient {
            id,
            coordinator,
            seen: VersionVector::new(n_dcs as usize),
            tx: None,
            stats: CureClientStats::default(),
        }
    }

    /// This session's client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The coordinator this session talks to.
    pub fn coordinator(&self) -> ServerId {
        self.coordinator
    }

    /// Client statistics.
    pub fn stats(&self) -> CureClientStats {
        self.stats
    }

    /// The highest vector this client has observed.
    pub fn seen(&self) -> &VersionVector {
        &self.seen
    }

    /// Whether a transaction is active.
    pub fn in_tx(&self) -> bool {
        self.tx.is_some()
    }

    /// Begins a transaction.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active.
    pub fn start(&mut self) -> CureMsg {
        assert!(self.tx.is_none(), "transaction already active");
        self.tx = Some(ActiveTx {
            id: TxId::from_raw(0),
            phase: Phase::Starting,
            ws: BTreeMap::new(),
            rs: HashMap::new(),
        });
        self.stats.txs_started += 1;
        CureMsg::StartTxReq {
            seen: self.seen.clone(),
        }
    }

    /// Consumes the coordinator's `StartTxResp`.
    pub fn on_start_resp(&mut self, msg: CureMsg) {
        let CureMsg::StartTxResp { tx, snapshot } = msg else {
            panic!("expected StartTxResp, got {msg:?}");
        };
        let active = self.tx.as_mut().expect("no transaction active");
        assert_eq!(active.phase, Phase::Starting, "unexpected StartTxResp");
        active.id = tx;
        active.phase = Phase::Idle;
        self.seen.join(&snapshot);
    }

    /// Reads `keys`: write-set and read-set are checked locally; the rest
    /// goes to the coordinator (where it may block server-side).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active or an operation is in flight.
    pub fn read(&mut self, keys: &[Key]) -> CureReadOutcome {
        let active = self.tx.as_mut().expect("no transaction active");
        assert_eq!(active.phase, Phase::Idle, "operation already in flight");

        let mut local = Vec::new();
        let mut remote = Vec::new();
        for &k in keys {
            if let Some(v) = active.ws.get(&k) {
                self.stats.hits_write_set += 1;
                local.push((k, Some(v.clone())));
            } else if let Some(v) = active.rs.get(&k) {
                self.stats.hits_read_set += 1;
                local.push((k, v.clone()));
            } else {
                remote.push(k);
            }
        }
        for (k, v) in &local {
            active.rs.insert(*k, v.clone());
        }
        let request = if remote.is_empty() {
            None
        } else {
            self.stats.server_reads += remote.len() as u64;
            active.phase = Phase::Reading;
            Some(CureMsg::TxReadReq {
                tx: active.id,
                keys: remote,
            })
        };
        CureReadOutcome { local, request }
    }

    /// Consumes a `TxReadResp`.
    pub fn on_read_resp(&mut self, msg: CureMsg) -> Vec<(Key, Option<Value>)> {
        let CureMsg::TxReadResp { tx, items } = msg else {
            panic!("expected TxReadResp, got {msg:?}");
        };
        let active = self.tx.as_mut().expect("no transaction active");
        assert_eq!(active.id, tx, "response for a different transaction");
        assert_eq!(active.phase, Phase::Reading, "unexpected TxReadResp");
        active.phase = Phase::Idle;
        let mut out = Vec::with_capacity(items.len());
        for (k, version) in items {
            let value = version.map(|d| d.value);
            active.rs.insert(k, value.clone());
            out.push((k, value));
        }
        out
    }

    /// Buffers writes.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active or an operation is in flight.
    pub fn write<I: IntoIterator<Item = (Key, Value)>>(&mut self, kvs: I) {
        let active = self.tx.as_mut().expect("no transaction active");
        assert_eq!(active.phase, Phase::Idle, "operation already in flight");
        for (k, v) in kvs {
            active.ws.insert(k, v);
        }
    }

    /// Commits (an empty write-set still sends the request so the
    /// coordinator can clear its context).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active or an operation is in flight.
    pub fn commit(&mut self) -> CureMsg {
        let active = self.tx.as_mut().expect("no transaction active");
        assert_eq!(active.phase, Phase::Idle, "operation already in flight");
        active.phase = Phase::Committing;
        CureMsg::CommitReq {
            tx: active.id,
            writes: active.ws.iter().map(|(k, v)| (*k, v.clone())).collect(),
        }
    }

    /// Consumes the `CommitResp`, joining the commit vector into the
    /// client's observed vector.
    pub fn on_commit_resp(&mut self, msg: CureMsg) -> VersionVector {
        let CureMsg::CommitResp { tx, commit_vec } = msg else {
            panic!("expected CommitResp, got {msg:?}");
        };
        let active = self.tx.take().expect("no transaction active");
        assert_eq!(active.id, tx, "response for a different transaction");
        assert_eq!(active.phase, Phase::Committing, "unexpected CommitResp");
        if !active.ws.is_empty() {
            self.stats.txs_committed += 1;
        }
        self.seen.join(&commit_vec);
        commit_vec
    }

    /// Abandons the active transaction client-side.
    pub fn abort(&mut self) {
        self.tx = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use wren_clock::Timestamp;

    fn val(s: &'static str) -> Value {
        Bytes::from_static(s.as_bytes())
    }

    fn vv(entries: &[u64]) -> VersionVector {
        VersionVector::from_entries(
            entries.iter().map(|m| Timestamp::from_micros(*m)).collect(),
        )
    }

    #[test]
    fn seen_vector_joins_snapshots_and_commits() {
        let mut c = CureClient::new(ClientId(1), ServerId::new(0, 0), 3);
        let tx = TxId::new(ServerId::new(0, 0), 1);
        let _ = c.start();
        c.on_start_resp(CureMsg::StartTxResp {
            tx,
            snapshot: vv(&[10, 20, 30]),
        });
        c.write([(Key(1), val("x"))]);
        let _ = c.commit();
        c.on_commit_resp(CureMsg::CommitResp {
            tx,
            commit_vec: vv(&[50, 20, 30]),
        });
        assert_eq!(c.seen(), &vv(&[50, 20, 30]));
        assert_eq!(c.stats().txs_committed, 1);
    }

    #[test]
    fn read_serves_ws_and_rs_locally() {
        let mut c = CureClient::new(ClientId(1), ServerId::new(0, 0), 1);
        let tx = TxId::new(ServerId::new(0, 0), 1);
        let _ = c.start();
        c.on_start_resp(CureMsg::StartTxResp {
            tx,
            snapshot: vv(&[5]),
        });
        c.write([(Key(1), val("w"))]);
        let outcome = c.read(&[Key(1), Key(2)]);
        assert_eq!(outcome.local, vec![(Key(1), Some(val("w")))]);
        let Some(CureMsg::TxReadReq { keys, .. }) = outcome.request else {
            panic!()
        };
        assert_eq!(keys, vec![Key(2)]);
        let got = c.on_read_resp(CureMsg::TxReadResp {
            tx,
            items: vec![(Key(2), None)],
        });
        assert_eq!(got, vec![(Key(2), None)]);
        // Repeatable read.
        let outcome = c.read(&[Key(2)]);
        assert!(outcome.request.is_none());
    }

    #[test]
    #[should_panic(expected = "transaction already active")]
    fn double_start_panics() {
        let mut c = CureClient::new(ClientId(1), ServerId::new(0, 0), 1);
        let _ = c.start();
        let _ = c.start();
    }

    #[test]
    fn read_only_commit_clears_tx() {
        let mut c = CureClient::new(ClientId(1), ServerId::new(0, 0), 2);
        let tx = TxId::new(ServerId::new(0, 0), 1);
        let _ = c.start();
        c.on_start_resp(CureMsg::StartTxResp {
            tx,
            snapshot: vv(&[1, 1]),
        });
        let msg = c.commit();
        assert!(matches!(msg, CureMsg::CommitReq { ref writes, .. } if writes.is_empty()));
        c.on_commit_resp(CureMsg::CommitResp {
            tx,
            commit_vec: vv(&[1, 1]),
        });
        assert!(!c.in_tx());
        assert_eq!(c.stats().txs_committed, 0);
    }
}
