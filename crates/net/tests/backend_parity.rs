//! Backend parity: the io_uring reactor must be observably identical
//! to the epoll reactor — same frames, same burst boundaries, same
//! outbox overflow semantics, same close delivery — plus the graceful
//! fallback the builder knob promises when detection fails.
//!
//! Every test in this file holds [`serial`]: the forced-unavailability
//! test flips a process-global probe override, which must not race the
//! parity tests that create real uring reactors.

use bytes::Bytes;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};
use wren_net::{
    Backend, ConnHandle, FramedReader, Reactor, ReactorHandler, ReactorOptions,
};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// True when the kernel really supports everything the uring backend
/// submits; tests over `Backend::Uring` skip (loudly) otherwise.
fn uring_or_skip(test: &str) -> bool {
    if wren_net::uring::available() {
        true
    } else {
        eprintln!("SKIP {test}: io_uring unavailable on this kernel/container");
        false
    }
}

fn reframe(payload: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Bytes::from(out)
}

/// Echoes every frame and counts closes, so tests can assert the
/// `on_close` exactly-once contract across backends.
struct Echo {
    closes: AtomicUsize,
}

impl ReactorHandler for Echo {
    type Conn = ();
    fn on_accept(&self, _ctx: u64, _handle: &ConnHandle) -> Option<()> {
        Some(())
    }
    fn on_frame(&self, _c: &mut (), handle: &ConnHandle, payload: Bytes) -> bool {
        handle.enqueue(reframe(&payload))
    }
    fn on_close(&self, _c: &mut (), _handle: &ConnHandle) {
        self.closes.fetch_add(1, Ordering::SeqCst);
    }
}

fn start_echo(
    backend: Backend,
    threads: usize,
    conn_cap: usize,
) -> (Reactor<Echo>, std::net::SocketAddr) {
    let reactor = Reactor::with_options(
        threads,
        Echo {
            closes: AtomicUsize::new(0),
        },
        ReactorOptions {
            backend,
            ..ReactorOptions::default()
        },
    )
    .unwrap();
    assert_eq!(reactor.backend(), backend, "requested backend must hold");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    reactor.add_listener(listener, 0, conn_cap).unwrap();
    (reactor, addr)
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => panic!("connect: {e}"),
        }
    }
}

/// The scripted echo workload both backends must answer identically:
/// several connections, several rounds, mixed payload sizes (including
/// one larger than the 16 KiB recv buffer, so uring's mid-frame
/// reassembly across provided buffers is exercised).
fn scripted_echo(backend: Backend) -> Vec<Vec<u8>> {
    let (reactor, addr) = start_echo(backend, 2, 64 * 1024 * 1024);
    let mut clients: Vec<(TcpStream, FramedReader)> = (0..6)
        .map(|_| {
            let s = connect(addr);
            let r = FramedReader::new(s.try_clone().unwrap());
            (s, r)
        })
        .collect();
    let sizes = [1usize, 17, 4096, 40_000];
    let mut echoed = Vec::new();
    for round in 0..3u8 {
        for (i, (w, _)) in clients.iter_mut().enumerate() {
            for (j, &n) in sizes.iter().enumerate() {
                let payload = vec![round ^ (i as u8) ^ (j as u8).wrapping_mul(37); n];
                w.write_all(&reframe(&payload)).unwrap();
            }
        }
        for (_, r) in clients.iter_mut() {
            for _ in &sizes {
                echoed.push(r.next_frame().unwrap().expect("echo").to_vec());
            }
        }
    }
    drop(clients);
    reactor.shutdown();
    reactor.join();
    echoed
}

#[test]
fn scripted_echo_identical_across_backends() {
    let _g = serial();
    let epoll = scripted_echo(Backend::Epoll);
    if !uring_or_skip("scripted_echo_identical_across_backends") {
        return;
    }
    let uring = scripted_echo(Backend::Uring);
    assert_eq!(epoll, uring, "byte-identical echo across backends");
}

#[test]
fn uring_dribbled_bytes_reassemble() {
    let _g = serial();
    if !uring_or_skip("uring_dribbled_bytes_reassemble") {
        return;
    }
    let (reactor, addr) = start_echo(Backend::Uring, 1, 1024 * 1024);
    let mut w = connect(addr);
    let mut r = FramedReader::new(w.try_clone().unwrap());
    let payload = vec![0xA5u8; 300];
    let framed = reframe(&payload);
    // One byte per write: every frame boundary lands mid-recv.
    for b in framed.iter() {
        w.write_all(&[*b]).unwrap();
        std::thread::sleep(Duration::from_micros(200));
    }
    assert_eq!(r.next_frame().unwrap().expect("frame").as_ref(), &payload[..]);
    reactor.shutdown();
    reactor.join();
}

#[test]
fn uring_overflow_severs_non_reading_peer() {
    let _g = serial();
    if !uring_or_skip("uring_overflow_severs_non_reading_peer") {
        return;
    }
    // Cap small enough that echoes to a never-reading peer overflow.
    let (reactor, addr) = start_echo(Backend::Uring, 1, 64 * 1024);
    let mut w = connect(addr);
    let payload = vec![7u8; 16 * 1024];
    // Keep pushing until the reactor severs us (write fails) or we
    // give up. The peer never reads, so its outbox must overflow.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut severed = false;
    while Instant::now() < deadline {
        if w.write_all(&reframe(&payload)).is_err() {
            severed = true;
            break;
        }
    }
    assert!(severed, "non-reading peer must be severed by overflow");
    reactor.shutdown();
    reactor.join();
}

#[test]
fn uring_close_is_delivered_exactly_once_per_conn() {
    let _g = serial();
    if !uring_or_skip("uring_close_is_delivered_exactly_once_per_conn") {
        return;
    }
    let (reactor, addr) = start_echo(Backend::Uring, 2, 1024 * 1024);
    let conns: Vec<TcpStream> = (0..8).map(|_| connect(addr)).collect();
    // Half the peers hang up; the rest are alive at shutdown.
    for c in conns.iter().take(4) {
        c.shutdown(std::net::Shutdown::Both).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while reactor.handler().closes.load(Ordering::SeqCst) < 4 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(reactor.handler().closes.load(Ordering::SeqCst), 4);
    reactor.shutdown();
    reactor.join();
    assert_eq!(
        reactor.handler().closes.load(Ordering::SeqCst),
        8,
        "every accepted conn gets exactly one on_close"
    );
    drop(conns);
}

#[test]
fn forced_uring_falls_back_to_epoll_when_detection_fails() {
    let _g = serial();
    wren_net::uring::force_unavailable(true);
    let result = Reactor::with_options(
        1,
        Echo {
            closes: AtomicUsize::new(0),
        },
        ReactorOptions {
            backend: Backend::Uring,
            ..ReactorOptions::default()
        },
    );
    wren_net::uring::force_unavailable(false);
    let reactor = result.expect("fallback must not error");
    assert_eq!(
        reactor.backend(),
        Backend::Epoll,
        "Backend::Uring on a failed probe must fall back to epoll"
    );
    // And the fallback reactor must actually serve traffic.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    reactor.add_listener(listener, 0, 1024 * 1024).unwrap();
    let mut w = connect(addr);
    let mut r = FramedReader::new(w.try_clone().unwrap());
    w.write_all(&reframe(b"hello")).unwrap();
    assert_eq!(r.next_frame().unwrap().expect("frame").as_ref(), b"hello");
    reactor.shutdown();
    reactor.join();
}
