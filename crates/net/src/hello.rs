//! The connection handshake: the first frame on every connection.
//!
//! A framed byte stream carries bare protocol messages — no per-message
//! source field (the codec's byte accounting must match the simulator's,
//! where transport identity is free). Source attribution instead rides
//! on the connection itself: the dialing peer sends one [`Hello`] frame
//! naming who it is, and every subsequent frame on that connection is
//! attributed to that identity.

use crate::NetError;
use bytes::Bytes;
use wren_protocol::codec::{Dec, Enc};
use wren_protocol::frame::FRAME_HEADER_LEN;
use wren_protocol::{ClientId, ServerId};

/// Who is on the dialing end of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hello {
    /// A client session (messages are `Dest::Client(id)`-sourced).
    Client(ClientId),
    /// A partition server's outbound link (messages are
    /// `Dest::Server(id)`-sourced).
    Server(ServerId),
}

/// Handshake tags live outside the protocol-message tag space (Wren
/// uses 0–16, Cure 64–80) so a stray protocol frame can never pass as a
/// hello.
const TAG_HELLO_CLIENT: u8 = 0xC1;
const TAG_HELLO_SERVER: u8 = 0xC5;

impl Hello {
    /// Encodes the handshake as a complete frame (header + payload),
    /// ready to write as the first bytes on a connection.
    pub fn encode_framed(&self) -> Bytes {
        let payload_len = match self {
            Hello::Client(_) => 5,
            Hello::Server(_) => 4,
        };
        let mut e = Enc::with_capacity(FRAME_HEADER_LEN + payload_len);
        e.put_u32(payload_len as u32);
        match self {
            Hello::Client(c) => {
                e.put_u8(TAG_HELLO_CLIENT);
                e.put_u32(c.0);
            }
            Hello::Server(s) => {
                e.put_u8(TAG_HELLO_SERVER);
                e.put_u8(s.dc.0);
                e.put_u16(s.partition.0);
            }
        }
        e.finish()
    }

    /// Decodes a handshake from the first frame's payload.
    ///
    /// # Errors
    ///
    /// [`NetError::BadHello`] if the payload is not a handshake.
    pub fn decode(payload: &[u8]) -> Result<Hello, NetError> {
        let mut d = Dec::new(payload);
        let hello = match d.get_u8().map_err(|_| NetError::BadHello)? {
            TAG_HELLO_CLIENT => {
                Hello::Client(ClientId(d.get_u32().map_err(|_| NetError::BadHello)?))
            }
            TAG_HELLO_SERVER => {
                let dc = d.get_u8().map_err(|_| NetError::BadHello)?;
                let p = d.get_u16().map_err(|_| NetError::BadHello)?;
                Hello::Server(ServerId::new(dc, p))
            }
            _ => return Err(NetError::BadHello),
        };
        d.expect_end().map_err(|_| NetError::BadHello)?;
        Ok(hello)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wren_protocol::frame::FrameDecoder;

    fn round_trip(h: Hello) -> Hello {
        let framed = h.encode_framed();
        let mut dec = FrameDecoder::new();
        dec.extend(&framed);
        let payload = dec.next_frame().unwrap().expect("complete");
        Hello::decode(&payload).expect("valid hello")
    }

    #[test]
    fn client_hello_round_trips() {
        let h = Hello::Client(ClientId(77));
        assert_eq!(round_trip(h), h);
    }

    #[test]
    fn server_hello_round_trips() {
        let h = Hello::Server(ServerId::new(3, 12));
        assert_eq!(round_trip(h), h);
    }

    #[test]
    fn protocol_frames_are_rejected_as_hello() {
        use wren_clock::Timestamp;
        let msg = wren_protocol::WrenMsg::Heartbeat {
            t: Timestamp::ZERO,
        };
        assert!(matches!(
            Hello::decode(&msg.encode()),
            Err(NetError::BadHello)
        ));
        assert!(matches!(Hello::decode(&[]), Err(NetError::BadHello)));
        // Trailing garbage after a valid hello payload is rejected too.
        let mut bytes = Hello::Client(ClientId(1)).encode_framed().to_vec();
        bytes.push(0);
        assert!(matches!(
            Hello::decode(&bytes[FRAME_HEADER_LEN..]),
            Err(NetError::BadHello)
        ));
    }
}
