//! Pure arithmetic behind the vectored outbox drains.
//!
//! Both send paths — the reactor's [`write_ready`](crate::reactor) and
//! the threaded fabric's outbox writer — drain queued frames with
//! `writev(2)` (via [`std::io::Write::write_vectored`]): many frames
//! per syscall instead of one. A vectored write may be *partial* at any
//! byte — mid-frame, mid-iovec, exactly on a boundary — so the
//! bookkeeping that turns "the kernel accepted `n` bytes" back into
//! "which frames are done, and how far into the next one are we" must
//! be exact. That arithmetic lives here, free of sockets and locks, so
//! the property tests can drive it through every possible split offset.
//!
//! The two halves:
//!
//! * [`plan_batch`] — how many frames (starting at the queue front,
//!   whose first `front_written` bytes are already on the wire) to
//!   offer the next `writev`, bounded by an iovec cap and a byte
//!   budget. At least one frame is always offered when the queue is
//!   non-empty, so a frame larger than the budget still drains (in
//!   budget-sized partial writes) rather than starving.
//! * [`settle`] — given the lengths of the offered frames, the
//!   pre-write cursor and the byte count the kernel accepted, how many
//!   frames completed and where the cursor now sits.

use bytes::Bytes;
use std::collections::VecDeque;

/// Most frames offered to one `writev`. Well under Linux's
/// `UIO_MAXIOV` (1024); past a few dozen iovecs the syscall
/// amortization has flattened and the per-flush clone cost (one
/// refcount bump per frame) starts to matter instead.
pub(crate) const MAX_WRITE_IOVECS: usize = 64;

/// How many frames from the front of `frames` the next vectored write
/// should carry, such that the *unwritten* bytes offered (the front
/// frame minus its `front_written` prefix, every later frame whole)
/// stay within `budget` — except that the first frame is always
/// included, and the frame that crosses the budget is included too
/// (partial-write resumption handles its tail). Returns 0 iff the
/// queue is empty.
pub(crate) fn plan_batch(frames: &VecDeque<Bytes>, front_written: usize, budget: usize) -> usize {
    let mut take = 0usize;
    let mut bytes = 0usize;
    for f in frames.iter().take(MAX_WRITE_IOVECS) {
        let remaining = if take == 0 {
            f.len() - front_written
        } else {
            f.len()
        };
        take += 1;
        bytes += remaining;
        if bytes >= budget {
            break;
        }
    }
    take
}

/// Settles the accounting after a vectored write accepted `written`
/// bytes of a batch whose frame lengths are `lens` (front first, its
/// first `front_written` bytes excluded from what was offered).
/// Returns `(completed, new_front_written)`: how many frames the write
/// finished, and the cursor into the first unfinished one. Zero-length
/// remainders count as completed even when `written == 0`.
pub(crate) fn settle(lens: &[usize], front_written: usize, written: usize) -> (usize, usize) {
    let mut left = written;
    let mut cursor = front_written;
    let mut completed = 0usize;
    for &len in lens {
        let remaining = len - cursor;
        if left >= remaining {
            left -= remaining;
            cursor = 0;
            completed += 1;
        } else {
            cursor += left;
            left = 0;
            break;
        }
    }
    debug_assert_eq!(left, 0, "kernel accepted more bytes than were offered");
    (completed, cursor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference drain: a queue of frames pushed through plan/settle
    /// with the kernel accepting an arbitrary byte count per call,
    /// collecting the bytes exactly as the iovec layout offers them.
    fn drain_with_splits(frames: &[Vec<u8>], splits: &[usize], budget: usize) -> Vec<u8> {
        let mut queue: VecDeque<Bytes> =
            frames.iter().map(|f| Bytes::from(f.clone())).collect();
        let mut front_written = 0usize;
        let mut wire = Vec::new();
        let mut split_iter = splits.iter().copied().chain(std::iter::repeat(usize::MAX));
        while !queue.is_empty() {
            let take = plan_batch(&queue, front_written, budget);
            assert!(take >= 1, "non-empty queue must offer at least one frame");
            assert!(take <= MAX_WRITE_IOVECS);
            let lens: Vec<usize> = queue.iter().take(take).map(|f| f.len()).collect();
            let offered: usize = lens.iter().sum::<usize>() - front_written;
            // The "kernel" accepts an arbitrary prefix of the offer.
            let accept = split_iter.next().unwrap().min(offered);
            // Copy the accepted bytes exactly as the iovec layout lays
            // them out: front frame from its cursor, later frames whole.
            let mut left = accept;
            for (i, f) in queue.iter().take(take).enumerate() {
                let start = if i == 0 { front_written } else { 0 };
                let n = left.min(f.len() - start);
                wire.extend_from_slice(&f[start..start + n]);
                left -= n;
                if left == 0 {
                    break;
                }
            }
            let (completed, new_front) = settle(&lens, front_written, accept);
            for _ in 0..completed {
                queue.pop_front();
            }
            front_written = new_front;
            if accept == 0 && offered > 0 {
                // A real drain treats this as a dead socket; the
                // reference drain just moves to the next split.
                continue;
            }
        }
        assert_eq!(front_written, 0, "drained queue must leave no cursor");
        wire
    }

    fn concat(frames: &[Vec<u8>]) -> Vec<u8> {
        frames.iter().flat_map(|f| f.iter().copied()).collect()
    }

    #[test]
    fn every_split_offset_of_a_small_batch() {
        // Three frames, every single split point of the total byte
        // count, including 0 and the exact frame boundaries.
        let frames = vec![vec![1u8; 5], vec![2u8; 1], vec![3u8; 7]];
        let total: usize = frames.iter().map(Vec::len).sum();
        for first in 0..=total {
            let wire = drain_with_splits(&frames, &[first], usize::MAX);
            assert_eq!(wire, concat(&frames), "split at offset {first}");
        }
        // And one byte at a time — thirteen one-byte "kernel" accepts.
        let dribble: Vec<usize> = vec![1; total];
        assert_eq!(drain_with_splits(&frames, &dribble, usize::MAX), concat(&frames));
    }

    #[test]
    fn empty_frames_complete_without_bytes() {
        let frames = vec![vec![], vec![9u8; 3], vec![]];
        assert_eq!(drain_with_splits(&frames, &[0, 1, 1, 1], usize::MAX), concat(&frames));
    }

    #[test]
    fn plan_always_offers_the_oversized_front() {
        let mut q = VecDeque::new();
        q.push_back(Bytes::from(vec![0u8; 1000]));
        q.push_back(Bytes::from(vec![0u8; 10]));
        // Budget smaller than the front frame: exactly one frame offered.
        assert_eq!(plan_batch(&q, 0, 64), 1);
        // A cursor deep into the front shrinks its remainder below the
        // budget, letting the next frame join the batch.
        assert_eq!(plan_batch(&q, 950, 64), 2);
        assert_eq!(plan_batch(&VecDeque::new(), 0, 64), 0);
    }

    proptest! {
        /// Any frame sequence, drained under any budget with the kernel
        /// accepting arbitrary byte counts per writev, produces exactly
        /// the concatenated byte stream — so a receiver's decoder sees
        /// the identical frame sequence.
        #[test]
        fn arbitrary_splits_reassemble_exactly(
            frames in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..96), 1..12),
            splits in proptest::collection::vec(1usize..64, 1..64),
            budget in 1usize..256,
        ) {
            let wire = drain_with_splits(&frames, &splits, budget);
            prop_assert_eq!(wire, concat(&frames));
        }
    }
}
