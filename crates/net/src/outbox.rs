//! The per-connection send queue: bounded, never blocking the enqueuer.
//!
//! Wren's engine threads (the partition writer, the read workers) must
//! never block on a peer's receive window — a slow or stalled client
//! would otherwise transitively stall every other session on the
//! partition. So nothing protocol-side ever calls `write(2)`: responses
//! are enqueued on the connection's [`Outbox`] in O(1) and a dedicated
//! writer thread drains the queue into the socket at whatever pace the
//! peer sustains. The drain is **vectored**: the writer pops everything
//! queued (iovec-capped) and ships it with `writev(2)` — one syscall
//! per burst, not per frame — resuming partial writes mid-frame through
//! the [`crate::writev`] arithmetic.
//!
//! The queue is **bounded by bytes**. A peer that stops reading backs
//! its queue up to the cap, at which point the connection is declared
//! dead: the outbox closes, the socket is shut down (waking the
//! connection's reader thread too) and subsequent enqueues are dropped.
//! That is the right failure mode for a transactional store — the
//! session's requests time out client-side and the partition spends
//! zero further resources on it.

use crate::writev::{plan_batch, settle};
use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{IoSlice, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Default outbox capacity: queued response bytes per connection.
pub const DEFAULT_OUTBOX_BYTES: usize = 4 * 1024 * 1024;

struct Queue {
    frames: VecDeque<Bytes>,
    queued_bytes: usize,
    /// No further enqueues; the writer drains what is queued and exits.
    closed: bool,
    /// Drop everything immediately (overflow or hard shutdown).
    discard: bool,
}

impl Queue {
    /// Kills the queue: no more enqueues, nothing left to flush. The
    /// overflow, hard-shutdown and write-error paths all converge here.
    fn kill(&mut self) {
        self.closed = true;
        self.discard = true;
        self.frames.clear();
        self.queued_bytes = 0;
    }
}

struct Inner {
    q: Mutex<Queue>,
    ready: Condvar,
    max_bytes: usize,
    /// Kept for `shutdown` (waking a writer blocked in `write(2)` and
    /// the connection's reader thread).
    stream: TcpStream,
    /// Frames fully drained per `writev` call (see
    /// [`Outbox::spawn_instrumented`]); `None` skips recording.
    writev_frames: Option<wren_obs::Histogram>,
}

/// Handle to a connection's send queue. Cloneable; all clones feed the
/// same writer thread.
#[derive(Clone)]
pub struct Outbox {
    inner: Arc<Inner>,
}

impl Outbox {
    /// Creates the outbox for `stream` and spawns its writer thread.
    ///
    /// `max_bytes` bounds the queued (not yet written) bytes; an
    /// enqueue that would exceed it kills the connection. The returned
    /// join handle is the writer thread; join it after
    /// [`close`](Self::close) or [`shutdown`](Self::shutdown) for
    /// deterministic teardown.
    pub fn spawn(stream: TcpStream, max_bytes: usize) -> std::io::Result<(Outbox, JoinHandle<()>)> {
        Self::spawn_instrumented(stream, max_bytes, None)
    }

    /// [`spawn`](Self::spawn), plus a histogram recording how many
    /// frames each `writev(2)` fully drained — the live measure of the
    /// vectored send path's syscall amortization.
    ///
    /// # Errors
    ///
    /// Stream-clone failures (fd exhaustion).
    pub fn spawn_instrumented(
        stream: TcpStream,
        max_bytes: usize,
        writev_frames: Option<wren_obs::Histogram>,
    ) -> std::io::Result<(Outbox, JoinHandle<()>)> {
        let write_half = stream.try_clone()?;
        let inner = Arc::new(Inner {
            q: Mutex::new(Queue {
                frames: VecDeque::new(),
                queued_bytes: 0,
                closed: false,
                discard: false,
            }),
            ready: Condvar::new(),
            max_bytes,
            stream,
            writev_frames,
        });
        let outbox = Outbox {
            inner: Arc::clone(&inner),
        };
        let handle = std::thread::spawn(move || writer_loop(inner, write_half));
        Ok((outbox, handle))
    }

    /// Enqueues a framed message without ever blocking.
    ///
    /// Returns `false` if the connection is already closed **or** this
    /// enqueue overflowed the cap (in which case the connection is torn
    /// down: socket shut both ways, queue discarded). The caller treats
    /// `false` like a send on a disconnected channel — the peer is gone.
    ///
    /// A frame offered to an **empty** queue is always admitted, even
    /// one larger than the cap: the cap exists to catch a peer that
    /// stopped *reading* (its queue only backs up when the writer is
    /// stuck behind unread bytes), not to bound message size — a prompt
    /// reader must never be disconnected for one large response.
    pub fn enqueue(&self, frame: Bytes) -> bool {
        let mut q = self.inner.q.lock().unwrap_or_else(|e| e.into_inner());
        if q.closed {
            return false;
        }
        if q.queued_bytes > 0 && q.queued_bytes + frame.len() > self.inner.max_bytes {
            // Slow-client overflow: kill the connection, never block.
            q.kill();
            drop(q);
            let _ = self.inner.stream.shutdown(Shutdown::Both);
            self.inner.ready.notify_all();
            return false;
        }
        q.queued_bytes += frame.len();
        q.frames.push_back(frame);
        drop(q);
        self.inner.ready.notify_one();
        true
    }

    /// Closes the outbox gracefully: queued frames are still flushed,
    /// then the writer thread shuts the socket's write half and exits.
    /// Idempotent.
    pub fn close(&self) {
        let mut q = self.inner.q.lock().unwrap_or_else(|e| e.into_inner());
        q.closed = true;
        drop(q);
        self.inner.ready.notify_all();
    }

    /// Hard shutdown: discards queued frames, shuts the socket both
    /// ways (waking the reader thread as well as any blocked write) and
    /// stops the writer thread. Idempotent.
    pub fn shutdown(&self) {
        let mut q = self.inner.q.lock().unwrap_or_else(|e| e.into_inner());
        q.kill();
        drop(q);
        let _ = self.inner.stream.shutdown(Shutdown::Both);
        self.inner.ready.notify_all();
    }

    /// True once the outbox is closed (gracefully or by overflow).
    pub fn is_closed(&self) -> bool {
        self.inner.q.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Bytes currently queued and unwritten.
    pub fn queued_bytes(&self) -> usize {
        self.inner
            .q
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queued_bytes
    }

    /// True if `other` is a handle to the same connection.
    pub fn same_as(&self, other: &Outbox) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

fn writer_loop(inner: Arc<Inner>, mut stream: TcpStream) {
    let mut batch: Vec<Bytes> = Vec::new();
    loop {
        batch.clear();
        {
            let mut q = inner.q.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if q.discard {
                    return;
                }
                if !q.frames.is_empty() {
                    // Pop a whole batch (iovec-capped) under one lock
                    // hold: everything queued leaves in as few writev
                    // calls as the kernel allows, and popped bytes stop
                    // counting against the cap exactly as before.
                    let take = plan_batch(&q.frames, 0, usize::MAX);
                    for _ in 0..take {
                        let f = q.frames.pop_front().expect("planned frame");
                        q.queued_bytes -= f.len();
                        batch.push(f);
                    }
                    break;
                }
                if q.closed {
                    // Graceful drain complete: signal EOF to the peer.
                    drop(q);
                    let _ = stream.flush();
                    let _ = inner.stream.shutdown(Shutdown::Write);
                    return;
                }
                q = inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }
        if write_batch(&mut stream, &batch, inner.writev_frames.as_ref()).is_err() {
            // Peer is gone: discard the rest, sever the read half too
            // (so the connection's reader thread is not left waiting on
            // a half-dead socket), and stop.
            inner.q.lock().unwrap_or_else(|e| e.into_inner()).kill();
            let _ = inner.stream.shutdown(Shutdown::Both);
            return;
        }
    }
}

/// Writes every byte of `batch` (this writer may block — it has a
/// thread to itself), vectored: each `writev` carries all still-
/// unwritten frames, and a partial write resumes mid-frame via
/// [`settle`] — the wire bytes are identical to a `write_all` per
/// frame.
fn write_batch(
    stream: &mut TcpStream,
    batch: &[Bytes],
    writev_frames: Option<&wren_obs::Histogram>,
) -> std::io::Result<()> {
    let lens: Vec<usize> = batch.iter().map(Bytes::len).collect();
    let mut first = 0usize; // first unfinished frame
    let mut cursor = 0usize; // bytes of it already written
    while first < batch.len() {
        let offered: usize = lens[first..].iter().sum::<usize>() - cursor;
        if offered == 0 {
            // Only zero-length frames remain; nothing to write.
            if let Some(h) = writev_frames {
                h.record((batch.len() - first) as u64);
            }
            break;
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(batch.len() - first);
        slices.push(IoSlice::new(&batch[first][cursor..]));
        for f in &batch[first + 1..] {
            slices.push(IoSlice::new(f));
        }
        match stream.write_vectored(&slices) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket accepted no bytes",
                ))
            }
            Ok(n) => {
                let (completed, new_cursor) = settle(&lens[first..], cursor, n);
                first += completed;
                cursor = new_cursor;
                if let Some(h) = writev_frames {
                    h.record(completed as u64);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dial = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (dial, accepted)
    }

    #[test]
    fn frames_flow_through() {
        let (a, mut b) = pair();
        let (outbox, handle) = Outbox::spawn(a, 1024).unwrap();
        assert!(outbox.enqueue(Bytes::copy_from_slice(b"hello ")));
        assert!(outbox.enqueue(Bytes::copy_from_slice(b"world")));
        outbox.close();
        handle.join().unwrap();
        let mut got = Vec::new();
        b.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"hello world");
    }

    #[test]
    fn overflow_kills_the_connection_without_blocking() {
        let (a, _b) = pair(); // peer never reads
        let (outbox, handle) = Outbox::spawn(a, 64 * 1024).unwrap();
        // Frames big enough that kernel socket buffering (a few MiB on
        // loopback) saturates after a handful, making the writer block
        // and the queue genuinely back up — deterministic overflow.
        let chunk = Bytes::from(vec![7u8; 4 * 1024 * 1024]);
        let mut accepted = 0;
        for _ in 0..100 {
            if outbox.enqueue(chunk.clone()) {
                accepted += 1;
            } else {
                break;
            }
        }
        assert!(
            accepted < 100,
            "a never-reading peer must eventually overflow the outbox"
        );
        assert!(outbox.is_closed());
        assert!(!outbox.enqueue(chunk.clone()), "enqueue after overflow must fail");
        handle.join().unwrap();
    }

    #[test]
    fn single_frame_beyond_cap_is_admitted_when_queue_is_empty() {
        let (a, mut b) = pair();
        let (outbox, handle) = Outbox::spawn(a, 16).unwrap(); // tiny cap
        let big = Bytes::from(vec![9u8; 1024]); // 64x the cap
        assert!(
            outbox.enqueue(big.clone()),
            "an empty queue must admit one frame of any size"
        );
        outbox.close();
        handle.join().unwrap();
        let mut got = Vec::new();
        b.read_to_end(&mut got).unwrap();
        assert_eq!(got.len(), big.len(), "the prompt reader got the whole frame");
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let (a, _b) = pair();
        let (outbox, handle) = Outbox::spawn(a, 1024).unwrap();
        outbox.enqueue(Bytes::copy_from_slice(b"x"));
        outbox.shutdown();
        outbox.shutdown();
        outbox.close();
        handle.join().unwrap();
        assert_eq!(outbox.queued_bytes(), 0);
    }
}
