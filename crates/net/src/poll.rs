//! A minimal safe wrapper over Linux `epoll` + `eventfd`.
//!
//! The reactor ([`crate::reactor`]) needs exactly four kernel
//! facilities: an interest list (`epoll_ctl`), a blocking readiness
//! wait (`epoll_wait`), a way for *other* threads to interrupt that
//! wait (`eventfd`), and nonblocking sockets (std provides those). The
//! build environment has no registry access, so instead of pulling in
//! `mio` this module declares the handful of raw syscall wrappers via
//! direct FFI — they live in libc, which std already links — and keeps
//! every `unsafe` line inside the tiny [`sys`] module. Everything
//! outside it is safe Rust over owned fds.
//!
//! Readiness is **level-triggered**: an fd with unread bytes (or free
//! send-buffer space, when write interest is armed) reports ready on
//! every wait until drained. That makes the reactor's read/write loops
//! simple to prove correct — a bounded drain per event cannot lose
//! data, because leftovers re-trigger the next wait.

use std::io;
use std::os::fd::{AsRawFd, OwnedFd};
use std::time::Duration;

/// The raw FFI surface: syscall declarations plus the one-line unsafe
/// wrappers that turn their return codes into `io::Result`s. Nothing
/// else in the crate is allowed to write `unsafe`.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// `struct epoll_event`. Packed on x86 so the layout matches the
    /// kernel ABI (the 64-bit `data` field is *not* 8-aligned there).
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    /// `struct sockaddr_in` (IPv4 only — the fabrics bind loopback).
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    pub struct SockAddrIn {
        pub sin_family: u16,
        pub sin_port: u16,
        pub sin_addr: u32,
        pub sin_zero: [u8; 8],
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const core::ffi::c_void, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, addrlen: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
    }

    /// Creates an IPv4 TCP listener bound to `(addr, port)` with
    /// `SO_REUSEADDR` set *before* the bind, so a restarted partition
    /// can rebind an address whose previous sockets linger in
    /// `TIME_WAIT`. `std::net::TcpListener::bind` offers no way to set
    /// the option pre-bind, which makes restart-in-place flaky.
    pub fn listener_reuseaddr(addr: [u8; 4], port: u16) -> io::Result<OwnedFd> {
        // SAFETY: plain syscall; a non-negative return is a fresh fd we
        // immediately take unique ownership of.
        let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let owned = unsafe { OwnedFd::from_raw_fd(fd) };
        let one: i32 = 1;
        // SAFETY: valid pointer + exact length of the option value.
        if unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEADDR,
                (&one as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        } < 0
        {
            return Err(io::Error::last_os_error());
        }
        let sa = SockAddrIn {
            sin_family: AF_INET as u16,
            sin_port: port.to_be(),
            sin_addr: u32::from_ne_bytes(addr),
            sin_zero: [0; 8],
        };
        // SAFETY: `sa` lives on the stack for the duration of the call;
        // the kernel copies it out.
        if unsafe { bind(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) } < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: plain syscall on the fd we own.
        if unsafe { listen(fd, 128) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(owned)
    }

    pub fn create_epoll() -> io::Result<OwnedFd> {
        // SAFETY: plain syscall; a non-negative return is a fresh fd we
        // immediately take unique ownership of.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    pub fn create_eventfd() -> io::Result<OwnedFd> {
        // SAFETY: as above — fresh fd, unique ownership.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    fn ctl(epfd: RawFd, op: i32, fd: RawFd, mut ev: Option<EpollEvent>) -> io::Result<()> {
        let ptr = ev
            .as_mut()
            .map_or(core::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is null (DEL) or points at a live stack value
        // for the duration of the call; the kernel copies it out.
        if unsafe { epoll_ctl(epfd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn ctl_add(epfd: RawFd, fd: RawFd, ev: EpollEvent) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_ADD, fd, Some(ev))
    }

    pub fn ctl_mod(epfd: RawFd, fd: RawFd, ev: EpollEvent) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_MOD, fd, Some(ev))
    }

    pub fn ctl_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_DEL, fd, None)
    }

    pub fn wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the out-pointer and capacity describe `events`
        // exactly; the kernel writes at most `len` entries.
        let n = unsafe {
            epoll_wait(
                epfd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    pub fn write_u64(fd: RawFd, v: u64) -> io::Result<()> {
        let bytes = v.to_ne_bytes();
        // SAFETY: valid pointer + length pair into a stack array.
        let n = unsafe { write(fd, bytes.as_ptr().cast(), bytes.len()) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn read_u64(fd: RawFd) -> io::Result<u64> {
        let mut bytes = [0u8; 8];
        // SAFETY: valid pointer + length pair into a stack array.
        let n = unsafe { read(fd, bytes.as_mut_ptr().cast(), bytes.len()) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(u64::from_ne_bytes(bytes))
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Bytes (or an EOF / error condition) are waiting to be read.
    /// Hangup and error states count as readable so the owner's next
    /// `read` surfaces them as `Ok(0)` / `Err` and the connection is
    /// torn down on the normal path.
    pub readable: bool,
    /// The send buffer has room (only reported while write interest is
    /// armed).
    pub writable: bool,
}

/// Reusable buffer of kernel-filled events for [`Poller::wait`].
pub struct PollEvents {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl PollEvents {
    /// A buffer receiving at most `cap` events per wait.
    pub fn with_capacity(cap: usize) -> PollEvents {
        PollEvents {
            buf: vec![sys::EpollEvent::default(); cap.max(1)],
            len: 0,
        }
    }

    /// The events the last [`Poller::wait`] filled in.
    pub fn iter(&self) -> impl Iterator<Item = PollEvent> + '_ {
        self.buf[..self.len].iter().map(|e| {
            // Copy out of the (possibly packed) struct before use.
            let bits = e.events;
            PollEvent {
                token: e.data,
                readable: bits
                    & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP)
                    != 0,
                writable: bits & sys::EPOLLOUT != 0,
            }
        })
    }
}

fn interest(token: u64, writable: bool) -> sys::EpollEvent {
    let mut events = sys::EPOLLIN | sys::EPOLLRDHUP;
    if writable {
        events |= sys::EPOLLOUT;
    }
    sys::EpollEvent {
        events,
        data: token,
    }
}

/// A level-triggered epoll instance: an interest list of fds, each
/// tagged with a caller-chosen `u64` token, and a blocking wait.
pub struct Poller {
    ep: OwnedFd,
}

impl Poller {
    /// Creates an empty interest list.
    ///
    /// # Errors
    ///
    /// The raw `epoll_create1` error (fd exhaustion, mostly).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            ep: sys::create_epoll()?,
        })
    }

    /// Adds `fd` with read interest (always) and, if `writable`, write
    /// interest. Readiness for it is reported under `token`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` error (`EEXIST`, `ENOMEM`, …).
    pub fn add(&self, fd: &impl AsRawFd, token: u64, writable: bool) -> io::Result<()> {
        sys::ctl_add(self.ep.as_raw_fd(), fd.as_raw_fd(), interest(token, writable))
    }

    /// Rewrites `fd`'s interest set (used to arm and disarm write
    /// interest as a connection's send queue fills and drains).
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` error (`ENOENT` if never added, …).
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, writable: bool) -> io::Result<()> {
        sys::ctl_mod(self.ep.as_raw_fd(), fd.as_raw_fd(), interest(token, writable))
    }

    /// Removes `fd` from the interest list. Closing an fd removes it
    /// implicitly; the explicit form exists for hygiene on paths that
    /// keep the fd open.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` error.
    pub fn remove(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::ctl_del(self.ep.as_raw_fd(), fd.as_raw_fd())
    }

    /// Blocks until at least one registered fd is ready (or `timeout`
    /// elapses, if given), filling `events`. Returns the event count;
    /// `EINTR` is swallowed and reported as zero events.
    ///
    /// # Errors
    ///
    /// The raw `epoll_wait` error, `EINTR` excepted.
    pub fn wait(&self, events: &mut PollEvents, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        events.len = 0;
        match sys::wait(self.ep.as_raw_fd(), &mut events.buf, timeout_ms) {
            Ok(n) => {
                events.len = n;
                Ok(n)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

/// A cross-thread wakeup line for a [`Poller`]: an `eventfd` registered
/// like any other fd. Any thread may [`wake`](Waker::wake); the poller
/// thread sees a readable event under the waker's token and
/// [`drain`](Waker::drain)s it.
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Creates the eventfd (nonblocking, so `wake` storms cannot stall
    /// the waking thread and `drain` cannot stall the poller).
    ///
    /// # Errors
    ///
    /// The raw `eventfd` error.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: sys::create_eventfd()?,
        })
    }

    /// Registers this waker with `poller` under `token`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` error.
    pub fn register(&self, poller: &Poller, token: u64) -> io::Result<()> {
        poller.add(&self.fd, token, false)
    }

    /// Nudges the poller thread. Never blocks; errors (a full counter —
    /// the wakeup is already pending) are ignored.
    pub fn wake(&self) {
        let _ = sys::write_u64(self.fd.as_raw_fd(), 1);
    }

    /// Clears the pending wakeup count so the level-triggered fd stops
    /// reporting readable. Called by the poller thread on its own token.
    pub fn drain(&self) {
        let _ = sys::read_u64(self.fd.as_raw_fd());
    }
}

impl AsRawFd for Waker {
    /// The raw eventfd, so other readiness backends (io_uring's
    /// `POLL_ADD` in [`crate::uring`]) can watch the same wakeup line
    /// the epoll path registers with its poller.
    fn as_raw_fd(&self) -> std::os::fd::RawFd {
        self.fd.as_raw_fd()
    }
}

/// Binds an IPv4 TCP listener with `SO_REUSEADDR` set before the bind.
///
/// A killed partition leaves its accepted sockets in `TIME_WAIT`; a
/// plain `TcpListener::bind` of the same address then fails with
/// `EADDRINUSE` for up to a minute, which would make restart-in-place
/// flaky. Std offers no pre-bind socket options without external
/// crates, so this goes through the [`sys`] FFI (`socket` →
/// `setsockopt` → `bind` → `listen`) and hands the fd to std.
///
/// # Errors
///
/// The raw error of whichever syscall failed.
pub fn bind_reusable(addr: std::net::SocketAddrV4) -> io::Result<std::net::TcpListener> {
    let fd = sys::listener_reuseaddr(addr.ip().octets(), addr.port())?;
    Ok(std::net::TcpListener::from(fd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{SocketAddr, TcpListener, TcpStream};

    #[test]
    fn waker_wakes_a_blocking_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        waker.register(&poller, 7).unwrap();

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake();
        });
        let mut events = PollEvents::with_capacity(8);
        let n = poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable);
        waker.drain();
        // Drained: an immediate wait times out instead of re-reporting.
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        t.join().unwrap();
    }

    #[test]
    fn socket_readability_is_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut dial = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&accepted, 42, false).unwrap();
        dial.write_all(b"ping").unwrap();

        let mut events = PollEvents::with_capacity(8);
        // Unread bytes keep reporting readable on every wait (LT).
        for _ in 0..2 {
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1);
            let ev = events.iter().next().unwrap();
            assert_eq!(ev.token, 42);
            assert!(ev.readable);
            assert!(!ev.writable);
        }
        // Arming write interest on an idle socket reports writable.
        poller.modify(&accepted, 42, true).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().next().unwrap().writable);
        poller.remove(&accepted).unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "removed fd must stop reporting");
    }

    #[test]
    fn reusable_bind_accepts_and_rebinds_same_port() {
        use std::net::{Ipv4Addr, SocketAddrV4};
        let first = bind_reusable(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = first.local_addr().unwrap();
        // A live connection through the bound listener works end to end.
        let mut dial = TcpStream::connect(addr).unwrap();
        let (mut accepted, _) = first.accept().unwrap();
        dial.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        std::io::Read::read_exact(&mut accepted, &mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        // Drop the listener with the accepted conn still open (its
        // teardown leaves TIME_WAIT state behind) and rebind the exact
        // same port immediately — the whole point of SO_REUSEADDR.
        drop(first);
        let SocketAddr::V4(v4) = addr else { panic!("loopback is v4") };
        let second = bind_reusable(v4).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);
    }
}
