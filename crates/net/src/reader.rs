//! Blocking framed reads over a socket.

use crate::{Hello, NetError};
use bytes::Bytes;
use std::io::Read;
use std::net::TcpStream;
use wren_protocol::frame::FrameDecoder;

/// Read-side chunk size. Small enough to keep per-connection memory
/// modest, large enough that a bulk replication burst needs few reads.
const READ_CHUNK: usize = 16 * 1024;

/// The receive half of a framed connection: wraps a [`TcpStream`] and a
/// [`FrameDecoder`], yielding one complete payload per call.
///
/// Chunk boundaries are immaterial: a peer may dribble single bytes or
/// batch many frames per segment, and the yielded payloads are
/// identical. If the stream has a read timeout configured, a quiet
/// period surfaces as [`NetError::Io`] with
/// [`is_timeout`](NetError::is_timeout) true.
pub struct FramedReader {
    stream: TcpStream,
    decoder: FrameDecoder,
    buf: Vec<u8>,
}

impl FramedReader {
    /// Wraps a connected stream with the default frame-size ceiling.
    pub fn new(stream: TcpStream) -> Self {
        FramedReader {
            stream,
            decoder: FrameDecoder::new(),
            buf: vec![0u8; READ_CHUNK],
        }
    }

    /// The wrapped stream (e.g. to set a read timeout).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Blocks until the next complete frame payload, `Ok(None)` on a
    /// clean EOF at a frame boundary.
    ///
    /// # Errors
    ///
    /// [`NetError::TruncatedFrame`] if the peer closed mid-frame,
    /// [`NetError::Frame`] on an oversized frame, [`NetError::Io`] on
    /// socket errors (including read timeouts).
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, NetError> {
        loop {
            if let Some(payload) = self.decoder.next_frame()? {
                return Ok(Some(payload));
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return if self.decoder.has_partial() {
                    Err(NetError::TruncatedFrame)
                } else {
                    Ok(None)
                };
            }
            self.decoder.extend(&self.buf[..n]);
        }
    }

    /// The next complete frame already sitting in the decoder's buffer,
    /// decoded **without touching the socket** — `Ok(None)` when more
    /// bytes would be needed. One socket read often lands several
    /// frames at once (a replication burst, a pipelined client); this
    /// lets the caller drain them all and pay downstream delivery once
    /// per burst instead of once per frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Frame`] on an oversized frame, as
    /// [`next_frame`](Self::next_frame) would.
    pub fn buffered_frame(&mut self) -> Result<Option<Bytes>, NetError> {
        Ok(self.decoder.next_frame()?)
    }

    /// Reads and decodes the connection's handshake (its first frame).
    ///
    /// # Errors
    ///
    /// [`NetError::BadHello`] if the first frame is not a handshake, or
    /// the connection closed before one arrived.
    pub fn read_hello(&mut self) -> Result<Hello, NetError> {
        match self.next_frame()? {
            Some(payload) => Hello::decode(&payload),
            None => Err(NetError::BadHello),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;
    use wren_clock::Timestamp;
    use wren_protocol::frame::frame_wren;
    use wren_protocol::WrenMsg;

    #[test]
    fn reads_frames_across_arbitrary_chunks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let msgs: Vec<WrenMsg> = (0..3)
                .map(|i| WrenMsg::Heartbeat {
                    t: Timestamp::from_micros(i),
                })
                .collect();
            let mut wire = Vec::new();
            for m in &msgs {
                wire.extend_from_slice(&frame_wren(m));
            }
            // Dribble the whole stream one byte at a time.
            for b in wire {
                s.write_all(&[b]).unwrap();
            }
        });
        let (accepted, _) = listener.accept().unwrap();
        let mut reader = FramedReader::new(accepted);
        for i in 0..3 {
            let p = reader.next_frame().unwrap().expect("frame");
            assert_eq!(
                WrenMsg::decode(&p).unwrap(),
                WrenMsg::Heartbeat {
                    t: Timestamp::from_micros(i)
                }
            );
        }
        assert!(reader.next_frame().unwrap().is_none(), "clean EOF");
        writer.join().unwrap();
    }

    #[test]
    fn mid_frame_close_is_truncation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let framed = frame_wren(&WrenMsg::Heartbeat {
                t: Timestamp::ZERO,
            });
            s.write_all(&framed[..framed.len() - 2]).unwrap();
            // Drop: close mid-frame.
        });
        let (accepted, _) = listener.accept().unwrap();
        let mut reader = FramedReader::new(accepted);
        assert!(matches!(
            reader.next_frame(),
            Err(NetError::TruncatedFrame)
        ));
        writer.join().unwrap();
    }
}
