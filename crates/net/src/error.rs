use std::fmt;
use wren_protocol::codec::CodecError;
use wren_protocol::frame::FrameError;

/// Errors surfaced by the TCP transport.
#[derive(Debug)]
pub enum NetError {
    /// The underlying socket failed (or timed out, for sockets with a
    /// read timeout configured).
    Io(std::io::Error),
    /// The peer closed the connection in the middle of a frame.
    TruncatedFrame,
    /// A frame violated the framing rules (e.g. oversized).
    Frame(FrameError),
    /// A frame's payload failed to decode.
    Codec(CodecError),
    /// The first frame of a connection was not a valid handshake.
    BadHello,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::TruncatedFrame => write!(f, "connection closed mid-frame"),
            NetError::Frame(e) => write!(f, "framing error: {e}"),
            NetError::Codec(e) => write!(f, "payload decode error: {e}"),
            NetError::BadHello => write!(f, "connection did not start with a valid handshake"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl NetError {
    /// True if this error is a read timeout (the socket had a read
    /// timeout configured and it expired) rather than a dead peer.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            NetError::Io(e) if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
        )
    }
}
