//! Deterministic network fault injection at the frame boundary.
//!
//! A [`FaultPlan`] is a cloneable handle both TCP fabrics consult on
//! every **server-to-server** frame and dial. It turns a healthy
//! loopback network into an adversarial one — frames are dropped,
//! duplicated, delayed behind later frames (reordering), whole links
//! severed, dials refused, peer sets partitioned — while staying
//! **replayable**: every per-link decision comes from a [`SmallRng`]
//! seeded from the plan seed and the link endpoints, so the same seed
//! yields the same fault sequence on every run.
//!
//! Two deliberate semantic choices, both forced by TCP:
//!
//! * **A dropped frame severs its link.** TCP cannot lose one frame
//!   mid-stream and deliver the next — the stream either carries every
//!   byte in order or it breaks. Silently skipping a frame would also
//!   be *wrong* at the protocol layer: a lost `Replicate` followed by a
//!   delivered `Heartbeat` would advance the receiver's version vector
//!   past versions it never saw. Severing instead forces the receiver
//!   down its link-loss path (catch-up, see `wren-rt`), which is
//!   exactly what a real broken socket does.
//! * **Delay is hold-and-release, not a timer.** A delayed frame is
//!   held inside the plan and released behind the next frame(s) on the
//!   same link (bounded by [`HOLD_CAP`] and a [`HOLD_MAX_AGE`] age
//!   flush), so delay and reordering need no extra threads and stay
//!   deterministic in *sequence* even though wall-clock release times
//!   vary.
//!
//! The plan keeps its own [`FaultStats`]; fabric-level
//! `dropped_frames` counters intentionally do **not** count injected
//! faults, so the existing "zero frames dropped on a healthy run"
//! oracles keep their meaning.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wren_protocol::ServerId;

/// Most frames a link may hold back for delay/reorder before a forced
/// flush.
pub const HOLD_CAP: usize = 4;

/// Oldest a held frame may get before the next send on its link
/// flushes it regardless of the dice.
pub const HOLD_MAX_AGE: Duration = Duration::from_millis(5);

/// What a fabric must do with one outbound frame.
#[derive(Debug, PartialEq, Eq)]
pub enum SendVerdict {
    /// No fault: transmit the frame as handed in.
    Pass,
    /// Replace the frame with `frames` (possibly empty — held for
    /// later; possibly several — duplicates and/or released earlier
    /// holds), then sever the link if `sever` is set.
    Mutate {
        /// The frames to actually transmit, in order.
        frames: Vec<Vec<u8>>,
        /// Tear the connection down after transmitting `frames`.
        sever: bool,
    },
}

/// Snapshot of the plan's injection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames dropped (each also severed its link).
    pub dropped: u64,
    /// Frames transmitted twice.
    pub duplicated: u64,
    /// Frames held back to be released behind later traffic.
    pub delayed: u64,
    /// Links severed by [`FaultPlan::sever_link`] or a partition rule
    /// (drop-induced severs count under `dropped`).
    pub severed: u64,
    /// Dial attempts refused.
    pub dials_refused: u64,
}

impl FaultStats {
    /// Total faults injected — the chaos oracle asserts this is
    /// non-zero, proving the run actually exercised the machinery.
    pub fn injected(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.severed + self.dials_refused
    }
}

/// Mutable fault rules, adjustable mid-run from the driving test.
#[derive(Debug, Default)]
struct Rules {
    /// Per-frame probability of drop-and-sever.
    drop: f64,
    /// Per-frame probability of duplication.
    duplicate: f64,
    /// Per-frame probability of hold-for-reorder.
    delay: f64,
    /// Refuse every dial while set.
    refuse_dials: bool,
    /// One-shot sever orders, consumed by the next send on the link.
    severed: HashSet<(ServerId, ServerId)>,
    /// While `Some`, frames and dials crossing the group boundary are
    /// refused/severed.
    island: Option<HashSet<ServerId>>,
}

/// Per-link state: the seeded decision stream plus any held frames.
struct LinkState {
    rng: SmallRng,
    held: Vec<(Instant, Vec<u8>)>,
}

struct Inner {
    seed: u64,
    rules: Mutex<Rules>,
    links: Mutex<HashMap<(ServerId, ServerId), LinkState>>,
    /// The counters live in a `wren-obs` registry so a cluster can fold
    /// fault stats into its merged metrics snapshot; [`FaultPlan::stats`]
    /// stays as a thin shim over the same counters.
    registry: wren_obs::Registry,
    dropped: wren_obs::Counter,
    duplicated: wren_obs::Counter,
    delayed: wren_obs::Counter,
    severed: wren_obs::Counter,
    dials_refused: wren_obs::Counter,
}

/// A seeded, shared fault-injection plan (see the module docs).
///
/// Clones share state: the driving test keeps one handle to flip rules
/// mid-run while the fabrics consult another.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.inner.seed)
            .field("stats", &self.stats())
            .finish()
    }
}

fn mix(mut x: u64) -> u64 {
    // SplitMix64 finalizer: decorrelates link ids from the plan seed.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn endpoint_bits(s: ServerId) -> u64 {
    ((s.dc.0 as u64) << 16) | s.partition.0 as u64
}

impl FaultPlan {
    /// A plan with no active faults, replayable from `seed` once rules
    /// are enabled.
    pub fn seeded(seed: u64) -> FaultPlan {
        let registry = wren_obs::Registry::new();
        FaultPlan {
            inner: Arc::new(Inner {
                seed,
                rules: Mutex::new(Rules::default()),
                links: Mutex::new(HashMap::new()),
                dropped: registry.counter("fault_frames_dropped"),
                duplicated: registry.counter("fault_frames_duplicated"),
                delayed: registry.counter("fault_frames_delayed"),
                severed: registry.counter("fault_links_severed"),
                dials_refused: registry.counter("fault_dials_refused"),
                registry,
            }),
        }
    }

    /// The registry holding the injection counters, for folding into a
    /// cluster-wide metrics snapshot.
    pub fn registry(&self) -> wren_obs::Registry {
        self.inner.registry.clone()
    }

    /// The seed the plan was built from (printed by chaos drivers so a
    /// red run is replayable).
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Sets the per-frame fault probabilities (each in `[0, 1]`;
    /// evaluated in drop → duplicate → delay order from one roll).
    pub fn set_rates(&self, drop: f64, duplicate: f64, delay: f64) {
        let mut rules = self.inner.rules.lock().expect("fault rules poisoned");
        rules.drop = drop;
        rules.duplicate = duplicate;
        rules.delay = delay;
    }

    /// Refuse (or stop refusing) every dial.
    pub fn refuse_dials(&self, on: bool) {
        self.inner.rules.lock().expect("fault rules poisoned").refuse_dials = on;
    }

    /// Orders the next send on `a → b` and `b → a` to sever its link.
    pub fn sever_link(&self, a: ServerId, b: ServerId) {
        let mut rules = self.inner.rules.lock().expect("fault rules poisoned");
        rules.severed.insert((a, b));
        rules.severed.insert((b, a));
    }

    /// Partitions the network: servers inside `group` cannot exchange
    /// frames with, or dial, servers outside it (and vice versa) until
    /// [`heal`](FaultPlan::heal).
    pub fn partition(&self, group: &[ServerId]) {
        let mut rules = self.inner.rules.lock().expect("fault rules poisoned");
        rules.island = Some(group.iter().copied().collect());
    }

    /// Removes the partition rule.
    pub fn heal(&self) {
        self.inner.rules.lock().expect("fault rules poisoned").island = None;
    }

    /// Whether a dial `from → to` may proceed right now.
    pub fn allow_dial(&self, from: ServerId, to: ServerId) -> bool {
        let rules = self.inner.rules.lock().expect("fault rules poisoned");
        let refused = rules.refuse_dials || crosses(&rules.island, from, to);
        if refused {
            self.inner.dials_refused.inc();
        }
        !refused
    }

    /// Judges one outbound frame on the link `from → to`.
    ///
    /// The common healthy path returns [`SendVerdict::Pass`] without
    /// copying the frame; any fault (or a pending held frame) returns
    /// the exact replacement sequence.
    pub fn on_send(&self, from: ServerId, to: ServerId, frame: &[u8]) -> SendVerdict {
        let (roll, ordered_sever, blocked) = {
            let mut rules = self.inner.rules.lock().expect("fault rules poisoned");
            // One-shot sever orders are consumed here.
            let ordered = rules.severed.remove(&(from, to));
            (
                (rules.drop, rules.duplicate, rules.delay),
                ordered,
                crosses(&rules.island, from, to),
            )
        };

        let mut links = self.inner.links.lock().expect("fault links poisoned");
        let link = links.entry((from, to)).or_insert_with(|| LinkState {
            rng: SmallRng::seed_from_u64(mix(
                self.inner.seed ^ (endpoint_bits(from) << 20) ^ endpoint_bits(to),
            )),
            held: Vec::new(),
        });

        if ordered_sever || blocked {
            // The frame and anything held die with the connection.
            link.held.clear();
            self.inner.severed.inc();
            return SendVerdict::Mutate { frames: Vec::new(), sever: true };
        }

        let (p_drop, p_dup, p_delay) = roll;
        let r: f64 = link.rng.gen();
        if r < p_drop {
            link.held.clear();
            self.inner.dropped.inc();
            return SendVerdict::Mutate { frames: Vec::new(), sever: true };
        }

        let now = Instant::now();
        if r < p_drop + p_dup {
            self.inner.duplicated.inc();
            let mut frames = Vec::with_capacity(2 + link.held.len());
            frames.push(frame.to_vec());
            frames.push(frame.to_vec());
            frames.extend(link.held.drain(..).map(|(_, f)| f));
            return SendVerdict::Mutate { frames, sever: false };
        }
        if r < p_drop + p_dup + p_delay && link.held.len() < HOLD_CAP {
            self.inner.delayed.inc();
            link.held.push((now, frame.to_vec()));
            // Aged holds still flush so a quiet fault window cannot
            // park frames forever.
            let frames = drain_aged(&mut link.held, now);
            return SendVerdict::Mutate { frames, sever: false };
        }

        if link.held.is_empty() {
            return SendVerdict::Pass;
        }
        // Healthy roll with holds pending: the current frame overtakes
        // every held one — this is where the reordering lands.
        let mut frames = Vec::with_capacity(1 + link.held.len());
        frames.push(frame.to_vec());
        frames.extend(link.held.drain(..).map(|(_, f)| f));
        SendVerdict::Mutate { frames, sever: false }
    }

    /// Current injection counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            dropped: self.inner.dropped.get(),
            duplicated: self.inner.duplicated.get(),
            delayed: self.inner.delayed.get(),
            severed: self.inner.severed.get(),
            dials_refused: self.inner.dials_refused.get(),
        }
    }

}

/// True when `(from, to)` crosses the partition boundary.
fn crosses(island: &Option<HashSet<ServerId>>, from: ServerId, to: ServerId) -> bool {
    match island {
        Some(group) => group.contains(&from) != group.contains(&to),
        None => false,
    }
}

/// Removes and returns every held frame at or past the age flush.
fn drain_aged(held: &mut Vec<(Instant, Vec<u8>)>, now: Instant) -> Vec<Vec<u8>> {
    if held.first().is_none_or(|(t, _)| now.duration_since(*t) < HOLD_MAX_AGE) {
        return Vec::new();
    }
    // Holds are appended in time order, so aging splits at a prefix.
    let split = held
        .iter()
        .position(|(t, _)| now.duration_since(*t) < HOLD_MAX_AGE)
        .unwrap_or(held.len());
    held.drain(..split).map(|(_, f)| f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(dc: u8, p: u16) -> ServerId {
        ServerId::new(dc, p)
    }

    #[test]
    fn healthy_plan_passes_everything() {
        let plan = FaultPlan::seeded(7);
        for i in 0..100u8 {
            assert_eq!(plan.on_send(sid(0, 0), sid(1, 0), &[i]), SendVerdict::Pass);
        }
        assert!(plan.allow_dial(sid(0, 0), sid(1, 0)));
        assert_eq!(plan.stats().injected(), 0);
    }

    #[test]
    fn same_seed_replays_the_same_fault_sequence() {
        let mk = || {
            let plan = FaultPlan::seeded(42);
            plan.set_rates(0.2, 0.2, 0.2);
            let mut trace = Vec::new();
            for i in 0..200u8 {
                trace.push(plan.on_send(sid(0, 1), sid(1, 1), &[i]));
            }
            trace
        };
        assert_eq!(mk(), mk());
        // A different seed diverges (with overwhelming probability).
        let other = FaultPlan::seeded(43);
        other.set_rates(0.2, 0.2, 0.2);
        let diverged = (0..200u8)
            .map(|i| other.on_send(sid(0, 1), sid(1, 1), &[i]))
            .collect::<Vec<_>>();
        assert_ne!(mk(), diverged);
    }

    #[test]
    fn duplicate_and_reorder_mutations() {
        let plan = FaultPlan::seeded(3);
        // Force a hold, then a healthy frame: the healthy one must
        // overtake the held one.
        plan.set_rates(0.0, 0.0, 1.0);
        assert_eq!(
            plan.on_send(sid(0, 0), sid(1, 0), b"first"),
            SendVerdict::Mutate { frames: vec![], sever: false }
        );
        plan.set_rates(0.0, 0.0, 0.0);
        match plan.on_send(sid(0, 0), sid(1, 0), b"second") {
            SendVerdict::Mutate { frames, sever: false } => {
                assert_eq!(frames, vec![b"second".to_vec(), b"first".to_vec()]);
            }
            v => panic!("expected reorder release, got {v:?}"),
        }
        // Duplication emits the frame twice.
        plan.set_rates(0.0, 1.0, 0.0);
        match plan.on_send(sid(0, 0), sid(1, 0), b"twice") {
            SendVerdict::Mutate { frames, sever: false } => {
                assert_eq!(frames, vec![b"twice".to_vec(), b"twice".to_vec()]);
            }
            v => panic!("expected duplication, got {v:?}"),
        }
        let stats = plan.stats();
        assert_eq!((stats.delayed, stats.duplicated), (1, 1));
    }

    #[test]
    fn drop_severs_and_discards_holds() {
        let plan = FaultPlan::seeded(5);
        plan.set_rates(0.0, 0.0, 1.0);
        let _ = plan.on_send(sid(0, 0), sid(1, 0), b"held");
        plan.set_rates(1.0, 0.0, 0.0);
        assert_eq!(
            plan.on_send(sid(0, 0), sid(1, 0), b"doomed"),
            SendVerdict::Mutate { frames: vec![], sever: true }
        );
        // The held frame died with the link: a later healthy send
        // carries nothing extra.
        plan.set_rates(0.0, 0.0, 0.0);
        assert_eq!(plan.on_send(sid(0, 0), sid(1, 0), b"x"), SendVerdict::Pass);
        assert_eq!(plan.stats().dropped, 1);
    }

    #[test]
    fn partition_blocks_both_frames_and_dials() {
        let plan = FaultPlan::seeded(9);
        plan.partition(&[sid(0, 0), sid(0, 1)]);
        // Crossing the island boundary: severed and refused.
        assert_eq!(
            plan.on_send(sid(0, 0), sid(1, 0), b"x"),
            SendVerdict::Mutate { frames: vec![], sever: true }
        );
        assert!(!plan.allow_dial(sid(1, 0), sid(0, 0)));
        // Inside the island: untouched.
        assert_eq!(plan.on_send(sid(0, 0), sid(0, 1), b"x"), SendVerdict::Pass);
        assert!(plan.allow_dial(sid(0, 0), sid(0, 1)));
        plan.heal();
        assert_eq!(plan.on_send(sid(0, 0), sid(1, 0), b"x"), SendVerdict::Pass);
        assert!(plan.allow_dial(sid(1, 0), sid(0, 0)));
    }

    #[test]
    fn sever_link_is_one_shot_and_bidirectional() {
        let plan = FaultPlan::seeded(11);
        plan.sever_link(sid(0, 0), sid(1, 0));
        for (a, b) in [(sid(0, 0), sid(1, 0)), (sid(1, 0), sid(0, 0))] {
            assert_eq!(
                plan.on_send(a, b, b"x"),
                SendVerdict::Mutate { frames: vec![], sever: true }
            );
            // Consumed: the next send passes.
            assert_eq!(plan.on_send(a, b, b"x"), SendVerdict::Pass);
        }
        assert_eq!(plan.stats().severed, 2);
    }
}
