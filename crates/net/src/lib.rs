//! TCP transport primitives for the Wren reproduction.
//!
//! The protocol state machines are sans-io and the codec
//! (`wren-protocol`) defines exact message bytes; this crate supplies
//! the pieces that put those bytes on real sockets:
//!
//! * [`Hello`] — the one-frame connection handshake identifying the
//!   dialing peer (a client session or a partition server), so the
//!   accepting side can attribute every subsequent frame to a protocol
//!   source without per-message envelopes;
//! * [`Outbox`] — a bounded, **never-blocking** per-connection send
//!   queue drained by a dedicated writer thread. A partition's writer
//!   thread or read worker enqueues a framed response in O(1) and moves
//!   on; a client that stops reading fills its own outbox and gets
//!   disconnected — it can never stall the partition;
//! * [`FramedReader`] — blocking framed reads over a [`TcpStream`],
//!   reassembling length-prefixed frames from arbitrary chunk
//!   boundaries via [`wren_protocol::frame::FrameDecoder`].
//!
//! The crate is deliberately runtime-agnostic: it knows sockets and
//! frames, not engines or routers. `wren-rt` wires these pieces to its
//! partition engines; anything else (tools, tests, future processes)
//! can reuse them directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod hello;
mod outbox;
mod reader;

pub use error::NetError;
pub use hello::Hello;
pub use outbox::{Outbox, DEFAULT_OUTBOX_BYTES};
pub use reader::FramedReader;
