//! TCP transport primitives for the Wren reproduction.
//!
//! The protocol state machines are sans-io and the codec
//! (`wren-protocol`) defines exact message bytes; this crate supplies
//! the pieces that put those bytes on real sockets, layered so that
//! each level is testable without the one above:
//!
//! ```text
//! frame   (wren-protocol::frame)  bytes ⇄ message boundaries.
//!   FrameDecoder is push-based: feed it whatever chunks arrive,
//!   drain complete payloads. It never touches a socket.
//! outbox  (this crate)            who may write, and when.
//!   A bounded send queue per connection; protocol threads enqueue
//!   in O(1) and never call write(2). A peer that stops reading
//!   backs its queue past the cap and is severed.
//! writev  (this crate)            how many frames per syscall.
//!   Both drains batch queued frames into one writev(2) — the
//!   gather/settle arithmetic (partial writes resuming mid-frame)
//!   lives in its own socket-free module under property test.
//! reactor (this crate)            which thread does the I/O.
//!   Either one reader + one writer thread per connection
//!   (Outbox/FramedReader, the threaded fabric) or a fixed pool of
//!   event loops serving every fd (Reactor) — same frames,
//!   same outbox contract, different thread topology.
//! backend (this crate)            which syscalls move the bytes.
//!   The reactor's loop body is pluggable: readiness-driven epoll
//!   (poll.rs: epoll_wait, then read/writev per ready fd) or
//!   completion-driven io_uring (uring.rs: multishot accepts,
//!   provided-buffer recvs and linked send chains resident in the
//!   kernel, one io_uring_enter per batch). Selected per Reactor via
//!   [`ReactorOptions`]; [`uring::available`] probes the kernel at
//!   runtime and anything missing falls back to epoll silently.
//! ```
//!
//! **When epoll vs uring:** epoll is the default and runs everywhere;
//! its per-event syscall cost only matters once frame rates are high
//! enough that `epoll_wait`+`read`+`writev` dominate over protocol
//! work. Prefer `Backend::Uring` for high-throughput pipelined
//! workloads on kernels ≥ 5.19 (multishot accept); keep epoll for
//! portability, under seccomp policies that deny `io_uring_setup`
//! (common in container sandboxes), or when debugging with strace —
//! uring's one-visible-syscall profile hides the I/O from it.
//!
//! The pieces:
//!
//! * [`Hello`] — the one-frame connection handshake identifying the
//!   dialing peer (a client session or a partition server), so the
//!   accepting side can attribute every subsequent frame to a protocol
//!   source without per-message envelopes;
//! * [`Outbox`] — a bounded, **never-blocking** per-connection send
//!   queue drained by a dedicated writer thread. A partition's writer
//!   thread or read worker enqueues a framed response in O(1) and moves
//!   on; a client that stops reading fills its own outbox and gets
//!   disconnected — it can never stall the partition;
//! * [`FramedReader`] — blocking framed reads over a [`TcpStream`],
//!   reassembling length-prefixed frames from arbitrary chunk
//!   boundaries via [`wren_protocol::frame::FrameDecoder`];
//! * [`poll`] — a minimal safe wrapper over raw `epoll` + `eventfd`
//!   (direct FFI; the build has no registry access for `mio`),
//!   including the `SO_REUSEADDR` listener bind that lets a killed
//!   partition rebind its exact address immediately on restart;
//! * [`reactor`] — the fixed-thread-pool event loop: [`Reactor`] owns
//!   every connection fd, feeds readable bytes through per-connection
//!   `FrameDecoder`s into a [`ReactorHandler`], and drains each
//!   connection's queue on writable readiness with partial-write
//!   state, preserving the outbox's bounded-overflow semantics.
//!   Listeners registered with [`Reactor::add_listener`] return a
//!   [`ListenerHandle`] so a single partition's accept path can be
//!   torn down (fd reaped by the owning reactor thread) without
//!   stopping the pool;
//! * [`fault`] — a seeded, deterministic [`FaultPlan`] both fabrics
//!   consult at the frame boundary: drop-and-sever, duplicate,
//!   delay/reorder, refused dials, link severs and peer partitions,
//!   all replayable from one seed (see the module docs for why a
//!   dropped frame must sever its TCP link).
//!
//! The crate is deliberately runtime-agnostic: it knows sockets and
//! frames, not engines or routers. `wren-rt` wires these pieces to its
//! partition engines; anything else (tools, tests, future processes)
//! can reuse them directly.
//!
//! [`TcpStream`]: std::net::TcpStream

// unsafe is allowed only in poll::sys and uring::sys, the two FFI
// boundaries (epoll/eventfd and io_uring respectively).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fault;
mod hello;
mod outbox;
pub mod poll;
pub mod reactor;
mod reader;
pub mod uring;
mod writev;

pub use error::NetError;
pub use fault::{FaultPlan, FaultStats, SendVerdict};
pub use hello::Hello;
pub use outbox::{Outbox, DEFAULT_OUTBOX_BYTES};
pub use reactor::{
    Backend, ConnHandle, ListenerHandle, Reactor, ReactorHandler, ReactorMetrics, ReactorOptions,
};
pub use reader::FramedReader;
