//! The reactor: every connection of a process served by a fixed
//! thread pool, over a pluggable readiness [`Backend`].
//!
//! The threaded transport ([`Outbox`](crate::Outbox) +
//! [`FramedReader`](crate::FramedReader)) spends two OS threads per
//! connection; this module serves *all* connections — listeners,
//! accepted sessions, dialed peer links — from `reactor_threads` event
//! loops, so the fabric's thread count is a deployment constant instead
//! of a function of client count. The sans-io layering is unchanged:
//! frames are reassembled by the same
//! [`FrameDecoder`](wren_protocol::frame::FrameDecoder), and the send
//! side keeps the outbox contract exactly — bounded queue, enqueue
//! never blocks, a frame offered to an empty queue is always admitted,
//! and a peer whose queue backs past the cap is severed.
//!
//! Topology per reactor thread: one [`Poller`] (level-triggered), one
//! [`Waker`] (eventfd) for cross-thread nudges, and a private map of
//! the fds assigned to it. Listeners and connections are distributed
//! round-robin at registration; an fd never migrates, so all of its
//! socket I/O stays on one thread and per-connection state needs no
//! locks. Other threads interact only through two shared queues — new
//! registrations and tiny commands (flush X, sever Y) — plus the
//! connection's own send queue, all waker-protected.
//!
//! The send path is **vectored**: a flush snapshots a batch of queued
//! frames and drains them with one `writev(2)` per syscall (see
//! [`crate::writev`] for the batch/resume arithmetic), so a pipelined
//! peer pays the syscall once per burst instead of once per frame.
//! Partial writes resume mid-frame through a per-connection cursor;
//! the bytes on the wire are identical to a frame-at-a-time drain.
//!
//! Protocol logic stays out: a [`ReactorHandler`] is called with each
//! complete frame (and on accept/close), and writes happen through the
//! cloneable [`ConnHandle`] from any thread; the end of each readiness
//! event's decode burst is signalled through
//! [`ReactorHandler::on_burst_end`], so a handler can coalesce the
//! burst's frames into a single downstream delivery. `wren-rt`
//! implements the handler to route frames into its partition engines.
//!
//! **Backend dispatch.** Everything above this line — the handler
//! contract, the handles, the send-queue accounting, the registration
//! and command queues — is backend-neutral. What varies per
//! [`Backend`] is only the event-loop body each thread runs:
//! [`Backend::Epoll`] waits on a level-triggered [`Poller`] and pays
//! one syscall per readiness event per fd; [`Backend::Uring`]
//! ([`crate::uring`]) keeps multishot-accept, buffered-recv and
//! linked-send submissions resident in kernel rings and pays one
//! `io_uring_enter` per *batch* of completions. A request for
//! `Uring` on a kernel (or container seccomp policy) that cannot
//! serve it degrades to `Epoll` at [`Reactor::with_options`] time;
//! [`Reactor::backend`] reports what actually runs.

use crate::poll::{PollEvents, Poller, Waker};
use crate::writev::{plan_batch, settle};
use bytes::Bytes;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use wren_protocol::frame::FrameDecoder;

/// The poller token reserved for each thread's waker.
const WAKER_TOKEN: u64 = u64::MAX;

/// Read-side chunk size, matching [`crate::FramedReader`]'s.
pub(crate) const READ_CHUNK: usize = 16 * 1024;

/// Per-readiness-event read budget: after this many bytes the loop
/// yields to other connections; level-triggered readiness re-reports
/// the leftover immediately, so nothing is lost — one firehose peer
/// just cannot monopolize its reactor thread.
const READ_BUDGET: usize = 256 * 1024;

/// Per-flush write budget, the send-side mirror of [`READ_BUDGET`]:
/// a connection whose peer drains promptly (so `write(2)` never blocks)
/// while producers keep its queue non-empty would otherwise hold its
/// reactor thread forever. Past the budget the flush arms write
/// interest and yields; the still-writable socket re-reports on the
/// next wait, after every other fd got its turn.
pub(crate) const WRITE_BUDGET: usize = 256 * 1024;

/// How the reactor reacts to connection events. One handler instance
/// serves every connection; per-connection protocol state lives in
/// [`Self::Conn`], owned by the connection's reactor thread and handed
/// to each callback — no locking required to use it.
pub trait ReactorHandler: Send + Sync + 'static {
    /// Per-connection state (e.g. "awaiting handshake" → identity).
    type Conn: Send + 'static;

    /// A listener registered with `listener_ctx` accepted a connection.
    /// Return its initial state, or `None` to refuse (the socket is
    /// dropped). `handle` is the connection's send handle — cloning it
    /// here is how response paths later find the socket.
    fn on_accept(&self, listener_ctx: u64, handle: &ConnHandle) -> Option<Self::Conn>;

    /// A complete frame payload arrived. Return `false` to sever the
    /// connection (protocol violation, decode failure, …).
    fn on_frame(&self, conn: &mut Self::Conn, handle: &ConnHandle, payload: Bytes) -> bool;

    /// The readiness event that produced the preceding `on_frame` calls
    /// is over: the decode loop drained the socket (or spent its
    /// fairness budget) and the reactor is about to move to the next
    /// fd. A handler that buffered the burst's frames delivers them
    /// here as one batch — one downstream wakeup per readiness event
    /// instead of one per frame. Also called when the burst ends in a
    /// sever, *before* `on_close`, so buffered frames are never lost.
    /// Default: no-op (per-frame handlers need no burst boundary).
    fn on_burst_end(&self, _conn: &mut Self::Conn, _handle: &ConnHandle) {}

    /// The connection is gone — EOF, I/O error, overflow, an explicit
    /// [`ConnHandle::sever`], or reactor shutdown. Called exactly once
    /// per connection that had state, after which the fd is closed.
    fn on_close(&self, conn: &mut Self::Conn, handle: &ConnHandle);
}

/// The send-queue state behind one connection, shared between the
/// enqueueing threads and the connection's reactor thread.
pub(crate) struct SendState {
    pub(crate) frames: VecDeque<Bytes>,
    /// Unwritten bytes across all queued frames (the front frame's
    /// already-written prefix is excluded — the partial-write cursor
    /// itself lives in the connection, owned by its reactor thread).
    pub(crate) queued_bytes: usize,
    /// No further enqueues succeed; the connection is (being) severed.
    pub(crate) closed: bool,
    /// A flush command is already queued with the reactor thread, so
    /// further enqueues need not send another.
    pub(crate) kick_pending: bool,
}

impl SendState {
    pub(crate) fn kill(&mut self) {
        self.closed = true;
        self.frames.clear();
        self.queued_bytes = 0;
    }
}

pub(crate) struct SendQueue {
    s: Mutex<SendState>,
    max_bytes: usize,
}

impl SendQueue {
    pub(crate) fn new(max_bytes: usize) -> SendQueue {
        SendQueue {
            s: Mutex::new(SendState {
                frames: VecDeque::new(),
                queued_bytes: 0,
                closed: false,
                kick_pending: false,
            }),
            max_bytes,
        }
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, SendState> {
        self.s.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Cross-thread commands to a reactor thread. Registrations travel on a
/// separate (handler-generic) queue; these are the non-generic ones a
/// [`ConnHandle`] can issue.
pub(crate) enum Cmd {
    /// Try writing connection `token`'s queued frames now.
    Flush(u64),
    /// Close connection `token` (overflow or explicit sever).
    Sever(u64),
}

/// The non-generic, handle-reachable part of one reactor thread.
pub(crate) struct ThreadShared {
    pub(crate) cmds: Mutex<Vec<Cmd>>,
    pub(crate) waker: Waker,
}

impl ThreadShared {
    pub(crate) fn push(&self, cmd: Cmd) {
        self.cmds.lock().unwrap_or_else(|e| e.into_inner()).push(cmd);
        self.waker.wake();
    }
}

/// Handle to one reactor-served connection's send side. Cloneable and
/// sendable; all clones feed the same queue. The contract is the
/// [`Outbox`](crate::Outbox) contract: enqueues never block, a frame
/// offered to an empty queue is always admitted (the cap catches peers
/// that stop *reading*, it does not bound message size), and an enqueue
/// that would push a non-empty queue past the cap severs the
/// connection.
#[derive(Clone)]
pub struct ConnHandle {
    pub(crate) token: u64,
    pub(crate) out: Arc<SendQueue>,
    pub(crate) thread: Arc<ThreadShared>,
}

impl ConnHandle {
    /// Enqueues a framed message without ever blocking. Returns `false`
    /// if the connection is closed **or** this enqueue overflowed the
    /// cap (severing the connection); the caller treats `false` like a
    /// send to a disconnected channel.
    pub fn enqueue(&self, frame: Bytes) -> bool {
        let mut s = self.out.lock();
        if s.closed {
            return false;
        }
        if s.queued_bytes > 0 && s.queued_bytes + frame.len() > self.out.max_bytes {
            // Slow-peer overflow: sever, never block.
            s.kill();
            drop(s);
            self.thread.push(Cmd::Sever(self.token));
            return false;
        }
        s.queued_bytes += frame.len();
        s.frames.push_back(frame);
        let kick = !s.kick_pending;
        s.kick_pending = true;
        drop(s);
        if kick {
            self.thread.push(Cmd::Flush(self.token));
        }
        true
    }

    /// Severs the connection: queued frames are discarded, the fd is
    /// closed by its reactor thread, and the handler's `on_close` runs.
    /// Idempotent.
    pub fn sever(&self) {
        let mut s = self.out.lock();
        let was_closed = s.closed;
        s.kill();
        drop(s);
        if !was_closed {
            self.thread.push(Cmd::Sever(self.token));
        }
    }

    /// True once the connection is closed (EOF, error, overflow, sever
    /// or shutdown).
    pub fn is_closed(&self) -> bool {
        self.out.lock().closed
    }

    /// Bytes currently queued and unwritten.
    pub fn queued_bytes(&self) -> usize {
        self.out.lock().queued_bytes
    }

    /// The connection's reactor token (a process-unique id).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// True if `other` is a handle to the same connection.
    pub fn same_as(&self, other: &ConnHandle) -> bool {
        Arc::ptr_eq(&self.out, &other.out)
    }
}

/// Handle to one reactor-registered listener, so a single partition's
/// accept path can be torn down (fd closed and reaped by the owning
/// reactor thread) without stopping the pool — the failover primitive
/// `wren-rt` uses to kill a partition over the reactor fabric.
#[derive(Clone)]
pub struct ListenerHandle {
    token: u64,
    thread: Arc<ThreadShared>,
}

impl ListenerHandle {
    /// Closes the listener: the owning reactor thread drops the fd
    /// (removing it from the interest list) and stops accepting.
    /// Connections it already accepted are unaffected. Idempotent.
    pub fn close(&self) {
        self.thread.push(Cmd::Sever(self.token));
    }
}

/// A connection that exists but is not yet installed in its reactor
/// thread's entry map.
pub(crate) struct NewConn<C> {
    pub(crate) stream: TcpStream,
    pub(crate) state: C,
    pub(crate) out: Arc<SendQueue>,
    pub(crate) token: u64,
}

/// A pending cross-thread registration (generic in the handler's
/// per-connection state, so it travels on its own queue).
pub(crate) enum Pending<C> {
    Conn(NewConn<C>),
    Listener {
        listener: TcpListener,
        ctx: u64,
        conn_max_bytes: usize,
        token: u64,
    },
}

impl<C> Pending<C> {
    pub(crate) fn token(&self) -> u64 {
        match self {
            Pending::Conn(c) => c.token,
            Pending::Listener { token, .. } => *token,
        }
    }
}

/// One reactor thread's shared-side state.
pub(crate) struct ThreadState<C> {
    pub(crate) shared: Arc<ThreadShared>,
    pub(crate) pending: Mutex<Vec<Pending<C>>>,
}

pub(crate) struct Shared<H: ReactorHandler> {
    pub(crate) threads: Vec<ThreadState<H::Conn>>,
    pub(crate) handler: H,
    pub(crate) closing: AtomicBool,
    next_token: AtomicU64,
    next_thread: AtomicUsize,
    /// Optional instrumentation (see [`ReactorOptions::metrics`]);
    /// unset histograms skip recording.
    pub(crate) metrics: ReactorMetrics,
}

impl<H: ReactorHandler> Shared<H> {
    pub(crate) fn token(&self) -> u64 {
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn pick_thread(&self) -> usize {
        self.next_thread.fetch_add(1, Ordering::Relaxed) % self.threads.len()
    }

    /// Queues a registration with thread `ti`, closing the
    /// register-vs-shutdown race: if the reactor began closing, the
    /// entry is pulled back out (the thread may already have swept its
    /// queues) and returned for the caller to
    /// [`discard_pending`](Self::discard_pending). Exactly one side
    /// ends up holding the entry — this retraction or the thread's
    /// closing sweep — so the cleanup (and `on_close`) runs once.
    pub(crate) fn submit(&self, ti: usize, pending: Pending<H::Conn>) -> Option<Pending<H::Conn>> {
        let t = &self.threads[ti];
        let token = pending.token();
        t.pending.lock().unwrap_or_else(|e| e.into_inner()).push(pending);
        t.shared.waker.wake();
        if self.closing.load(Ordering::SeqCst) {
            let mut q = t.pending.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(pos) = q.iter().position(|p| p.token() == token) {
                return Some(q.remove(pos));
            }
        }
        None
    }

    /// Disposes of a registration that will never reach thread `ti`'s
    /// event loop (shutdown won the race): the send queue dies so every
    /// outstanding handle reports closed, and a connection's state gets
    /// its `on_close` — the handler may have registered the handle at
    /// accept time and must hear it is gone. Dropping the socket closes
    /// the fd.
    pub(crate) fn discard_pending(&self, ti: usize, pending: Pending<H::Conn>) {
        if let Pending::Conn(mut c) = pending {
            c.out.lock().kill();
            let handle = ConnHandle {
                token: c.token,
                out: c.out,
                thread: Arc::clone(&self.threads[ti].shared),
            };
            self.handler.on_close(&mut c.state, &handle);
        }
    }
}

/// Which readiness mechanism a reactor pool's event loops run on.
/// See the [module docs](self) for what varies (the loop body) and
/// what does not (everything a handler or handle can observe).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Level-triggered `epoll_wait` + `readv`/`writev` per readiness
    /// event. Works on every Linux the repo targets.
    #[default]
    Epoll,
    /// `io_uring` submission/completion rings: multishot accept,
    /// provided-buffer recv and linked sends stay resident in the
    /// kernel, one `io_uring_enter` per completion batch. Requested
    /// but unavailable (old kernel, seccomp-denied syscall, missing
    /// opcodes) degrades to [`Backend::Epoll`] silently — check
    /// [`Reactor::backend`] for what actually runs.
    Uring,
}

/// Optional per-pool instrumentation, recorded by whichever backend
/// owns the measured path. Histograms come from the caller's registry
/// so the fabric's snapshot merge sees them; unset ones cost nothing.
#[derive(Clone, Default)]
pub struct ReactorMetrics {
    /// Frames fully drained per `writev(2)` (epoll send path) — the
    /// live measure of vectored-send amortization (mean 1 means every
    /// frame still pays its own syscall).
    pub writev_frames: Option<wren_obs::Histogram>,
    /// SQEs submitted per `io_uring_enter(2)` (uring backend) — the
    /// same amortization measure one layer down: mean 1 means every
    /// submission still pays its own kernel crossing.
    pub sqe_per_enter: Option<wren_obs::Histogram>,
}

/// Construction options for [`Reactor::with_options`]: the one
/// constructor behind every pool, so backends cannot fork setup paths.
#[derive(Clone, Default)]
pub struct ReactorOptions {
    /// Requested backend; resolved against runtime support at start.
    pub backend: Backend,
    /// Instrumentation sinks (optional registry hookup).
    pub metrics: ReactorMetrics,
}

/// A fixed pool of event-loop threads serving listeners and framed
/// connections over a [`Backend`]. See the [module docs](self) for the
/// topology.
pub struct Reactor<H: ReactorHandler> {
    shared: Arc<Shared<H>>,
    backend: Backend,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<H: ReactorHandler> Reactor<H> {
    /// Starts `threads` reactor threads (at least one) over `handler`
    /// with default options (epoll, no instrumentation).
    ///
    /// # Errors
    ///
    /// Poller/eventfd creation errors (fd exhaustion).
    pub fn start(threads: usize, handler: H) -> io::Result<Reactor<H>> {
        Self::with_options(threads, handler, ReactorOptions::default())
    }

    /// Starts `threads` reactor threads (at least one) over `handler`.
    ///
    /// The requested [`Backend`] is resolved here: `Uring` on a host
    /// that cannot serve it (detection probe fails, or ring setup
    /// fails at runtime — memlock limits, fd exhaustion) falls back to
    /// `Epoll` rather than erroring, so a deployment knob can ask for
    /// io_uring unconditionally. [`backend`](Self::backend) reports
    /// the resolution.
    ///
    /// # Errors
    ///
    /// Poller/eventfd creation errors (fd exhaustion).
    pub fn with_options(
        threads: usize,
        handler: H,
        opts: ReactorOptions,
    ) -> io::Result<Reactor<H>> {
        let n = threads.max(1);
        // Resolve the backend before any thread state exists: all rings
        // are created up front so a mid-pool setup failure can still
        // fall back to epoll cleanly (mixed-backend pools would be a
        // debugging trap for zero benefit).
        let mut rings = Vec::new();
        let backend = if opts.backend == Backend::Uring && crate::uring::available() {
            let mut ok = true;
            for _ in 0..n {
                match crate::uring::Ring::new() {
                    Ok(r) => rings.push(r),
                    Err(_) => {
                        rings.clear();
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                Backend::Uring
            } else {
                Backend::Epoll
            }
        } else {
            Backend::Epoll
        };
        let mut thread_states = Vec::with_capacity(n);
        let mut pollers = Vec::with_capacity(n);
        for _ in 0..n {
            let waker = Waker::new()?;
            if backend == Backend::Epoll {
                let poller = Poller::new()?;
                waker.register(&poller, WAKER_TOKEN)?;
                pollers.push(poller);
            }
            thread_states.push(ThreadState {
                shared: Arc::new(ThreadShared {
                    cmds: Mutex::new(Vec::new()),
                    waker,
                }),
                pending: Mutex::new(Vec::new()),
            });
        }
        let shared = Arc::new(Shared {
            threads: thread_states,
            handler,
            closing: AtomicBool::new(false),
            next_token: AtomicU64::new(0),
            next_thread: AtomicUsize::new(0),
            metrics: opts.metrics,
        });
        let mut handles = Vec::with_capacity(n);
        match backend {
            Backend::Epoll => {
                for (i, poller) in pollers.into_iter().enumerate() {
                    let shared = Arc::clone(&shared);
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("wren-reactor-{i}"))
                            .spawn(move || reactor_loop(shared, i, poller))
                            .expect("spawn reactor thread"),
                    );
                }
            }
            Backend::Uring => {
                for (i, ring) in rings.into_iter().enumerate() {
                    let shared = Arc::clone(&shared);
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("wren-uring-{i}"))
                            .spawn(move || crate::uring::uring_loop(shared, i, ring))
                            .expect("spawn reactor thread"),
                    );
                }
            }
        }
        Ok(Reactor {
            shared,
            backend,
            handles: Mutex::new(handles),
        })
    }

    /// The backend this pool actually runs on — [`Backend::Epoll`] when
    /// a requested [`Backend::Uring`] was unavailable and fell back.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The handler driving this pool (counters, recorded state — the
    /// pool owns the handler, so observing it goes through here).
    pub fn handler(&self) -> &H {
        &self.shared.handler
    }

    /// Registers a listening socket. Accepted connections get a send
    /// queue capped at `conn_max_bytes` and are distributed round-robin
    /// across the pool; `ctx` is echoed to
    /// [`ReactorHandler::on_accept`]. The returned [`ListenerHandle`]
    /// closes just this listener, leaving the pool (and its accepted
    /// connections) running.
    ///
    /// # Errors
    ///
    /// Socket configuration errors; a listener registered during
    /// shutdown is silently dropped (its handle is inert).
    pub fn add_listener(
        &self,
        listener: TcpListener,
        ctx: u64,
        conn_max_bytes: usize,
    ) -> io::Result<ListenerHandle> {
        listener.set_nonblocking(true)?;
        let token = self.shared.token();
        let ti = self.shared.pick_thread();
        if let Some(retracted) = self.shared.submit(
            ti,
            Pending::Listener {
                listener,
                ctx,
                conn_max_bytes,
                token,
            },
        ) {
            self.shared.discard_pending(ti, retracted);
        }
        Ok(ListenerHandle {
            token,
            thread: Arc::clone(&self.shared.threads[ti].shared),
        })
    }

    /// Registers an already-connected (e.g. freshly dialed) socket with
    /// initial handler state `state` and send cap `max_bytes`. The
    /// returned handle is immediately enqueueable — frames queued
    /// before the reactor thread picks the connection up are kept in
    /// order. During shutdown the handle comes back dead (enqueues
    /// return `false`), mirroring a channel send to a stopped cluster.
    ///
    /// # Errors
    ///
    /// Socket configuration errors.
    pub fn add_conn(
        &self,
        stream: TcpStream,
        state: H::Conn,
        max_bytes: usize,
    ) -> io::Result<ConnHandle> {
        stream.set_nonblocking(true)?;
        let token = self.shared.token();
        let ti = self.shared.pick_thread();
        let out = Arc::new(SendQueue::new(max_bytes));
        let handle = ConnHandle {
            token,
            out: Arc::clone(&out),
            thread: Arc::clone(&self.shared.threads[ti].shared),
        };
        if let Some(retracted) = self.shared.submit(
            ti,
            Pending::Conn(NewConn {
                stream,
                state,
                out,
                token,
            }),
        ) {
            // Shutdown won the race: the queue dies (so this handle —
            // and any clone the handler took — reports closed) and
            // on_close runs, before the handle is even returned.
            self.shared.discard_pending(ti, retracted);
        }
        Ok(handle)
    }

    /// Flags the reactor closed and wakes every thread; each severs all
    /// of its connections (running `on_close` for each), drops its
    /// listeners and exits. Idempotent. [`join`](Self::join) afterwards
    /// for deterministic teardown.
    pub fn shutdown(&self) {
        self.shared.closing.store(true, Ordering::SeqCst);
        for t in &self.shared.threads {
            t.shared.waker.wake();
        }
    }

    /// Joins every reactor thread. Call after [`shutdown`](Self::shutdown)
    /// (joining a running reactor would block forever). Idempotent.
    pub fn join(&self) {
        let handles: Vec<_> = std::mem::take(
            &mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

/// One registered fd on a reactor thread.
enum Entry<C> {
    Listener {
        listener: TcpListener,
        ctx: u64,
        conn_max_bytes: usize,
    },
    Conn(Conn<C>),
}

struct Conn<C> {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Arc<SendQueue>,
    state: C,
    token: u64,
    /// Bytes of the queue's front frame already written to the socket.
    /// Lives here, not in `SendState`: only this connection's reactor
    /// thread writes, so the cursor needs no lock — which is what lets
    /// `write_ready` run `write(2)` outside the queue mutex.
    front_written: usize,
    /// Whether EPOLLOUT is currently part of the fd's interest set.
    write_armed: bool,
}

impl<C> Conn<C> {
    fn handle(&self, thread: &Arc<ThreadShared>) -> ConnHandle {
        ConnHandle {
            token: self.token,
            out: Arc::clone(&self.out),
            thread: Arc::clone(thread),
        }
    }
}

/// What to do with a connection after a read/write pass.
#[derive(PartialEq)]
enum After {
    KeepOpen,
    Close,
}

fn reactor_loop<H: ReactorHandler>(shared: Arc<Shared<H>>, idx: usize, poller: Poller) {
    let me = &shared.threads[idx];
    let mut entries: HashMap<u64, Entry<H::Conn>> = HashMap::new();
    let mut events = PollEvents::with_capacity(256);
    let mut buf = vec![0u8; READ_CHUNK];

    loop {
        if shared.closing.load(Ordering::SeqCst) {
            // Sever everything: queued sends are discarded, every fd is
            // closed (dropping it), every live connection's state gets
            // its on_close. Pending registrations and commands are
            // swept too — their sockets close on drop.
            for (_, entry) in entries.drain() {
                if let Entry::Conn(mut c) = entry {
                    c.out.lock().kill();
                    let handle = c.handle(&me.shared);
                    shared.handler.on_close(&mut c.state, &handle);
                }
            }
            let swept: Vec<Pending<H::Conn>> = std::mem::take(
                &mut *me.pending.lock().unwrap_or_else(|e| e.into_inner()),
            );
            for pending in swept {
                // Same cleanup as a submitter-side retraction: queue
                // dead, on_close delivered, fd closed on drop.
                shared.discard_pending(idx, pending);
            }
            me.shared.cmds.lock().unwrap_or_else(|e| e.into_inner()).clear();
            return;
        }

        // New fds assigned to this thread.
        let pending: Vec<Pending<H::Conn>> = std::mem::take(
            &mut *me.pending.lock().unwrap_or_else(|e| e.into_inner()),
        );
        for p in pending {
            match p {
                Pending::Conn(nc) => install_conn(&shared, me, &poller, &mut entries, nc),
                Pending::Listener {
                    listener,
                    ctx,
                    conn_max_bytes,
                    token,
                } => {
                    if poller.add(&listener, token, false).is_ok() {
                        entries.insert(
                            token,
                            Entry::Listener {
                                listener,
                                ctx,
                                conn_max_bytes,
                            },
                        );
                    }
                }
            }
        }

        // Cross-thread commands (flush/sever kicks from enqueuers).
        let cmds: Vec<Cmd> =
            std::mem::take(&mut *me.shared.cmds.lock().unwrap_or_else(|e| e.into_inner()));
        for cmd in cmds {
            match cmd {
                Cmd::Flush(token) => flush_conn(&shared, me, &poller, &mut entries, token),
                Cmd::Sever(token) => {
                    close_conn(&shared, me, &mut entries, token);
                    // The target may still sit in the pending queue (a
                    // listener closed right after registration): retract
                    // it so it cannot install after its own sever.
                    let retracted = {
                        let mut q = me.pending.lock().unwrap_or_else(|e| e.into_inner());
                        q.iter()
                            .position(|p| p.token() == token)
                            .map(|pos| q.remove(pos))
                    };
                    if let Some(p) = retracted {
                        shared.discard_pending(idx, p);
                    }
                }
            }
        }

        if poller.wait(&mut events, None).is_err() {
            // Only pathological states (EBADF after poller corruption)
            // land here; back off instead of spinning.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        for ev in events.iter() {
            if ev.token == WAKER_TOKEN {
                me.shared.waker.drain();
                continue;
            }
            // The entry may have been severed by an earlier event or
            // command in this same batch.
            match entries.get_mut(&ev.token) {
                Some(Entry::Listener { .. }) => {
                    accept_ready(&shared, me, &poller, &mut entries, ev.token)
                }
                Some(Entry::Conn(conn)) => {
                    let mut after = After::KeepOpen;
                    if ev.readable {
                        after = read_ready(&shared, me, conn, &mut buf);
                    }
                    if after == After::KeepOpen && ev.writable {
                        after = write_ready(&poller, conn, shared.metrics.writev_frames.as_ref());
                    }
                    if after == After::Close {
                        close_conn(&shared, me, &mut entries, ev.token);
                    }
                }
                None => {}
            }
        }
    }
}

/// Installs a connection into this thread's entry map — the single
/// path shared by cross-thread registrations and a listener's
/// same-thread accepts, so the failure cleanup (queue kill + `on_close`)
/// and the eager first flush cannot drift apart.
fn install_conn<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    me: &ThreadState<H::Conn>,
    poller: &Poller,
    entries: &mut HashMap<u64, Entry<H::Conn>>,
    nc: NewConn<H::Conn>,
) {
    let mut conn = Conn {
        stream: nc.stream,
        decoder: FrameDecoder::new(),
        out: nc.out,
        state: nc.state,
        token: nc.token,
        front_written: 0,
        write_armed: false,
    };
    if poller.add(&conn.stream, conn.token, false).is_ok() {
        let token = conn.token;
        entries.insert(token, Entry::Conn(conn));
        // Frames may already be queued (a dialer's hello, a greeting
        // enqueued from on_accept); flush eagerly rather than waiting
        // for a kick that may have arrived before the insert.
        flush_conn(shared, me, poller, entries, token);
    } else {
        conn.out.lock().kill();
        let handle = conn.handle(&me.shared);
        shared.handler.on_close(&mut conn.state, &handle);
    }
}

/// Accepts a listener's pending connections, capped per readiness
/// event: like [`READ_BUDGET`] for reads, the cap keeps a connect storm
/// against one listener from monopolizing its reactor thread —
/// level-triggered readiness re-reports the remaining backlog on the
/// next wait.
const ACCEPT_BUDGET: usize = 64;

/// Drains (up to [`ACCEPT_BUDGET`] of) the accept backlog of the
/// listener registered under `token`.
fn accept_ready<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    me: &ThreadState<H::Conn>,
    poller: &Poller,
    entries: &mut HashMap<u64, Entry<H::Conn>>,
    token: u64,
) {
    for _ in 0..ACCEPT_BUDGET {
        let (ctx, conn_max_bytes, accepted) = match entries.get(&token) {
            Some(Entry::Listener {
                listener,
                ctx,
                conn_max_bytes,
            }) => match listener.accept() {
                Ok((stream, _)) => (*ctx, *conn_max_bytes, stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionAborted
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    // Routine under session churn (the peer reset before
                    // we accepted): just move to the next pending conn —
                    // sleeping here would stall every fd on this thread.
                    continue;
                }
                Err(_) => {
                    // Hard accept failure (EMFILE/ENFILE fd exhaustion):
                    // level-triggered readiness would re-report the
                    // backlog immediately and spin the loop; a brief
                    // pause is the lesser evil, and only this path —
                    // an already-sick process — pays it.
                    std::thread::sleep(Duration::from_millis(10));
                    return;
                }
            },
            _ => return,
        };
        if shared.closing.load(Ordering::SeqCst) {
            // Dropped unserved; the top of the loop sweeps everything.
            return;
        }
        let _ = accepted.set_nodelay(true);
        if accepted.set_nonblocking(true).is_err() {
            continue;
        }
        let conn_token = shared.token();
        let ti = shared.pick_thread();
        let out = Arc::new(SendQueue::new(conn_max_bytes));
        let handle = ConnHandle {
            token: conn_token,
            out: Arc::clone(&out),
            thread: Arc::clone(&shared.threads[ti].shared),
        };
        let Some(state) = shared.handler.on_accept(ctx, &handle) else {
            continue; // refused: socket drops, fd closes
        };
        let nc = NewConn {
            stream: accepted,
            state,
            out,
            token: conn_token,
        };
        if std::ptr::eq(me, &shared.threads[ti]) {
            // Assigned to this thread: install directly.
            install_conn(shared, me, poller, entries, nc);
        } else {
            // Assigned elsewhere: hand it over like a dialed conn. If
            // shutdown retracts it, the cleanup (queue kill + on_close,
            // matching `add_conn`'s) runs here — the handler saw
            // on_accept, so it must hear on_close.
            if let Some(retracted) = shared.submit(ti, Pending::Conn(nc)) {
                shared.discard_pending(ti, retracted);
            }
        }
    }
}

/// Reads until drained (or the fairness budget is spent), feeding the
/// decoder and the handler, then fires the end-of-burst hook so a
/// batching handler can flush whatever the decode loop buffered as one
/// delivery — including on the paths that close the connection, so a
/// sever never swallows frames that already passed `on_frame`.
fn read_ready<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    me: &ThreadState<H::Conn>,
    conn: &mut Conn<H::Conn>,
    buf: &mut [u8],
) -> After {
    let after = read_burst(shared, me, conn, buf);
    let handle = conn.handle(&me.shared);
    shared.handler.on_burst_end(&mut conn.state, &handle);
    after
}

/// The decode loop behind [`read_ready`].
fn read_burst<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    me: &ThreadState<H::Conn>,
    conn: &mut Conn<H::Conn>,
    buf: &mut [u8],
) -> After {
    let mut read_bytes = 0usize;
    loop {
        match conn.stream.read(buf) {
            Ok(0) => return After::Close, // EOF
            Ok(n) => {
                conn.decoder.extend(&buf[..n]);
                loop {
                    match conn.decoder.next_frame() {
                        Ok(Some(payload)) => {
                            let handle = conn.handle(&me.shared);
                            if !shared.handler.on_frame(&mut conn.state, &handle, payload) {
                                return After::Close;
                            }
                        }
                        Ok(None) => break,
                        // Oversized frame: the guard fires before any
                        // buffering; sever like the threaded reader.
                        Err(_) => return After::Close,
                    }
                }
                read_bytes += n;
                if read_bytes >= READ_BUDGET || n < buf.len() {
                    // Budget spent or likely drained; LT re-reports any
                    // leftover on the next wait.
                    return After::KeepOpen;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return After::KeepOpen,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return After::Close,
        }
    }
}

/// Writes queued frames until the socket would block or the queue is
/// empty, then arms/disarms write interest to match what is left.
///
/// The drain is **vectored**: each pass snapshots a batch of front
/// frames (see [`plan_batch`]) and hands them to one
/// `writev(2)` — many small responses leave in one syscall instead of
/// paying one `write(2)` each. A partial write at any byte is resumed
/// via the `front_written` cursor ([`settle`] computes both it and the
/// completed-frame count), so frame boundaries on the wire are exactly
/// what a frame-at-a-time drain would have produced.
///
/// The queue mutex is only ever held for O(1) bookkeeping — never
/// across `writev(2)` — so a protocol thread's `enqueue` stays O(1)
/// even while a multi-megabyte backlog is being flushed here. The
/// batch is grabbed under the lock (refcount bumps), written outside
/// it, and the accounting settled under a fresh lock; a concurrent
/// sever (overflow, explicit) is detected at each re-lock.
fn write_ready<C>(
    poller: &Poller,
    conn: &mut Conn<C>,
    writev_frames: Option<&wren_obs::Histogram>,
) -> After {
    let mut written = 0usize;
    let mut batch: Vec<Bytes> = Vec::new();
    loop {
        batch.clear();
        {
            let mut s = conn.out.lock();
            s.kick_pending = false;
            if s.closed {
                return After::Close;
            }
            let take = plan_batch(&s.frames, conn.front_written, WRITE_BUDGET.saturating_sub(written));
            if take == 0 {
                break;
            }
            batch.extend(s.frames.iter().take(take).cloned());
        }
        if written >= WRITE_BUDGET {
            // Fairness: yield the thread with write interest armed; the
            // still-writable socket re-reports next wait.
            if !conn.write_armed && poller.modify(&conn.stream, conn.token, true).is_ok() {
                conn.write_armed = true;
            }
            return After::KeepOpen;
        }
        let offered: usize =
            batch.iter().map(Bytes::len).sum::<usize>() - conn.front_written;
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(batch.len());
        slices.push(IoSlice::new(&batch[0][conn.front_written..]));
        for f in &batch[1..] {
            slices.push(IoSlice::new(f));
        }
        match conn.stream.write_vectored(&slices) {
            Ok(n) if n > 0 || offered == 0 => {
                let lens: Vec<usize> = batch.iter().map(Bytes::len).collect();
                let (completed, new_front) = settle(&lens, conn.front_written, n);
                conn.front_written = new_front;
                written += n;
                if let Some(h) = writev_frames {
                    h.record(completed as u64);
                }
                let mut s = conn.out.lock();
                if s.closed {
                    // Severed while we were writing; the queue (and its
                    // accounting) is already dead.
                    return After::Close;
                }
                s.queued_bytes -= n;
                for _ in 0..completed {
                    s.frames.pop_front();
                }
            }
            // A zero-byte write of a nonempty remainder: the socket is
            // not making progress; treat it like a write error.
            Ok(_) => {
                conn.out.lock().kill();
                return After::Close;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Unflushed bytes remain: arm write interest and wait
                // for writable readiness.
                if !conn.write_armed
                    && poller.modify(&conn.stream, conn.token, true).is_ok()
                {
                    conn.write_armed = true;
                }
                return After::KeepOpen;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.out.lock().kill();
                return After::Close;
            }
        }
    }
    // Queue fully drained: stop watching for writable readiness.
    if conn.write_armed && poller.modify(&conn.stream, conn.token, false).is_ok() {
        conn.write_armed = false;
    }
    After::KeepOpen
}

/// A flush kick for `token` (fresh enqueue or writable readiness).
fn flush_conn<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    me: &ThreadState<H::Conn>,
    poller: &Poller,
    entries: &mut HashMap<u64, Entry<H::Conn>>,
    token: u64,
) {
    if let Some(Entry::Conn(conn)) = entries.get_mut(&token) {
        if write_ready(poller, conn, shared.metrics.writev_frames.as_ref()) == After::Close {
            close_conn(shared, me, entries, token);
        }
    }
}

/// Removes and closes the entry under `token` — a connection (running
/// the handler's `on_close`) or a listener (no callback; it has no
/// protocol state). Dropping the socket closes the fd, which also
/// removes it from the epoll interest list.
fn close_conn<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    me: &ThreadState<H::Conn>,
    entries: &mut HashMap<u64, Entry<H::Conn>>,
    token: u64,
) {
    if let Some(Entry::Conn(mut c)) = entries.remove(&token) {
        c.out.lock().kill();
        let handle = c.handle(&me.shared);
        shared.handler.on_close(&mut c.state, &handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FramedReader;
    use std::sync::Mutex as StdMutex;
    use std::time::Instant;
    use wren_clock::Timestamp;
    use wren_protocol::frame::frame_wren;
    use wren_protocol::WrenMsg;

    /// Echoes every frame back and records accepted handles.
    struct Echo {
        handles: StdMutex<Vec<ConnHandle>>,
    }

    impl Echo {
        fn new() -> Echo {
            Echo {
                handles: StdMutex::new(Vec::new()),
            }
        }
    }

    fn reframe(payload: &[u8]) -> Bytes {
        let mut out = Vec::with_capacity(4 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        Bytes::from(out)
    }

    impl ReactorHandler for Echo {
        type Conn = ();
        fn on_accept(&self, _ctx: u64, handle: &ConnHandle) -> Option<()> {
            self.handles.lock().unwrap().push(handle.clone());
            Some(())
        }
        fn on_frame(&self, _c: &mut (), handle: &ConnHandle, payload: Bytes) -> bool {
            handle.enqueue(reframe(&payload))
        }
        fn on_close(&self, _c: &mut (), _handle: &ConnHandle) {}
    }

    fn start_echo(threads: usize, conn_cap: usize) -> (Reactor<Echo>, std::net::SocketAddr) {
        let reactor = Reactor::start(threads, Echo::new()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        reactor.add_listener(listener, 0, conn_cap).unwrap();
        (reactor, addr)
    }

    fn connect(addr: std::net::SocketAddr) -> TcpStream {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match TcpStream::connect(addr) {
                Ok(s) => return s,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2))
                }
                Err(e) => panic!("connect: {e}"),
            }
        }
    }

    #[test]
    fn echo_round_trip_over_many_connections() {
        let (reactor, addr) = start_echo(2, 1024 * 1024);
        let mut clients: Vec<(TcpStream, FramedReader)> = (0..8)
            .map(|_| {
                let s = connect(addr);
                let r = FramedReader::new(s.try_clone().unwrap());
                (s, r)
            })
            .collect();
        for round in 0..3u64 {
            for (i, (w, _)) in clients.iter_mut().enumerate() {
                let msg = WrenMsg::Heartbeat {
                    t: Timestamp::from_micros(round * 100 + i as u64),
                };
                w.write_all(&frame_wren(&msg)).unwrap();
            }
            for (i, (_, r)) in clients.iter_mut().enumerate() {
                let payload = r.next_frame().unwrap().expect("echoed frame");
                assert_eq!(
                    WrenMsg::decode(&payload).unwrap(),
                    WrenMsg::Heartbeat {
                        t: Timestamp::from_micros(round * 100 + i as u64)
                    }
                );
            }
        }
        reactor.shutdown();
        reactor.join();
    }

    #[test]
    fn dribbled_bytes_reassemble_exactly() {
        let (reactor, addr) = start_echo(1, 1024 * 1024);
        let mut stream = connect(addr);
        let msg = WrenMsg::Heartbeat {
            t: Timestamp::from_micros(99),
        };
        for b in frame_wren(&msg).iter() {
            stream.write_all(&[*b]).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut reader = FramedReader::new(stream);
        let payload = reader.next_frame().unwrap().expect("frame");
        assert_eq!(WrenMsg::decode(&payload).unwrap(), msg);
        reactor.shutdown();
        reactor.join();
    }

    #[test]
    fn overflow_severs_a_non_reading_peer() {
        let (reactor, addr) = start_echo(1, 64 * 1024);
        let stream = connect(addr); // never reads
        // Nudge the server so on_accept definitely ran and we can grab
        // the server-side handle.
        {
            let mut w = stream.try_clone().unwrap();
            w.write_all(&frame_wren(&WrenMsg::Heartbeat {
                t: Timestamp::ZERO,
            }))
            .unwrap();
        }
        let handle = {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                if let Some(h) = reactor.shared.handler.handles.lock().unwrap().first() {
                    break h.clone();
                }
                assert!(Instant::now() < deadline, "on_accept never ran");
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        // 4 MiB frames back up far beyond kernel buffering + the 64 KiB
        // cap: the enqueue must eventually report the sever, without
        // ever blocking.
        let chunk = Bytes::from(vec![7u8; 4 * 1024 * 1024]);
        let mut accepted = 0;
        for _ in 0..100 {
            if handle.enqueue(chunk.clone()) {
                accepted += 1;
            } else {
                break;
            }
        }
        assert!(accepted < 100, "a non-reading peer must overflow the cap");
        assert!(handle.is_closed());
        assert!(!handle.enqueue(chunk), "enqueue after sever must fail");
        reactor.shutdown();
        reactor.join();
    }

    #[test]
    fn vectored_drain_batches_frames_per_syscall() {
        // A frame far beyond the kernel's socket buffering saturates the
        // non-reading peer's connection, so the small frames enqueued
        // behind it are all queued by the time the peer starts reading —
        // the drain's final writev must then complete several frames in
        // one syscall, which the instrumentation histogram records.
        let hist = wren_obs::Histogram::new();
        let reactor = Reactor::with_options(
            1,
            Echo::new(),
            ReactorOptions {
                metrics: ReactorMetrics {
                    writev_frames: Some(hist.clone()),
                    sqe_per_enter: None,
                },
                ..ReactorOptions::default()
            },
        )
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        reactor.add_listener(listener, 0, 256 * 1024 * 1024).unwrap();
        let mut stream = connect(addr); // not reading yet
        let handle = {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                if let Some(h) = reactor.shared.handler.handles.lock().unwrap().first() {
                    break h.clone();
                }
                assert!(Instant::now() < deadline, "on_accept never ran");
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        let big = Bytes::from(vec![0xEEu8; 32 * 1024 * 1024]);
        let small = Bytes::from(vec![0x11u8; 32]);
        assert!(handle.enqueue(big.clone()));
        for _ in 0..16 {
            assert!(handle.enqueue(small.clone()));
        }
        let expected = big.len() + 16 * small.len();
        let mut got = 0usize;
        let mut buf = vec![0u8; 1 << 20];
        while got < expected {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "peer closed before the backlog drained");
            got += n;
        }
        assert_eq!(got, expected, "every queued byte arrives exactly once");
        // The peer sees the last bytes as soon as the kernel has them —
        // possibly before the reactor thread records the batch that
        // wrote them — so the histogram assertion polls briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        while hist.snapshot().max < 2 {
            assert!(
                Instant::now() < deadline,
                "no writev ever completed more than one frame: {:?}",
                hist.snapshot()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        reactor.shutdown();
        reactor.join();
    }

    #[test]
    fn single_frame_beyond_cap_is_admitted_when_queue_is_empty() {
        let (reactor, addr) = start_echo(1, 16); // tiny cap
        let mut stream = connect(addr);
        // An echoed frame far beyond the cap still arrives: the empty
        // queue admits it and the prompt reader drains it.
        let msg = WrenMsg::TxReadReq {
            tx: wren_protocol::TxId::new(wren_protocol::ServerId::new(0, 0), 1),
            keys: (0..64).map(wren_protocol::Key).collect(),
        };
        stream.write_all(&frame_wren(&msg)).unwrap();
        let mut reader = FramedReader::new(stream);
        let payload = reader.next_frame().unwrap().expect("frame");
        assert_eq!(WrenMsg::decode(&payload).unwrap(), msg);
        reactor.shutdown();
        reactor.join();
    }

    #[test]
    fn closing_a_listener_stops_accepts_but_keeps_live_conns() {
        let reactor = Reactor::start(1, Echo::new()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let lh = reactor.add_listener(listener, 0, 1024 * 1024).unwrap();

        // A connection accepted before the close keeps echoing after it.
        let mut alive = connect(addr);
        let msg = WrenMsg::Heartbeat {
            t: Timestamp::from_micros(1),
        };
        alive.write_all(&frame_wren(&msg)).unwrap();
        let mut reader = FramedReader::new(alive.try_clone().unwrap());
        assert!(reader.next_frame().unwrap().is_some());

        lh.close();
        lh.close(); // idempotent

        // The listener fd is gone: new dials are refused (or accepted
        // by the kernel backlog and immediately dead). Poll until the
        // close has taken effect on the reactor thread.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match TcpStream::connect(addr) {
                Err(_) => break,
                Ok(s) => {
                    // Backlog raced the close: the conn must die rather
                    // than get served.
                    let mut r = FramedReader::new(s.try_clone().unwrap());
                    let mut w = s;
                    let _ = w.write_all(&frame_wren(&msg));
                    match r.next_frame() {
                        Ok(None) | Err(_) => break,
                        Ok(Some(_)) => {
                            assert!(Instant::now() < deadline, "listener never closed");
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
            }
        }

        // The pre-close connection still works.
        alive.write_all(&frame_wren(&msg)).unwrap();
        assert!(reader.next_frame().unwrap().is_some());
        reactor.shutdown();
        reactor.join();
    }

    #[test]
    fn shutdown_is_idempotent_and_kills_late_registrations() {
        let (reactor, addr) = start_echo(2, 1024);
        let _alive = connect(addr);
        reactor.shutdown();
        reactor.shutdown();
        reactor.join();
        // A dial registered after shutdown comes back dead, not leaked.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let target = listener.local_addr().unwrap();
        let stream = TcpStream::connect(target).unwrap();
        let handle = reactor.add_conn(stream, (), 1024).unwrap();
        assert!(!handle.enqueue(Bytes::from_static(b"x")));
        assert!(handle.is_closed());
        reactor.join(); // second join is a no-op
    }
}
