//! The io_uring backend for [`crate::reactor`]: submission-queue I/O
//! with the per-event syscalls taken off the hot path.
//!
//! The epoll loop pays one `epoll_wait` per readiness batch plus one
//! `read`/`writev`/`accept` per ready fd per event. This backend keeps
//! the equivalent work *resident in the kernel*: a **multishot accept**
//! per listener (one SQE, a completion per accepted socket), a
//! **provided-buffer recv** per connection (the kernel picks a buffer
//! from a pre-registered pool at the moment data arrives, so no buffer
//! is committed to an idle peer), and **vectored `sendmsg` batches** —
//! one SQE whose iovec array spans a whole outbox batch, the exact
//! `writev(2)` shape the epoll drain uses, as one submission and one
//! completion. The one recurring syscall is `io_uring_enter`, which
//! submits every SQE queued since the last call and waits for the next
//! completion batch — the `sqe_per_enter` histogram
//! ([`ReactorMetrics::sqe_per_enter`](crate::ReactorMetrics)) watches
//! how many submissions each kernel crossing amortizes.
//!
//! Everything a handler or handle can observe is identical to the
//! epoll backend — same [`ReactorHandler`] callbacks and burst
//! boundaries, same [`ConnHandle`]/[`ListenerHandle`](crate::ListenerHandle),
//! same outbox contract (bounded bytes, enqueue never blocks, an
//! overflowing peer is severed): the loop body here consumes the very
//! same registration/command queues as `reactor_loop` and reuses the
//! same [`plan_batch`]/[`settle`] send arithmetic, so `wren-rt`'s
//! fabric runs over either backend unmodified.
//!
//! **Sockets stay in blocking mode** on this backend (the installer
//! clears `O_NONBLOCK`): io_uring propagates `EAGAIN` to the CQE for
//! explicitly-nonblocking files, but for blocking files it parks the
//! request on internal poll and retries — which is exactly the
//! event-driven behavior the loop wants, with zero userspace retries.
//! Sends additionally carry `MSG_WAITALL`, so a batch's completion
//! normally acks every byte offered; a short send (peer died
//! mid-batch) settles through the same cursor arithmetic as a short
//! `writev`, and the resubmitted remainder surfaces the error.
//!
//! Availability is probed once per process ([`available`]): the
//! `io_uring_setup` syscall itself (absent kernels and seccomp-denying
//! containers fail here), the single-mmap ring layout, and every
//! opcode this module submits. Anything missing makes
//! [`Reactor::with_options`](crate::Reactor::with_options) fall back
//! to epoll; nothing else in the process notices.
//!
//! The FFI surface (syscalls 425/426/427, the ring mmaps, the atomic
//! head/tail protocol) lives in the [`sys`] module, the crate's second
//! and only other `unsafe` island, mirroring `poll::sys`' discipline:
//! one-line wrappers returning `io::Result`, nothing `unsafe` escapes.

use crate::reactor::{
    Cmd, ConnHandle, NewConn, Pending, ReactorHandler, SendQueue, Shared, READ_CHUNK, WRITE_BUDGET,
};
use crate::writev::{plan_batch, settle};
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use wren_protocol::frame::FrameDecoder;

/// SQ entries per ring (CQ defaults to twice this). Deep enough for
/// every conn's send batch (one `sendmsg` SQE each) plus every recv
/// re-arm in one submission batch; overflow spills into a userspace
/// backlog, never dropped.
const SQ_ENTRIES: u32 = 256;

/// Provided-buffer pool: count × size per reactor thread. Size matches
/// the epoll backend's read chunk; the pool bounds *concurrent* recv
/// completions holding data, not connections — a buffer is returned to
/// the kernel as soon as its burst is decoded, and a conn that loses
/// the race recvs `-ENOBUFS` and is re-armed when the next buffer
/// frees ([`Loop::starved`]).
const BUF_COUNT: u32 = 128;
const BUF_LEN: usize = READ_CHUNK;

/// The provided-buffer group id (this module only uses one pool).
const BUF_GROUP: u16 = 0;

/// user_data tags: op kind in the top byte, owning token below it.
const K_WAKER: u64 = 1 << 56;
const K_ACCEPT: u64 = 2 << 56;
const K_RECV: u64 = 3 << 56;
const K_SEND: u64 = 4 << 56;
const K_PROVIDE: u64 = 5 << 56;
const K_CANCEL: u64 = 6 << 56;
const TOKEN_MASK: u64 = (1 << 56) - 1;

// Completion error codes the loop dispatches on (negated errnos).
const ECANCELED: i32 = -125;
const ENOBUFS: i32 = -105;
const EMFILE: i32 = -24;
const ENFILE: i32 = -23;

/// The raw FFI surface: the three io_uring syscalls, the ring mmaps
/// and the shared-memory head/tail protocol, plus the one
/// `from_raw_fd` an accepted socket needs. Nothing else in this module
/// is allowed to write `unsafe`.
#[allow(unsafe_code)]
pub(crate) mod sys {
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::sync::atomic::{AtomicU32, Ordering};

    const SYS_IO_URING_SETUP: i64 = 425;
    const SYS_IO_URING_ENTER: i64 = 426;
    const SYS_IO_URING_REGISTER: i64 = 427;

    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_SQES: i64 = 0x1000_0000;

    const IORING_ENTER_GETEVENTS: u32 = 1;
    const IORING_REGISTER_PROBE: u32 = 8;

    const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 0x01;
    const MAP_POPULATE: i32 = 0x8000;

    // Opcodes this backend submits (probe-verified before use).
    pub const OP_POLL_ADD: u8 = 6;
    pub const OP_SENDMSG: u8 = 9;
    pub const OP_ACCEPT: u8 = 13;
    pub const OP_ASYNC_CANCEL: u8 = 14;
    pub const OP_RECV: u8 = 27;
    pub const OP_PROVIDE_BUFFERS: u8 = 31;

    // SQE flags.
    pub const IOSQE_BUFFER_SELECT: u8 = 1 << 5;

    // CQE flags.
    pub const CQE_F_BUFFER: u32 = 1 << 0;
    pub const CQE_F_MORE: u32 = 1 << 1;

    /// `ioprio` bit requesting multishot accept (one SQE, many CQEs).
    pub const ACCEPT_MULTISHOT: u16 = 1 << 0;

    pub const POLLIN: u32 = 1;
    pub const SOCK_CLOEXEC: u32 = 0o2000000;
    pub const MSG_WAITALL: u32 = 0x100;
    pub const MSG_NOSIGNAL: u32 = 0x4000;

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct SqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct CqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct UringParams {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqringOffsets,
        cq_off: CqringOffsets,
    }

    /// One submission-queue entry, full 64-byte kernel layout. Built
    /// field-by-field in safe code (addresses travel as `u64`; the
    /// pointee-lifetime obligations are documented on each prep
    /// helper) and copied into the mmap'd SQE array by [`Ring::push`].
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    pub struct Sqe {
        pub opcode: u8,
        pub flags: u8,
        pub ioprio: u16,
        pub fd: i32,
        pub off: u64,
        pub addr: u64,
        pub len: u32,
        pub op_flags: u32,
        pub user_data: u64,
        pub buf_index: u16,
        pub personality: u16,
        pub splice_fd_in: i32,
        pub pad2: [u64; 2],
    }

    /// One completion-queue entry (exactly `struct io_uring_cqe`).
    #[repr(C)]
    #[derive(Clone, Copy, Default, Debug)]
    pub struct Cqe {
        pub user_data: u64,
        pub res: i32,
        pub flags: u32,
    }

    /// `struct iovec` (x86-64 layout: two 8-byte fields). Addresses
    /// travel as `u64` so safe code can build these; the kernel only
    /// dereferences them while the owning sendmsg SQE is in flight.
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    pub struct Iovec {
        pub base: u64,
        pub len: u64,
    }

    /// `struct msghdr` (x86-64 layout, 56 bytes). Only `iov`/`iovlen`
    /// are used — name and control stay null — making an
    /// `OP_SENDMSG` SQE exactly a `writev(2)` on a socket.
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    pub struct MsgHdr {
        pub name: u64,
        pub namelen: u32,
        pub _pad0: u32,
        pub iov: u64,
        pub iovlen: u64,
        pub control: u64,
        pub controllen: u64,
        pub flags: u32,
        pub _pad1: u32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct ProbeOp {
        op: u8,
        resv: u8,
        flags: u16,
        resv2: u32,
    }

    #[repr(C)]
    struct ProbeBuf {
        last_op: u8,
        ops_len: u8,
        resv: u16,
        resv2: [u32; 3],
        ops: [ProbeOp; 256],
    }

    extern "C" {
        fn syscall(num: i64, ...) -> i64;
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// Wraps a just-accepted raw fd (from an ACCEPT completion) into a
    /// std stream, which takes ownership of closing it.
    pub fn stream_from_fd(fd: i32) -> std::net::TcpStream {
        // SAFETY: the fd was returned by the kernel in this op's CQE
        // and is owned by nobody else; ownership transfers here once.
        unsafe { std::net::TcpStream::from_raw_fd(fd) }
    }

    fn setup(entries: u32, params: &mut UringParams) -> io::Result<OwnedFd> {
        // SAFETY: plain syscall; params is a live out-pointer for the
        // duration of the call; a non-negative return is a fresh fd we
        // immediately take unique ownership of.
        let fd = unsafe { syscall(SYS_IO_URING_SETUP, entries, params as *mut UringParams) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
    }

    /// One mmap'd ring region, unmapped on drop.
    struct Mmap {
        ptr: *mut u8,
        len: usize,
    }

    impl Mmap {
        fn new(fd: RawFd, len: usize, offset: i64) -> io::Result<Mmap> {
            // SAFETY: plain mmap of the ring fd at a kernel-defined
            // offset; MAP_FAILED is checked before the pointer is used.
            let ptr = unsafe {
                mmap(
                    core::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE,
                    fd,
                    offset,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap {
                ptr: ptr.cast(),
                len,
            })
        }

        fn at(&self, off: u32) -> *mut u8 {
            debug_assert!((off as usize) < self.len);
            // In-bounds offset arithmetic within one mapping.
            self.ptr.wrapping_add(off as usize)
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: exactly the pointer/length pair mmap returned.
            unsafe {
                munmap(self.ptr.cast(), self.len);
            }
        }
    }

    fn atomic_at(m: &Mmap, off: u32) -> &AtomicU32 {
        // SAFETY: the offset comes from the kernel's ring layout and is
        // 4-aligned inside the live mapping; the kernel accesses the
        // same word atomically — that is the ring protocol.
        unsafe { &*(m.at(off) as *const AtomicU32) }
    }

    /// One io_uring instance: the ring fd, its two mmaps and the local
    /// submission cursor. All ring-protocol memory access is confined
    /// to this type's methods.
    pub struct Ring {
        fd: OwnedFd,
        ring: Mmap,
        sqes: Mmap,
        sq_head_off: u32,
        sq_tail_off: u32,
        sq_mask: u32,
        sq_array_off: u32,
        cq_head_off: u32,
        cq_tail_off: u32,
        cq_mask: u32,
        cq_cqes_off: u32,
        /// Our producer-side SQ tail (the kernel's copy lags until the
        /// release store in [`push`](Self::push)).
        tail: u32,
        /// SQEs pushed since the last successful submit.
        to_submit: u32,
    }

    // SAFETY: the Ring is moved into its reactor thread and never
    // shared; the raw pointers inside are to mappings it owns.
    unsafe impl Send for Ring {}

    impl Ring {
        /// Sets up a ring with `entries` SQ slots and mmaps it.
        pub fn with_entries(entries: u32) -> io::Result<Ring> {
            let mut p = UringParams::default();
            let fd = setup(entries, &mut p)?;
            if p.features & IORING_FEAT_SINGLE_MMAP == 0 {
                // Pre-5.4 two-mmap layout: the probe rejects such
                // kernels, but guard the direct path too.
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "io_uring without IORING_FEAT_SINGLE_MMAP",
                ));
            }
            let sq_size = p.sq_off.array as usize + p.sq_entries as usize * 4;
            let cq_size =
                p.cq_off.cqes as usize + p.cq_entries as usize * core::mem::size_of::<Cqe>();
            let ring = Mmap::new(fd.as_raw_fd(), sq_size.max(cq_size), IORING_OFF_SQ_RING)?;
            let sqes = Mmap::new(
                fd.as_raw_fd(),
                p.sq_entries as usize * core::mem::size_of::<Sqe>(),
                IORING_OFF_SQES,
            )?;
            let sq_mask = atomic_at(&ring, p.sq_off.ring_mask).load(Ordering::Relaxed);
            let cq_mask = atomic_at(&ring, p.cq_off.ring_mask).load(Ordering::Relaxed);
            Ok(Ring {
                fd,
                ring,
                sqes,
                sq_head_off: p.sq_off.head,
                sq_tail_off: p.sq_off.tail,
                sq_mask,
                sq_array_off: p.sq_off.array,
                cq_head_off: p.cq_off.head,
                cq_tail_off: p.cq_off.tail,
                cq_mask,
                cq_cqes_off: p.cq_off.cqes,
                tail: 0,
                to_submit: 0,
            })
        }

        /// Copies `sqe` into the next SQ slot and publishes it. `false`
        /// when the SQ is full (caller backlogs and flushes first).
        pub fn push(&mut self, sqe: &Sqe) -> bool {
            let head = atomic_at(&self.ring, self.sq_head_off).load(Ordering::Acquire);
            if self.tail.wrapping_sub(head) > self.sq_mask {
                return false;
            }
            let idx = self.tail & self.sq_mask;
            // SAFETY: idx is masked into the SQE array / index array of
            // the live mappings; the slot is ours until the tail store
            // below publishes it.
            unsafe {
                *(self.sqes.at(idx * core::mem::size_of::<Sqe>() as u32) as *mut Sqe) = *sqe;
                *(self.ring.at(self.sq_array_off + idx * 4) as *mut u32) = idx;
            }
            self.tail = self.tail.wrapping_add(1);
            atomic_at(&self.ring, self.sq_tail_off).store(self.tail, Ordering::Release);
            self.to_submit += 1;
            true
        }

        /// Submits everything pushed since the last call; when `wait`,
        /// also blocks until at least one CQE is available (this is the
        /// loop's only blocking point). Returns the submitted count.
        /// `EINTR` retries; `EBUSY` (completion backpressure) retries
        /// when waiting — consuming CQEs is exactly what unblocks it.
        pub fn enter(&mut self, wait: bool) -> io::Result<u32> {
            loop {
                let (min_complete, flags) = if wait { (1, IORING_ENTER_GETEVENTS) } else { (0, 0) };
                // SAFETY: plain syscall on the ring fd; no sigset.
                let r = unsafe {
                    syscall(
                        SYS_IO_URING_ENTER,
                        self.fd.as_raw_fd(),
                        self.to_submit,
                        min_complete,
                        flags,
                        core::ptr::null::<u8>(),
                        0usize,
                    )
                };
                if r < 0 {
                    let e = io::Error::last_os_error();
                    match e.raw_os_error() {
                        Some(4 /* EINTR */) => continue,
                        Some(16 /* EBUSY */) if !wait => return Ok(0),
                        Some(16) => continue,
                        _ => return Err(e),
                    }
                }
                let submitted = r as u32;
                self.to_submit -= submitted.min(self.to_submit);
                return Ok(submitted);
            }
        }

        /// Unused SQ slots (for chain reservation).
        pub fn free_slots(&self) -> u32 {
            let head = atomic_at(&self.ring, self.sq_head_off).load(Ordering::Acquire);
            (self.sq_mask + 1) - self.tail.wrapping_sub(head)
        }

        /// Pops the next completion, if any.
        pub fn pop(&mut self) -> Option<Cqe> {
            let head = atomic_at(&self.ring, self.cq_head_off).load(Ordering::Relaxed);
            let tail = atomic_at(&self.ring, self.cq_tail_off).load(Ordering::Acquire);
            if head == tail {
                return None;
            }
            let idx = head & self.cq_mask;
            // SAFETY: idx is masked into the CQE array of the live
            // mapping; the acquire-load of tail ordered the kernel's
            // write of this entry before our read.
            let cqe = unsafe {
                *(self
                    .ring
                    .at(self.cq_cqes_off + idx * core::mem::size_of::<Cqe>() as u32)
                    as *const Cqe)
            };
            atomic_at(&self.ring, self.cq_head_off).store(head.wrapping_add(1), Ordering::Release);
            Some(cqe)
        }
    }

    /// The process-wide capability probe: setup must succeed (absent
    /// kernel or seccomp-denied syscall fails here), the single-mmap
    /// layout must be offered, and every opcode this backend submits
    /// must report IO_URING_OP_SUPPORTED.
    pub fn probe() -> bool {
        let mut p = UringParams::default();
        let Ok(fd) = setup(2, &mut p) else {
            return false;
        };
        if p.features & IORING_FEAT_SINGLE_MMAP == 0 {
            return false;
        }
        let mut buf = ProbeBuf {
            last_op: 0,
            ops_len: 0,
            resv: 0,
            resv2: [0; 3],
            ops: [ProbeOp {
                op: 0,
                resv: 0,
                flags: 0,
                resv2: 0,
            }; 256],
        };
        // SAFETY: plain syscall; buf is a live out-pointer sized for
        // the nr_args we pass.
        let r = unsafe {
            syscall(
                SYS_IO_URING_REGISTER,
                fd.as_raw_fd(),
                IORING_REGISTER_PROBE,
                &mut buf as *mut ProbeBuf,
                256u32,
            )
        };
        if r < 0 {
            return false;
        }
        const IO_URING_OP_SUPPORTED: u16 = 1 << 0;
        [
            OP_POLL_ADD,
            OP_SENDMSG,
            OP_ACCEPT,
            OP_ASYNC_CANCEL,
            OP_RECV,
            OP_PROVIDE_BUFFERS,
        ]
        .iter()
        .all(|&op| {
            buf.ops
                .get(op as usize)
                .is_some_and(|o| op <= buf.last_op && o.flags & IO_URING_OP_SUPPORTED != 0)
        })
    }
}

use sys::{Cqe, Sqe};

/// A ring sized for the reactor loop ([`SQ_ENTRIES`]).
pub(crate) struct Ring {
    r: sys::Ring,
}

impl Ring {
    pub(crate) fn new() -> io::Result<Ring> {
        sys::Ring::with_entries(SQ_ENTRIES).map(|r| Ring { r })
    }
}

/// Test hook: forces [`available`] to report `false`, so the
/// epoll-fallback path can be exercised on hosts where io_uring works.
#[doc(hidden)]
pub fn force_unavailable(on: bool) {
    FORCE_UNAVAILABLE.store(on, Ordering::SeqCst);
}

static FORCE_UNAVAILABLE: AtomicBool = AtomicBool::new(false);

/// Whether this host can run the io_uring backend (probed once per
/// process; see [`sys::probe`] for what is required).
pub fn available() -> bool {
    static PROBE: OnceLock<bool> = OnceLock::new();
    !FORCE_UNAVAILABLE.load(Ordering::SeqCst) && *PROBE.get_or_init(sys::probe)
}

// ---------------------------------------------------------------------
// SQE preparation (safe: addresses travel as u64, each helper documents
// the lifetime its pointee must satisfy).
// ---------------------------------------------------------------------

/// Multishot accept on a listener fd. No pointee.
fn sqe_accept(fd: i32, token: u64) -> Sqe {
    Sqe {
        opcode: sys::OP_ACCEPT,
        ioprio: sys::ACCEPT_MULTISHOT,
        fd,
        op_flags: sys::SOCK_CLOEXEC,
        user_data: K_ACCEPT | (token & TOKEN_MASK),
        ..Sqe::default()
    }
}

/// Buffer-select recv: the kernel picks a pool buffer when data
/// arrives. No pointee (the pool is registered via PROVIDE_BUFFERS and
/// must stay alive while any recv is armed).
fn sqe_recv(fd: i32, token: u64) -> Sqe {
    Sqe {
        opcode: sys::OP_RECV,
        flags: sys::IOSQE_BUFFER_SELECT,
        fd,
        len: BUF_LEN as u32,
        buf_index: BUF_GROUP,
        user_data: K_RECV | (token & TOKEN_MASK),
        ..Sqe::default()
    }
}

/// One vectored send of a whole outbox batch: `msghdr_addr` points at
/// the conn's boxed [`sys::MsgHdr`], whose iovec array spans the
/// queued `Bytes` frames kept alive in the conn's `chain` — header,
/// array and payloads all pinned until the CQE arrives. The kernel's
/// `writev(2)` shape, one SQE per batch. `MSG_WAITALL` makes the
/// kernel retry short sends, so the completion normally acks the whole
/// batch; `MSG_NOSIGNAL` turns a dead peer into `EPIPE` rather than a
/// process signal.
fn sqe_sendmsg(fd: i32, msghdr_addr: u64, token: u64) -> Sqe {
    Sqe {
        opcode: sys::OP_SENDMSG,
        fd,
        addr: msghdr_addr,
        len: 1,
        op_flags: sys::MSG_WAITALL | sys::MSG_NOSIGNAL,
        user_data: K_SEND | (token & TOKEN_MASK),
        ..Sqe::default()
    }
}

/// Single-shot POLLIN on the waker eventfd. No pointee.
fn sqe_poll(fd: i32) -> Sqe {
    Sqe {
        opcode: sys::OP_POLL_ADD,
        fd,
        op_flags: sys::POLLIN,
        user_data: K_WAKER,
        ..Sqe::default()
    }
}

/// Cancels the outstanding op submitted under `target` user_data.
fn sqe_cancel(target: u64) -> Sqe {
    Sqe {
        opcode: sys::OP_ASYNC_CANCEL,
        fd: -1,
        addr: target,
        user_data: K_CANCEL,
        ..Sqe::default()
    }
}

// ---------------------------------------------------------------------
// Provided-buffer pool.
// ---------------------------------------------------------------------

/// The per-thread recv buffer pool, registered with the kernel as
/// provided-buffer group [`BUF_GROUP`]. The backing allocation is one
/// contiguous `Vec` that is never resized, so buffer addresses stay
/// stable for the life of the loop; teardown frees it only after the
/// ring has drained every outstanding op (or leaks it if the drain
/// times out — a freed-buffer kernel write would be far worse).
struct BufPool {
    mem: Vec<u8>,
}

impl BufPool {
    fn new() -> BufPool {
        BufPool {
            mem: vec![0u8; BUF_COUNT as usize * BUF_LEN],
        }
    }

    /// The received bytes of buffer `bid` after a recv completed `len`.
    fn slice(&self, bid: u16, len: usize) -> &[u8] {
        let start = bid as usize * BUF_LEN;
        &self.mem[start..start + len.min(BUF_LEN)]
    }

    /// Registers the whole pool (once, at loop start).
    fn provide_all(&self) -> Sqe {
        Sqe {
            opcode: sys::OP_PROVIDE_BUFFERS,
            fd: BUF_COUNT as i32,
            addr: self.mem.as_ptr() as u64,
            len: BUF_LEN as u32,
            off: 0,
            buf_index: BUF_GROUP,
            user_data: K_PROVIDE,
            ..Sqe::default()
        }
    }

    /// Returns buffer `bid` to the kernel after its burst was decoded.
    fn provide_one(&self, bid: u16) -> Sqe {
        Sqe {
            opcode: sys::OP_PROVIDE_BUFFERS,
            fd: 1,
            addr: self.mem.as_ptr() as u64 + (bid as usize * BUF_LEN) as u64,
            len: BUF_LEN as u32,
            off: bid as u64,
            buf_index: BUF_GROUP,
            user_data: K_PROVIDE,
            ..Sqe::default()
        }
    }
}

// ---------------------------------------------------------------------
// Submission bookkeeping.
// ---------------------------------------------------------------------

/// The ring plus the loop's submission discipline: a userspace backlog
/// so a push never drops (the SQ is finite; the backlog is not), an
/// in-flight count for teardown (every pushed SQE eventually yields
/// exactly one terminal CQE — multishot re-fires carry `F_MORE` and
/// don't count), and the `sqe_per_enter` histogram.
struct Subs {
    ring: Ring,
    backlog: VecDeque<Sqe>,
    inflight: u64,
    waker_armed: bool,
    hist: Option<wren_obs::Histogram>,
}

impl Subs {
    fn new(ring: Ring, hist: Option<wren_obs::Histogram>) -> Subs {
        Subs {
            ring,
            backlog: VecDeque::new(),
            inflight: 0,
            waker_armed: false,
            hist,
        }
    }

    /// Queues one SQE (to the ring, or the backlog if the SQ is full).
    fn push(&mut self, sqe: Sqe) {
        self.inflight += 1;
        if !self.backlog.is_empty() || !self.ring.r.push(&sqe) {
            self.backlog.push_back(sqe);
        }
    }

    /// Moves backlogged SQEs into ring slots, submitting to free them
    /// up as needed. Every SQE this backend issues is self-contained
    /// (a whole send batch travels as one `sendmsg` SQE), so any split
    /// between ring and backlog is safe. Only pathological SQ pressure
    /// leaves a remainder.
    fn flush_backlog(&mut self) {
        while !self.backlog.is_empty() {
            if self.ring.r.free_slots() >= 1 {
                let sqe = self.backlog.pop_front().unwrap();
                let pushed = self.ring.r.push(&sqe);
                debug_assert!(pushed);
            } else if !matches!(self.ring.r.enter(false), Ok(n) if n > 0) {
                break;
            }
        }
    }

    /// Submits everything queued and blocks for the next completion
    /// batch. Records how many SQEs this kernel crossing carried.
    fn enter_and_wait(&mut self) -> io::Result<()> {
        self.flush_backlog();
        let submitted = self.ring.r.enter(true)?;
        if let Some(h) = &self.hist {
            h.record(submitted as u64);
        }
        Ok(())
    }

    /// Pops the next completion, maintaining the in-flight count.
    fn pop(&mut self) -> Option<Cqe> {
        let cqe = self.ring.r.pop();
        if let Some(c) = &cqe {
            if c.flags & sys::CQE_F_MORE == 0 {
                self.inflight = self.inflight.saturating_sub(1);
            }
        }
        cqe
    }
}


// ---------------------------------------------------------------------
// Per-loop connection state.
// ---------------------------------------------------------------------

/// One reactor-served connection on this loop. The epoll backend's
/// `Conn` plus the in-flight submission state a completion-based loop
/// needs: the send batch's frames and iovec/msghdr storage (kept alive
/// for the kernel), and whether a send or recv is outstanding.
struct UConn<C> {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Arc<SendQueue>,
    state: C,
    token: u64,
    /// Bytes of the queue's front frame already acked by the kernel
    /// (the same mid-frame resume cursor as the epoll backend's).
    front_written: usize,
    /// Frames of the in-flight send batch. These `Bytes` clones pin
    /// the payload memory the submitted iovecs point into; cleared
    /// only when the batch's CQE has arrived.
    chain: Vec<Bytes>,
    /// The in-flight batch's iovec array. Heap storage is stable while
    /// the SQE is outstanding: rebuilt (never grown in place) only
    /// between batches.
    iov: Vec<sys::Iovec>,
    /// The in-flight batch's msghdr, boxed so its address survives the
    /// conn moving inside the entry map.
    msg: Box<sys::MsgHdr>,
    /// A sendmsg SQE is outstanding.
    send_inflight: bool,
    /// A recv SQE is outstanding.
    recv_armed: bool,
    /// Severed; waiting for in-flight CQEs to drain before `on_close`.
    closing: bool,
}

impl<C> UConn<C> {
    fn handle(&self, thread: &Arc<crate::reactor::ThreadShared>) -> ConnHandle {
        ConnHandle {
            token: self.token,
            out: Arc::clone(&self.out),
            thread: Arc::clone(thread),
        }
    }

    fn inflight(&self) -> u32 {
        u32::from(self.send_inflight) + u32::from(self.recv_armed)
    }
}

enum UEntry<C> {
    Listener {
        listener: TcpListener,
        ctx: u64,
        conn_max_bytes: usize,
        /// A (multishot) accept SQE is outstanding.
        accept_armed: bool,
        /// Closed; waiting for the accept cancel's terminal CQE.
        closing: bool,
    },
    Conn(UConn<C>),
}

/// What to do with a connection after a pass (mirrors the epoll loop).
#[derive(PartialEq)]
enum After {
    KeepOpen,
    Close,
}

// ---------------------------------------------------------------------
// The event loop.
// ---------------------------------------------------------------------

/// The io_uring event-loop body for reactor thread `idx`. Consumes the
/// same registration/command queues as `reactor_loop`; see the
/// [module docs](self) for the submission topology.
pub(crate) fn uring_loop<H: ReactorHandler>(shared: Arc<Shared<H>>, idx: usize, ring: Ring) {
    let me = &shared.threads[idx];
    let pool = BufPool::new();
    let mut subs = Subs::new(ring, shared.metrics.sqe_per_enter.clone());
    let mut entries: HashMap<u64, UEntry<H::Conn>> = HashMap::new();
    // Conns whose recv lost the buffer race (-ENOBUFS), re-armed in
    // FIFO order as buffers return to the pool.
    let mut starved: VecDeque<u64> = VecDeque::new();

    subs.push(pool.provide_all());
    subs.push(sqe_poll(me.shared.waker.as_raw_fd()));
    subs.waker_armed = true;

    loop {
        if shared.closing.load(Ordering::SeqCst) {
            teardown(&shared, idx, &mut subs, &mut entries, pool);
            return;
        }

        // New fds assigned to this thread.
        let pending: Vec<Pending<H::Conn>> =
            std::mem::take(&mut *me.pending.lock().unwrap_or_else(|e| e.into_inner()));
        for p in pending {
            match p {
                Pending::Conn(nc) => install_conn(&shared, idx, &mut subs, &mut entries, nc),
                Pending::Listener {
                    listener,
                    ctx,
                    conn_max_bytes,
                    token,
                } => {
                    let _ = listener.set_nonblocking(false);
                    subs.push(sqe_accept(listener.as_raw_fd(), token));
                    entries.insert(
                        token,
                        UEntry::Listener {
                            listener,
                            ctx,
                            conn_max_bytes,
                            accept_armed: true,
                            closing: false,
                        },
                    );
                }
            }
        }

        // Cross-thread commands (flush/sever kicks from enqueuers).
        let cmds: Vec<Cmd> =
            std::mem::take(&mut *me.shared.cmds.lock().unwrap_or_else(|e| e.into_inner()));
        for cmd in cmds {
            match cmd {
                Cmd::Flush(token) => {
                    let after = match entries.get_mut(&token) {
                        Some(UEntry::Conn(c)) => start_chain(c, &mut subs),
                        _ => After::KeepOpen,
                    };
                    if after == After::Close {
                        close_entry(&shared, idx, &mut subs, &mut entries, token);
                    }
                }
                Cmd::Sever(token) => {
                    close_entry(&shared, idx, &mut subs, &mut entries, token);
                    finalize_if_drained(&shared, idx, &mut entries, token);
                    // The target may still sit in the pending queue (a
                    // listener closed right after registration): retract
                    // it so it cannot install after its own sever.
                    let retracted = {
                        let mut q = me.pending.lock().unwrap_or_else(|e| e.into_inner());
                        q.iter()
                            .position(|p| p.token() == token)
                            .map(|pos| q.remove(pos))
                    };
                    if let Some(p) = retracted {
                        shared.discard_pending(idx, p);
                    }
                }
            }
        }

        // Submit everything queued and block for the next completion
        // batch — the loop's single syscall.
        if subs.enter_and_wait().is_err() {
            // Only pathological states land here; back off, don't spin.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }

        // Drain the completion batch.
        while let Some(cqe) = subs.pop() {
            let token = cqe.user_data & TOKEN_MASK;
            match cqe.user_data & !TOKEN_MASK {
                K_WAKER => {
                    subs.waker_armed = false;
                    me.shared.waker.drain();
                    if !shared.closing.load(Ordering::SeqCst) {
                        subs.push(sqe_poll(me.shared.waker.as_raw_fd()));
                        subs.waker_armed = true;
                    }
                }
                K_ACCEPT => handle_accept(&shared, idx, &mut subs, &mut entries, token, &cqe),
                K_RECV => handle_recv(
                    &shared,
                    idx,
                    &mut subs,
                    &mut entries,
                    &mut starved,
                    &pool,
                    token,
                    &cqe,
                ),
                K_SEND => handle_send(&shared, idx, &mut subs, &mut entries, token, cqe.res),
                // Buffer replenishments and cancels need no action.
                _ => {}
            }
        }
    }
}

/// Installs a connection into this loop — the single path shared by
/// cross-thread registrations and this thread's own accepts. The
/// socket is put back in blocking mode (see the [module docs](self)),
/// a recv is armed, and any frames already queued (a dialer's hello, a
/// greeting enqueued from `on_accept` — or a sever that raced the
/// registration) are acted on eagerly, exactly like the epoll
/// installer's eager first flush.
fn install_conn<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    idx: usize,
    subs: &mut Subs,
    entries: &mut HashMap<u64, UEntry<H::Conn>>,
    nc: NewConn<H::Conn>,
) {
    let _ = nc.stream.set_nonblocking(false);
    let token = nc.token;
    let mut c = UConn {
        stream: nc.stream,
        decoder: FrameDecoder::new(),
        out: nc.out,
        state: nc.state,
        token,
        front_written: 0,
        chain: Vec::new(),
        iov: Vec::new(),
        msg: Box::new(sys::MsgHdr::default()),
        send_inflight: false,
        recv_armed: false,
        closing: false,
    };
    subs.push(sqe_recv(c.stream.as_raw_fd(), token));
    c.recv_armed = true;
    let eager = start_chain(&mut c, subs);
    entries.insert(token, UEntry::Conn(c));
    if eager == After::Close {
        close_entry(shared, idx, subs, entries, token);
    }
}

/// Re-arms the recv of a previously buffer-starved connection.
fn arm_recv<C>(subs: &mut Subs, entries: &mut HashMap<u64, UEntry<C>>, token: u64) {
    if let Some(UEntry::Conn(c)) = entries.get_mut(&token) {
        if !c.closing && !c.recv_armed {
            subs.push(sqe_recv(c.stream.as_raw_fd(), token));
            c.recv_armed = true;
        }
    }
}

/// Submits the next send batch for `c` if none is in flight: the same
/// batch the epoll backend would hand to one `writev`
/// ([`plan_batch`] under [`WRITE_BUDGET`]), as one `sendmsg` SQE whose
/// iovec array spans the batch — one submission, one completion, and
/// the identical bytes on the wire.
fn start_chain<C>(c: &mut UConn<C>, subs: &mut Subs) -> After {
    if c.send_inflight || c.closing {
        return After::KeepOpen;
    }
    {
        let mut s = c.out.lock();
        s.kick_pending = false;
        if s.closed {
            return After::Close;
        }
        let take = plan_batch(&s.frames, c.front_written, WRITE_BUDGET);
        if take == 0 {
            return After::KeepOpen;
        }
        c.chain.clear();
        c.chain.extend(s.frames.iter().take(take).cloned());
    }
    // Rebuild the iovec array in place; its heap buffer (and the boxed
    // msghdr) must not move again until the CQE arrives.
    c.iov.clear();
    c.iov.extend(c.chain.iter().enumerate().map(|(i, frame)| {
        let part = if i == 0 {
            &frame[c.front_written..]
        } else {
            &frame[..]
        };
        sys::Iovec {
            base: part.as_ptr() as u64,
            len: part.len() as u64,
        }
    }));
    *c.msg = sys::MsgHdr {
        iov: c.iov.as_ptr() as u64,
        iovlen: c.iov.len() as u64,
        ..sys::MsgHdr::default()
    };
    let msghdr_addr = std::ptr::addr_of!(*c.msg) as u64;
    subs.push(sqe_sendmsg(c.stream.as_raw_fd(), msghdr_addr, c.token));
    c.send_inflight = true;
    After::KeepOpen
}

/// One accept completion: a fresh socket (multishot CQEs keep coming
/// while `F_MORE` is set), a cancel ack on the teardown path, or a
/// transient error. Re-arms the accept whenever the multishot chain
/// ended with the listener still open.
fn handle_accept<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    idx: usize,
    subs: &mut Subs,
    entries: &mut HashMap<u64, UEntry<H::Conn>>,
    token: u64,
    cqe: &Cqe,
) {
    let (ctx, conn_max_bytes, alive, fd) = match entries.get_mut(&token) {
        Some(UEntry::Listener {
            listener,
            ctx,
            conn_max_bytes,
            accept_armed,
            closing,
        }) => {
            if cqe.flags & sys::CQE_F_MORE == 0 {
                *accept_armed = false;
            }
            (*ctx, *conn_max_bytes, !*closing, listener.as_raw_fd())
        }
        _ => {
            // Entry already gone; an accepted fd must still be owned
            // and closed rather than leaked.
            if cqe.res >= 0 {
                drop(sys::stream_from_fd(cqe.res));
            }
            return;
        }
    };
    if cqe.res >= 0 {
        let accepted = sys::stream_from_fd(cqe.res);
        if alive && !shared.closing.load(Ordering::SeqCst) {
            let _ = accepted.set_nodelay(true);
            let conn_token = shared.token();
            let ti = shared.pick_thread();
            let out = Arc::new(SendQueue::new(conn_max_bytes));
            let handle = ConnHandle {
                token: conn_token,
                out: Arc::clone(&out),
                thread: Arc::clone(&shared.threads[ti].shared),
            };
            if let Some(state) = shared.handler.on_accept(ctx, &handle) {
                let nc = NewConn {
                    stream: accepted,
                    state,
                    out,
                    token: conn_token,
                };
                if ti == idx {
                    install_conn(shared, idx, subs, entries, nc);
                } else if let Some(retracted) = shared.submit(ti, Pending::Conn(nc)) {
                    shared.discard_pending(ti, retracted);
                }
            }
            // on_accept refusing drops the socket (fd closes).
        }
    } else if cqe.res == ECANCELED {
        if !alive {
            // Teardown handshake complete: the fd can die now.
            entries.remove(&token);
        }
        return;
    } else if cqe.res == EMFILE || cqe.res == ENFILE {
        // fd exhaustion: immediate re-arm would complete-fail in a hot
        // loop; a brief pause is the lesser evil, and only this path —
        // an already-sick process — pays it (mirrors the epoll loop).
        std::thread::sleep(Duration::from_millis(10));
    }
    // Transient errors (ECONNABORTED, EAGAIN) fall through to re-arm.
    if alive {
        if let Some(UEntry::Listener { accept_armed, .. }) = entries.get_mut(&token) {
            if !*accept_armed {
                subs.push(sqe_accept(fd, token));
                *accept_armed = true;
            }
        }
    }
}

/// One recv completion: decode the burst out of the selected pool
/// buffer, return the buffer, fire the burst hook, re-arm. Exactly the
/// epoll `read_ready` contract, with the buffer pool in place of the
/// per-thread read scratch.
#[allow(clippy::too_many_arguments)]
fn handle_recv<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    idx: usize,
    subs: &mut Subs,
    entries: &mut HashMap<u64, UEntry<H::Conn>>,
    starved: &mut VecDeque<u64>,
    pool: &BufPool,
    token: u64,
    cqe: &Cqe,
) {
    let me = &shared.threads[idx];
    let mut close = false;
    let mut rearm_starved: Option<u64> = None;
    {
        let Some(UEntry::Conn(c)) = entries.get_mut(&token) else {
            return;
        };
        c.recv_armed = false;
        if cqe.res == ENOBUFS {
            // Lost the buffer race: no buffer consumed; queue for
            // re-arm as soon as one returns to the pool.
            if !c.closing {
                starved.push_back(token);
            }
        } else if cqe.res <= 0 {
            // EOF, error, or the teardown cancel.
            close = true;
        } else {
            let bid = (cqe.flags >> 16) as u16;
            debug_assert!(cqe.flags & sys::CQE_F_BUFFER != 0);
            c.decoder.extend(pool.slice(bid, cqe.res as usize));
            let handle = c.handle(&me.shared);
            loop {
                match c.decoder.next_frame() {
                    Ok(Some(payload)) => {
                        if !shared.handler.on_frame(&mut c.state, &handle, payload) {
                            close = true;
                            break;
                        }
                    }
                    Ok(None) => break,
                    // Oversized frame: sever like the threaded reader.
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            // The buffer goes back to the kernel before anything else —
            // including on the sever path — and whoever starved first
            // gets the next shot at it.
            subs.push(pool.provide_one(bid));
            rearm_starved = starved.pop_front();
            // Burst over (drained or severing): batching handlers flush
            // here, before any close, so no buffered frame is lost.
            shared.handler.on_burst_end(&mut c.state, &handle);
            if !close {
                subs.push(sqe_recv(c.stream.as_raw_fd(), token));
                c.recv_armed = true;
                // Echo-style handlers enqueued responses during the
                // burst: submit them now rather than waiting for the
                // Flush command to come around.
                if start_chain(c, subs) == After::Close {
                    close = true;
                }
            }
        }
    }
    if close {
        close_entry(shared, idx, subs, entries, token);
    }
    finalize_if_drained(shared, idx, entries, token);
    if let Some(t) = rearm_starved {
        arm_recv(subs, entries, t);
    }
}

/// One send completion: the CQE's `res` is the batch's byte count,
/// settled against the queue exactly like a `writev` return —
/// completed frames pop, the mid-frame cursor advances, and the next
/// batch (the short-send remainder, or fresh frames) is submitted.
fn handle_send<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    idx: usize,
    subs: &mut Subs,
    entries: &mut HashMap<u64, UEntry<H::Conn>>,
    token: u64,
    res: i32,
) {
    let mut close = false;
    {
        let Some(UEntry::Conn(c)) = entries.get_mut(&token) else {
            return;
        };
        c.send_inflight = false;
        let acked = res.max(0) as usize;
        if acked > 0 {
            let mut s = c.out.lock();
            if !s.closed {
                s.queued_bytes -= acked.min(s.queued_bytes);
            }
        }
        let lens: Vec<usize> = c.chain.iter().map(Bytes::len).collect();
        let (completed, new_front) = settle(&lens, c.front_written, acked);
        c.front_written = new_front;
        c.chain.clear();
        {
            let mut s = c.out.lock();
            if !s.closed {
                for _ in 0..completed {
                    s.frames.pop_front();
                }
            }
        }
        if res <= 0 && !c.closing {
            // A real error (EPIPE, ECONNRESET, the teardown cancel) or
            // a zero-byte send of a nonempty batch: the peer is gone.
            close = true;
        } else if start_chain(c, subs) == After::Close {
            close = true;
        }
    }
    if close {
        close_entry(shared, idx, subs, entries, token);
    }
    finalize_if_drained(shared, idx, entries, token);
}

/// Severs the entry under `token`: the queue dies (every handle
/// reports closed), the socket is shut down so parked kernel ops
/// complete promptly, and outstanding multishot accepts are canceled.
/// The entry itself stays until its in-flight CQEs drain —
/// [`finalize_if_drained`] delivers `on_close` exactly once.
fn close_entry<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    idx: usize,
    subs: &mut Subs,
    entries: &mut HashMap<u64, UEntry<H::Conn>>,
    token: u64,
) {
    let _ = shared; // symmetry with the epoll close path
    let _ = idx;
    match entries.get_mut(&token) {
        Some(UEntry::Conn(c)) => {
            c.out.lock().kill();
            if !c.closing {
                c.closing = true;
                // Wakes any parked recv (completes 0/ECONNRESET) and
                // send (EPIPE) so the in-flight count drains.
                let _ = c.stream.shutdown(Shutdown::Both);
            }
        }
        Some(UEntry::Listener {
            accept_armed,
            closing,
            ..
        }) if !*closing => {
            *closing = true;
            if *accept_armed {
                subs.push(sqe_cancel(K_ACCEPT | token));
            } else {
                entries.remove(&token);
            }
        }
        _ => {}
    }
}

/// Delivers `on_close` and drops the fd once a severed connection has
/// no in-flight CQEs left. No-op otherwise.
fn finalize_if_drained<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    idx: usize,
    entries: &mut HashMap<u64, UEntry<H::Conn>>,
    token: u64,
) {
    let me = &shared.threads[idx];
    let done = matches!(
        entries.get(&token),
        Some(UEntry::Conn(c)) if c.closing && c.inflight() == 0
    );
    if done {
        if let Some(UEntry::Conn(mut c)) = entries.remove(&token) {
            let handle = c.handle(&me.shared);
            shared.handler.on_close(&mut c.state, &handle);
        }
    }
}

/// Reactor shutdown: sever everything, drain the kernel's outstanding
/// references (the pool and the chains must outlive every in-flight
/// op), then deliver `on_close` for each live connection and sweep the
/// pending/command queues exactly like the epoll loop's closing sweep.
fn teardown<H: ReactorHandler>(
    shared: &Arc<Shared<H>>,
    idx: usize,
    subs: &mut Subs,
    entries: &mut HashMap<u64, UEntry<H::Conn>>,
    pool: BufPool,
) {
    let me = &shared.threads[idx];
    let tokens: Vec<u64> = entries.keys().copied().collect();
    for token in tokens {
        match entries.get_mut(&token) {
            Some(UEntry::Conn(c)) => {
                c.out.lock().kill();
                if !c.closing {
                    c.closing = true;
                    let _ = c.stream.shutdown(Shutdown::Both);
                }
            }
            Some(UEntry::Listener {
                accept_armed,
                closing,
                ..
            }) if !*closing => {
                *closing = true;
                if *accept_armed {
                    subs.push(sqe_cancel(K_ACCEPT | token));
                }
            }
            _ => {}
        }
    }
    if subs.waker_armed {
        subs.push(sqe_cancel(K_WAKER));
    }
    // Drain until the kernel holds no reference into the pool, the
    // chains, or the fds. Shutdowns and cancels make every op
    // complete; the deadline is a backstop against kernel surprises.
    let deadline = Instant::now() + Duration::from_secs(5);
    while subs.inflight > 0 && Instant::now() < deadline {
        if subs.enter_and_wait().is_err() {
            break;
        }
        while let Some(cqe) = subs.pop() {
            // A multishot accept may still deliver fds mid-teardown;
            // they must be owned and closed, not leaked.
            if cqe.user_data & !TOKEN_MASK == K_ACCEPT && cqe.res >= 0 {
                drop(sys::stream_from_fd(cqe.res));
            }
        }
    }
    for (_, entry) in entries.drain() {
        if let UEntry::Conn(mut c) = entry {
            let handle = c.handle(&me.shared);
            shared.handler.on_close(&mut c.state, &handle);
        }
    }
    let swept: Vec<Pending<H::Conn>> =
        std::mem::take(&mut *me.pending.lock().unwrap_or_else(|e| e.into_inner()));
    for pending in swept {
        shared.discard_pending(idx, pending);
    }
    me.shared
        .cmds
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    if subs.inflight > 0 {
        // The drain timed out: some op may still hold a pointer into
        // the pool. Leaking it is strictly better than letting the
        // kernel write into freed memory.
        std::mem::forget(pool);
    }
}

