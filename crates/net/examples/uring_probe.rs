//! `uring_probe` — does this host offer the io_uring backend?
//!
//! Exit 0 when the probe passes (the reactor's `Backend::Uring` will
//! run for real), 1 when it fails (the reactor falls back to epoll).
//! CI uses this to label which backend its uring-tagged suites
//! actually exercised; the suites themselves run either way.
//!
//! ```bash
//! cargo run -p wren-net --example uring_probe
//! ```

fn main() {
    if wren_net::uring::available() {
        println!("io_uring: available (uring suites run on the real backend)");
    } else {
        println!("io_uring: unavailable (uring suites fall back to epoll)");
        std::process::exit(1);
    }
}
