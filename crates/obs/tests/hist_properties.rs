//! Property tests for the log-linear histogram core, checked against an
//! exact sorted-values oracle:
//!
//! * every reported quantile lands within one bucket width of the exact
//!   order statistic (≤ 1/64 relative above 64, exact below);
//! * merging snapshots is associative and commutative and equals
//!   recording the concatenated streams into one histogram;
//! * concurrent recording from many threads equals a serial replay of
//!   the same values (the PR 3 storage-oracle style: atomics must not
//!   lose updates).

use proptest::prelude::*;
use wren_obs::{Histogram, HistogramSnapshot};

/// The exact q-quantile of `sorted` by the same rank rule the histogram
/// uses (⌈q·n⌉-th smallest, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// The bucket width at `v`: 1 below 64, else 2^(msb−6).
fn bucket_width(v: u64) -> u64 {
    if v < 64 {
        1
    } else {
        1u64 << ((63 - v.leading_zeros()) - 6)
    }
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Values spanning the interesting octaves: exact range, a mid octave,
/// and huge values near the top of the table.
fn arb_values(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..64,
            64u64..4096,
            4096u64..1_000_000,
            1_000_000u64..u64::MAX / 2,
        ],
        1..max_len,
    )
}

proptest! {
    /// Recorded-values-vs-exact-percentile oracle: for every quantile
    /// the histogram reports a value `>= exact` (upper bucket bound)
    /// and within one bucket width of it.
    #[test]
    fn quantile_error_is_at_most_one_bucket(values in arb_values(300)) {
        let snap = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let got = snap.quantile(q);
            prop_assert!(got >= exact, "q{}: {} < exact {}", q, got, exact);
            prop_assert!(
                got - exact <= bucket_width(exact),
                "q{}: {} overshoots exact {} by more than one bucket ({})",
                q, got, exact, bucket_width(exact)
            );
        }
    }

    /// Merge is commutative, associative, and agrees with recording the
    /// concatenation into a single histogram.
    #[test]
    fn merge_is_associative_and_commutative(
        a in arb_values(80),
        b in arb_values(80),
        c in arb_values(80),
    ) {
        let (sa, sb, sc) = (record_all(&a), record_all(&b), record_all(&c));

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "merge not commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge not associative");

        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        concat.extend_from_slice(&c);
        prop_assert_eq!(ab_c, record_all(&concat), "merge ≠ concatenated recording");
    }
}

/// Multi-thread record-vs-serial-replay stress: 4 threads hammer one
/// shared histogram with disjoint slices of a value script; the result
/// must equal a serial replay of the whole script (relaxed atomics may
/// reorder, but must not lose or duplicate observations).
#[test]
fn concurrent_record_equals_serial_replay() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = if cfg!(debug_assertions) { 20_000 } else { 200_000 };

    // A deterministic value stream covering all octave shapes.
    let script: Vec<u64> = (0..THREADS * PER_THREAD)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x >> (x % 57) // values from full-range down to tiny
        })
        .collect();

    let shared = Histogram::new();
    std::thread::scope(|s| {
        for chunk in script.chunks(PER_THREAD) {
            let h = shared.clone();
            s.spawn(move || {
                for &v in chunk {
                    h.record(v);
                }
            });
        }
    });

    let serial = record_all(&script);
    assert_eq!(shared.snapshot(), serial);
}
