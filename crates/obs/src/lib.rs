//! Lock-free observability for the Wren reproduction.
//!
//! The crate is layered **record → snapshot → exposition**, and each
//! layer is allowed to cost more than the one below it:
//!
//! 1. **Record** — [`Counter`], [`Gauge`] and [`Histogram`] are thin
//!    handles over shared atomics. Recording is a handful of `Relaxed`
//!    atomic RMWs with no locks, no allocation and no branches on the
//!    hot path, so instrumentation can sit inside the commit path, the
//!    read workers and the fabric reader threads at near-zero cost when
//!    nobody is looking. Handles are `Clone` and can be hoisted out of
//!    loops; every clone writes to the same cells.
//! 2. **Snapshot** — a [`Registry`] names the live metrics and
//!    [`Registry::snapshot`] freezes them into a [`MetricsSnapshot`]:
//!    plain sorted maps of numbers, safe to hold, [`MetricsSnapshot::merge`]
//!    across threads/partitions (counters add, gauges take the max,
//!    histograms add bucket-wise) and [`MetricsSnapshot::diff`] against
//!    an earlier snapshot for rate logging. Snapshots tear benignly:
//!    each cell is read atomically but the set is not a consistent cut —
//!    fine for monitoring, by design.
//! 3. **Exposition** — [`MetricsSnapshot::render_prometheus`] produces
//!    a Prometheus-style text page, and [`HistogramSnapshot::quantile`]
//!    answers p50/p99/p999/mean/max queries for harness tables.
//!
//! The histogram is HDR-style log-linear: values below 64 are exact,
//! and every octave above is split into 64 linear sub-buckets, bounding
//! the relative quantile error at 1/64 (< 2%) across the full `u64`
//! range with a fixed 3776-bucket table (~30 KiB per histogram).
//!
//! [`TraceRing`] is the odd one out: not a metric but a bounded ring of
//! typed events (the tx-lifecycle trace), cheap enough to feed from the
//! protocol hot path and dumped only when a human — or a failing chaos
//! oracle — asks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

/// A monotonically increasing event count. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero (unregistered; see [`Registry::counter`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

/// A last-written-value (or high-water) cell. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero (unregistered; see [`Registry::gauge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Relaxed);
    }

    /// Raises the value to `v` if larger (high-water tracking).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.cell.fetch_max(v, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Sub-bucket resolution: 2^6 = 64 linear buckets per octave, so the
/// bucket width in the octave `[2^m, 2^{m+1})` is `2^{m-6}` and the
/// worst-case relative error of any reported quantile is 1/64.
const SUB_BITS: u32 = 6;
const SUBS: usize = 1 << SUB_BITS; // 64
/// Values `< 64` get an exact bucket each; octaves m = 6..=63 add 64
/// buckets apiece: 64 + 58·64 = 3776.
const N_BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Maps a value to its bucket index. Total order preserving.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // ≥ SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUBS - 1);
    SUBS + (msb - SUB_BITS) as usize * SUBS + sub
}

/// The inclusive upper bound of a bucket — what quantile queries report,
/// so reported quantiles never under-estimate by more than one bucket.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let octave = (idx - SUBS) / SUBS; // msb - SUB_BITS
    let sub = ((idx - SUBS) % SUBS) as u64;
    let width = 1u64 << octave;
    (SUBS as u64 + sub + 1).wrapping_mul(width).wrapping_sub(1)
}

#[derive(Debug)]
struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

/// A mergeable, lock-free log-linear latency/size histogram.
///
/// [`Histogram::record`] is the hot path: four `Relaxed` atomic RMWs
/// (count, sum, max, bucket), no locks, no allocation — benched by
/// `hist_record` in `wren-bench`. Cloning shares the cells, so a handle
/// can live on every thread that measures the same quantity.
#[derive(Clone, Debug)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram (unregistered; see [`Registry::histogram`]).
    pub fn new() -> Self {
        Histogram {
            cells: Arc::new(HistCells {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &*self.cells;
        c.count.fetch_add(1, Relaxed);
        c.sum.fetch_add(v, Relaxed);
        c.max.fetch_max(v, Relaxed);
        c.buckets[bucket_index(v)].fetch_add(1, Relaxed);
    }

    /// Number of recorded observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.cells.count.load(Relaxed)
    }

    /// Freezes the current contents (sparse: only non-empty buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &*self.cells;
        let mut buckets = Vec::new();
        for (i, b) in c.buckets.iter().enumerate() {
            let n = b.load(Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            count: c.count.load(Relaxed),
            sum: c.sum.load(Relaxed),
            max: c.max.load(Relaxed),
            buckets,
        }
    }
}

/// A frozen histogram: plain numbers, safe to merge, diff and query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations (mean = sum / count).
    pub sum: u64,
    /// Largest observation (exact, not bucketed).
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the bucket holding the ⌈q·count⌉-th smallest observation
    /// (clamped to [`max`](Self::max)), or 0 when empty. Error is at
    /// most one bucket width (≤ 1/64 relative).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx as usize).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` bucket-wise. Merging is associative
    /// and commutative, so per-thread histograms aggregate in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        // Wrapping on purpose: `record` accumulates the sum with a
        // wrapping `fetch_add`, so merged and single-histogram sums
        // agree even if a pathological stream wraps.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// The observations recorded since `earlier` (bucket-wise saturating
    /// subtraction; `max` keeps the lifetime maximum).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let before: BTreeMap<u32, u64> = earlier.buckets.iter().copied().collect();
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let d = n.saturating_sub(before.get(&i).copied().unwrap_or(0));
                (d > 0).then_some((i, d))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets,
        }
    }
}

// ---------------------------------------------------------------------
// Registry + snapshot
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named set of live metrics. Cloning shares the set; handle lookup
/// (`counter`/`gauge`/`histogram`) takes a lock, so call sites hoist
/// handles out of their hot loops and the recording path itself never
/// locks.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("obs registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("obs registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("obs registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Freezes every metric into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().expect("obs registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A frozen, diffable view of a registry (or of several, merged): plain
/// sorted maps of numbers with no live handles inside.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters add, gauges take the larger
    /// value, histograms merge bucket-wise. Used to aggregate
    /// per-partition registries into one cluster-wide view.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// What happened since `earlier`: counter and histogram deltas
    /// (saturating), gauges as their current values.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (k, v) in &self.counters {
            out.counters.insert(
                k.clone(),
                v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
            );
        }
        out.gauges = self.gauges.clone();
        for (k, v) in &self.histograms {
            let d = match earlier.histograms.get(k) {
                Some(e) => v.diff(e),
                None => v.clone(),
            };
            out.histograms.insert(k.clone(), d);
        }
        out
    }

    /// Shorthand: the named counter, or 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Shorthand: the named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders a Prometheus-style text exposition page: `# TYPE` lines,
    /// `_count`/`_sum`/`_max` series and `{quantile="…"}` summaries for
    /// histograms. Stable output order (sorted by name).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(
                out,
                "{name}_count {}\n{name}_sum {}\n{name}_max {}",
                h.count, h.sum, h.max
            );
        }
        out
    }
}

// ---------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------

/// A bounded ring buffer of typed trace events. Cloning shares the
/// ring. Pushing is one short mutex section (no allocation once warm);
/// overflow silently drops the **oldest** events and counts them, so a
/// post-mortem dump always shows the most recent history.
#[derive(Clone, Debug)]
pub struct TraceRing<T> {
    inner: Arc<Mutex<RingInner<T>>>,
}

#[derive(Debug)]
struct RingInner<T> {
    buf: VecDeque<T>,
    cap: usize,
    dropped: u64,
}

impl<T: Clone> TraceRing<T> {
    /// A ring retaining the newest `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        TraceRing {
            inner: Arc::new(Mutex::new(RingInner {
                buf: VecDeque::with_capacity(cap),
                cap,
                dropped: 0,
            })),
        }
    }

    /// Appends an event, evicting the oldest at capacity.
    pub fn push(&self, ev: T) {
        let mut r = self.inner.lock().expect("trace ring poisoned");
        if r.buf.len() == r.cap {
            r.buf.pop_front();
            r.dropped += 1;
        }
        r.buf.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn dump(&self) -> Vec<T> {
        self.inner.lock().expect("trace ring poisoned").buf.iter().cloned().collect()
    }

    /// How many events overflow has evicted.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Clone> Default for TraceRing<T> {
    /// A ring with the default capacity (512 events).
    fn default() -> Self {
        TraceRing::new(512)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for shift in 0..64 {
            for near in [-1i64, 0, 1, 31] {
                let v = (1u128 << shift) as i128 + near as i128;
                if !(0..=u64::MAX as i128).contains(&v) {
                    continue;
                }
                let idx = bucket_index(v as u64);
                assert!(idx < N_BUCKETS, "idx {idx} for value {v}");
                assert!(idx >= last || v < 64, "non-monotone at {v}");
                last = last.max(idx);
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_its_members() {
        for v in (0u64..4096).chain([1 << 20, (1 << 20) + 12345, u64::MAX / 3]) {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v, "upper({idx}) < {v}");
            // The upper bound stays within one bucket width of v.
            let width = if v < 64 { 1 } else { 1u64 << ((63 - v.leading_zeros()) - SUB_BITS) };
            assert!(bucket_upper(idx) - v < width, "upper too far above {v}");
        }
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 500.5).abs() < 0.01);
        // Error bound: 1/64 relative.
        for (q, exact) in [(0.5, 500u64), (0.99, 990), (0.999, 999)] {
            let got = s.quantile(q);
            assert!(
                got >= exact && got <= exact + exact / 32 + 1,
                "q{q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.max, s.p50(), s.p99()), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_roundtrip_and_merge() {
        let r = Registry::new();
        r.counter("txs").add(3);
        r.gauge("depth").record_max(7);
        r.histogram("lat").record(100);
        let mut a = r.snapshot();
        let r2 = Registry::new();
        r2.counter("txs").add(2);
        r2.gauge("depth").record_max(5);
        r2.histogram("lat").record(200);
        a.merge(&r2.snapshot());
        assert_eq!(a.counter("txs"), 5);
        assert_eq!(a.gauges["depth"], 7);
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 200);
    }

    #[test]
    fn snapshot_diff_subtracts() {
        let r = Registry::new();
        let c = r.counter("ops");
        let h = r.histogram("lat");
        c.add(5);
        h.record(10);
        let before = r.snapshot();
        c.add(2);
        h.record(20);
        let d = r.snapshot().diff(&before);
        assert_eq!(d.counter("ops"), 2);
        let dh = d.histogram("lat").unwrap();
        assert_eq!((dh.count, dh.sum), (1, 20));
    }

    #[test]
    fn render_prometheus_mentions_every_metric() {
        let r = Registry::new();
        r.counter("a_total").inc();
        r.gauge("b_depth").set(2);
        r.histogram("c_micros").record(5);
        let page = r.snapshot().render_prometheus();
        assert!(page.contains("a_total 1"));
        assert!(page.contains("b_depth 2"));
        assert!(page.contains("c_micros_count 1"));
        assert!(page.contains("quantile=\"0.99\""));
    }

    #[test]
    fn trace_ring_keeps_newest() {
        let ring: TraceRing<u64> = TraceRing::new(4);
        for i in 0..10 {
            ring.push(i);
        }
        assert_eq!(ring.dump(), vec![6, 7, 8, 9]);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.len(), 4);
    }
}
