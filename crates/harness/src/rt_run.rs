//! Closed-loop driver for the **threaded** runtime cluster.
//!
//! The simulator harness ([`run`](crate::run)) reproduces the paper's
//! figures under a modeled network; this driver measures the *real*
//! runtime (`wren-rt`) end to end — threads, sockets, kernel — in
//! either transport:
//!
//! * [`RtTransport::Channel`] — in-process crossbeam channels (the
//!   zero-copy upper bound);
//! * [`RtTransport::Tcp`] — loopback TCP with length-prefixed framed
//!   sessions served by the epoll **reactor** fabric (fixed thread
//!   pool), so the measured cost includes encode/frame/syscall/decode
//!   on **every** protocol hop, exactly what separate processes would
//!   pay;
//! * [`RtTransport::TcpThreaded`] — the same wire protocol on the
//!   two-threads-per-connection fabric, isolating what the thread
//!   topology (context switches vs. event loops) costs at a given
//!   connection count;
//! * [`RtTransport::TcpUring`] — the reactor fabric on the io_uring
//!   backend, isolating what the syscall interface costs at the same
//!   thread topology.
//!
//! [`RtSpec::fsync`] additionally puts a write-ahead log under every
//! partition, so the same driver sweeps durability policies (the
//! group-commit amortization curve) with the transport held fixed.
//!
//! Each session is one closed-loop thread (the paper's client model):
//! begin → multi-key read → multi-key write → commit, repeated, with
//! zipfian-free uniform key choice to keep the driver itself cheap.
//! Results are wall-clock throughput and per-transaction latency.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use wren_protocol::Key;
use wren_rt::{Backend, ClusterBuilder, FsyncPolicy};

/// Which transport the runtime cluster runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtTransport {
    /// In-process crossbeam channels.
    Channel,
    /// Loopback TCP: framed sessions over real sockets, served by the
    /// epoll reactor fabric (fixed thread pool).
    Tcp,
    /// Loopback TCP on the threaded fabric (one reader + one writer
    /// thread per connection) — the reactor's baseline.
    TcpThreaded,
    /// Loopback TCP on the reactor fabric's io_uring backend (falls
    /// back to epoll where the kernel lacks it — check
    /// `wren_net::uring::available()` before attributing numbers).
    TcpUring,
}

/// A closed-loop workload against the threaded runtime.
#[derive(Debug, Clone)]
pub struct RtSpec {
    /// Data centers.
    pub dcs: u8,
    /// Partitions per DC.
    pub partitions: u16,
    /// Read workers per partition engine.
    pub read_workers: usize,
    /// Transport under test.
    pub transport: RtTransport,
    /// Closed-loop sessions per DC.
    pub sessions_per_dc: usize,
    /// Transactions each session runs.
    pub txs_per_session: usize,
    /// Key-space size (uniform choice).
    pub keys: u64,
    /// Keys read per transaction.
    pub reads_per_tx: usize,
    /// Keys written per transaction.
    pub writes_per_tx: usize,
    /// When set, every partition logs to a write-ahead log under this
    /// group-commit policy (in a per-run temp dir, removed afterward):
    /// the measured commit path then includes WAL append + fsync
    /// scheduling, so sweeping policies isolates what durability costs
    /// and what group commit buys back.
    pub fsync: Option<FsyncPolicy>,
}

impl Default for RtSpec {
    fn default() -> Self {
        RtSpec {
            dcs: 1,
            partitions: 4,
            read_workers: 2,
            transport: RtTransport::Channel,
            sessions_per_dc: 4,
            txs_per_session: 200,
            keys: 256,
            reads_per_tx: 3,
            writes_per_tx: 2,
            fsync: None,
        }
    }
}

/// What a runtime run measured.
#[derive(Debug, Clone)]
pub struct RtRunResult {
    /// Committed transactions.
    pub txs: u64,
    /// Wall-clock transactions per second (all sessions together).
    pub throughput: f64,
    /// Mean transaction latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median transaction latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile transaction latency in milliseconds.
    pub p99_latency_ms: f64,
    /// 99.9th-percentile transaction latency in milliseconds — the tail
    /// the mean hides; transport comparisons live or die here.
    pub p999_latency_ms: f64,
}

/// Runs `spec` to completion and reports throughput/latency.
///
/// Every session thread drives its own [`Session`](wren_rt::Session);
/// the cluster is built and torn down inside the call (teardown joins
/// every engine and, in TCP mode, every fabric thread).
pub fn run_rt(spec: &RtSpec) -> RtRunResult {
    let mut builder = ClusterBuilder::new()
        .dcs(spec.dcs)
        .partitions(spec.partitions)
        .read_workers(spec.read_workers);
    match spec.transport {
        RtTransport::Channel => {}
        RtTransport::Tcp => builder = builder.tcp(),
        RtTransport::TcpThreaded => builder = builder.tcp_threaded(),
        RtTransport::TcpUring => builder = builder.tcp().backend(Backend::Uring),
    }
    let mut wal_dir = None;
    if let Some(policy) = spec.fsync {
        static RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let run = RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("wren-rt-wal-{}-{run}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        builder = builder.durable(&dir).fsync(policy);
        wal_dir = Some(dir);
    }
    let cluster = std::sync::Arc::new(builder.build());

    let started = Instant::now();
    let mut handles = Vec::new();
    for dc in 0..spec.dcs {
        for t in 0..spec.sessions_per_dc {
            let cluster = std::sync::Arc::clone(&cluster);
            let spec = spec.clone();
            handles.push(std::thread::spawn(move || {
                let mut session = cluster.session(dc);
                let mut rng =
                    SmallRng::seed_from_u64((dc as u64) << 32 | t as u64);
                let mut latencies_us: Vec<u64> = Vec::with_capacity(spec.txs_per_session);
                let payload = bytes::Bytes::from_static(b"8-byte-v");
                for _ in 0..spec.txs_per_session {
                    let tx_started = Instant::now();
                    session.begin().expect("begin");
                    let reads: Vec<Key> = (0..spec.reads_per_tx)
                        .map(|_| Key(rng.gen_range(0..spec.keys)))
                        .collect();
                    session.read(&reads).expect("read");
                    for _ in 0..spec.writes_per_tx {
                        session.write(Key(rng.gen_range(0..spec.keys)), payload.clone());
                    }
                    session.commit().expect("commit");
                    latencies_us.push(tx_started.elapsed().as_micros() as u64);
                }
                latencies_us
            }));
        }
    }

    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("session thread"));
    }
    let elapsed = started.elapsed();
    cluster.shutdown();
    if let Some(dir) = wal_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }

    latencies.sort_unstable();
    let txs = latencies.len() as u64;
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    // Nearest-rank on the sorted samples; per-mille precision so the
    // p999 is a real observation, not an interpolation.
    let pct = |per_mille: usize| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[((latencies.len() - 1) * per_mille) / 1_000]
        }
    };
    RtRunResult {
        txs,
        throughput: txs as f64 / elapsed.as_secs_f64(),
        mean_latency_ms: mean_us / 1_000.0,
        p50_latency_ms: pct(500) as f64 / 1_000.0,
        p99_latency_ms: pct(990) as f64 / 1_000.0,
        p999_latency_ms: pct(999) as f64 / 1_000.0,
    }
}
