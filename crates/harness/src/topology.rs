use wren_protocol::{CureMsg, WrenMsg};

/// CPU service-time model (µs) for the simulated servers.
///
/// The paper's servers are EC2 `m4.large` instances (2 vCPUs) running a
/// C++ implementation with protobuf serialization. We model each message
/// handler's CPU cost explicitly; the constants below were calibrated so
/// the default 3-DC × 8-partition deployment saturates around the paper's
/// reported 35–45k TX/s with ~1 ms of CPU work per 20-operation
/// transaction across the cluster. The *relative* costs follow the
/// handler's work: per-key storage lookups dominate slices, per-version
/// inserts dominate applies, vector entries add marshaling cost to Cure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Coordinator: handle `StartTxReq`.
    pub start_tx: u64,
    /// Coordinator: `TxReadReq` fan-out base.
    pub read_coord: u64,
    /// Coordinator: per remote key routed.
    pub read_coord_per_key: u64,
    /// Cohort: `SliceReq` base.
    pub slice_base: u64,
    /// Cohort: per key in a slice (version-chain lookup).
    pub slice_per_key: u64,
    /// Coordinator: gather one `SliceResp`.
    pub slice_resp: u64,
    /// Coordinator: `CommitReq` fan-out base.
    pub commit_coord: u64,
    /// Cohort: `PrepareReq` base.
    pub prepare: u64,
    /// Cohort: per written key at prepare.
    pub prepare_per_key: u64,
    /// Coordinator: gather one `PrepareResp`.
    pub prepare_resp: u64,
    /// Cohort: handle `Commit`.
    pub commit_msg: u64,
    /// Replication tick base cost.
    pub tick_base: u64,
    /// Per version applied at the replication tick.
    pub apply_per_version: u64,
    /// Sibling: `Replicate` batch base.
    pub replicate_recv: u64,
    /// Sibling: per version in a replication batch.
    pub replicate_per_version: u64,
    /// Sibling: handle `Heartbeat`.
    pub heartbeat: u64,
    /// Gossip tick send cost.
    pub gossip_tick: u64,
    /// Handle one incoming stabilization gossip message.
    pub gossip_recv: u64,
    /// GC tick cost (scan amortization).
    pub gc_tick: u64,
    /// Extra marshaling cost per version-vector entry in a Cure message
    /// (Wren messages carry scalars; Cure vectors grow with the DC count).
    pub per_vector_entry: u64,
    /// Cure only: cost to re-scan one queued (blocked) read when state
    /// advances — the "synchronization to block and unblock reads" the
    /// paper blames for Cure's throughput gap (§V-B).
    pub pending_read_scan: u64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            start_tx: 40,
            read_coord: 60,
            read_coord_per_key: 3,
            slice_base: 70,
            slice_per_key: 12,
            slice_resp: 25,
            commit_coord: 60,
            prepare: 100,
            prepare_per_key: 6,
            prepare_resp: 40,
            commit_msg: 30,
            tick_base: 15,
            apply_per_version: 12,
            replicate_recv: 20,
            replicate_per_version: 8,
            heartbeat: 3,
            gossip_tick: 15,
            gossip_recv: 3,
            gc_tick: 50,
            per_vector_entry: 1,
            pending_read_scan: 4,
        }
    }
}

impl ServiceModel {
    /// CPU cost of handling a Wren message on a server whose own partition
    /// is `own_partition` among `n_partitions` (local slices and prepares
    /// run inline in the coordinator's handler, so their cost is charged
    /// to the triggering message).
    pub fn wren_cost(&self, msg: &WrenMsg, own_partition: u16, n_partitions: u16) -> u64 {
        match msg {
            WrenMsg::StartTxReq { .. } => self.start_tx,
            WrenMsg::TxReadReq { keys, .. } => {
                let local = keys
                    .iter()
                    .filter(|k| k.partition(n_partitions).0 == own_partition)
                    .count() as u64;
                let remote = keys.len() as u64 - local;
                let mut cost = self.read_coord + self.read_coord_per_key * remote;
                if local > 0 {
                    cost += self.slice_base + self.slice_per_key * local;
                }
                cost
            }
            WrenMsg::SliceReq { keys, .. } => {
                self.slice_base + self.slice_per_key * keys.len() as u64
            }
            WrenMsg::SliceResp { .. } => self.slice_resp,
            WrenMsg::CommitReq { writes, .. } => {
                let local = writes
                    .iter()
                    .filter(|(k, _)| k.partition(n_partitions).0 == own_partition)
                    .count() as u64;
                let mut cost = self.commit_coord;
                if local > 0 {
                    cost += self.prepare + self.prepare_per_key * local;
                }
                cost
            }
            WrenMsg::PrepareReq { writes, .. } => {
                self.prepare + self.prepare_per_key * writes.len() as u64
            }
            WrenMsg::PrepareResp { .. } => self.prepare_resp,
            WrenMsg::Commit { .. } => self.commit_msg,
            WrenMsg::Replicate { batch } => {
                let versions: u64 = batch.txs.iter().map(|t| t.writes.len() as u64).sum();
                self.replicate_recv + self.replicate_per_version * versions
            }
            WrenMsg::Heartbeat { .. } => self.heartbeat,
            WrenMsg::StableGossip { .. }
            | WrenMsg::GossipUp { .. }
            | WrenMsg::GossipDown { .. } => self.gossip_recv,
            WrenMsg::GcGossip { .. } => self.gossip_recv,
            // Crash-recovery catch-up: the request costs a store scan
            // (priced like a heartbeat here — the simulator never
            // crashes processes, so these only matter for the runtime),
            // the close costs a vector touch.
            WrenMsg::CatchUpReq { .. } | WrenMsg::CatchUpDone { .. } => self.heartbeat,
            // Client-bound messages are handled by (cost-free) client nodes.
            WrenMsg::StartTxResp { .. }
            | WrenMsg::TxReadResp { .. }
            | WrenMsg::CommitResp { .. } => 0,
        }
    }

    /// CPU cost of a Cure message: structural twin of
    /// [`ServiceModel::wren_cost`], plus vector-marshaling overhead.
    pub fn cure_cost(&self, msg: &CureMsg, own_partition: u16, n_partitions: u16) -> u64 {
        let vv_extra = |len: usize| self.per_vector_entry * len as u64;
        match msg {
            CureMsg::StartTxReq { seen } => self.start_tx + vv_extra(seen.len()),
            CureMsg::TxReadReq { keys, .. } => {
                let local = keys
                    .iter()
                    .filter(|k| k.partition(n_partitions).0 == own_partition)
                    .count() as u64;
                let remote = keys.len() as u64 - local;
                let mut cost = self.read_coord + self.read_coord_per_key * remote;
                if local > 0 {
                    cost += self.slice_base + self.slice_per_key * local;
                }
                cost
            }
            CureMsg::SliceReq { keys, snapshot, .. } => {
                self.slice_base + self.slice_per_key * keys.len() as u64 + vv_extra(snapshot.len())
            }
            CureMsg::SliceResp { .. } => self.slice_resp,
            CureMsg::CommitReq { writes, .. } => {
                let local = writes
                    .iter()
                    .filter(|(k, _)| k.partition(n_partitions).0 == own_partition)
                    .count() as u64;
                let mut cost = self.commit_coord;
                if local > 0 {
                    cost += self.prepare + self.prepare_per_key * local;
                }
                cost
            }
            CureMsg::PrepareReq { writes, snapshot, .. } => {
                self.prepare
                    + self.prepare_per_key * writes.len() as u64
                    + vv_extra(snapshot.len())
            }
            CureMsg::PrepareResp { .. } => self.prepare_resp,
            CureMsg::Commit { .. } => self.commit_msg,
            CureMsg::Replicate { batch } => {
                let versions: u64 = batch.txs.iter().map(|t| t.writes.len() as u64).sum();
                let vectors: usize = batch.txs.iter().map(|t| t.deps.len()).sum();
                self.replicate_recv
                    + self.replicate_per_version * versions
                    + vv_extra(vectors)
            }
            CureMsg::Heartbeat { .. } => self.heartbeat,
            CureMsg::StableGossip { vv } => self.gossip_recv + vv_extra(vv.len()),
            CureMsg::GossipUp { vv } => self.gossip_recv + vv_extra(vv.len()),
            CureMsg::GossipDown { gsv } => self.gossip_recv + vv_extra(gsv.len()),
            CureMsg::GcGossip { oldest } => self.gossip_recv + vv_extra(oldest.len()),
            CureMsg::StartTxResp { .. }
            | CureMsg::TxReadResp { .. }
            | CureMsg::CommitResp { .. } => 0,
        }
    }
}

/// One-way inter-region latencies (µs) between the paper's five AWS
/// regions, in order: Virginia, Oregon, Ireland, Mumbai, Sydney (§V-A).
/// Values approximate public inter-region RTT/2 measurements.
pub const AWS_REGIONS: [&str; 5] = ["virginia", "oregon", "ireland", "mumbai", "sydney"];

/// The 5×5 one-way latency matrix for [`AWS_REGIONS`].
pub fn aws_latency_matrix() -> Vec<Vec<u64>> {
    const V: u64 = 0;
    let m = [
        // virginia, oregon, ireland, mumbai, sydney
        [V, 35_000, 40_000, 92_000, 100_000],
        [35_000, V, 65_000, 110_000, 70_000],
        [40_000, 65_000, V, 60_000, 135_000],
        [92_000, 110_000, 60_000, V, 105_000],
        [100_000, 70_000, 135_000, 105_000, V],
    ];
    m.iter().map(|row| row.to_vec()).collect()
}

/// Physical layout and timing parameters of a simulated deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Number of DCs (first `n_dcs` rows of the AWS matrix).
    pub n_dcs: u8,
    /// Partitions per DC.
    pub n_partitions: u16,
    /// Cores per server (`m4.large` has 2 vCPUs).
    pub cores_per_server: u16,
    /// Intra-DC one-way latency (µs).
    pub intra_dc_one_way_micros: u64,
    /// Uniform jitter added to intra-DC latency (µs).
    pub intra_dc_jitter_micros: u64,
    /// Client ↔ collocated coordinator one-way latency (µs).
    pub loopback_micros: u64,
    /// Multiplicative jitter on inter-DC latency (fraction).
    pub inter_dc_jitter_frac: f64,
    /// Maximum NTP-style clock offset per server (µs, drawn uniformly in
    /// `[-max, +max]`).
    pub skew_max_micros: i64,
    /// Δ_R: apply/replication tick (µs).
    pub replication_tick_micros: u64,
    /// Δ_G: stabilization gossip tick (µs; the paper uses 5 ms).
    pub gossip_tick_micros: u64,
    /// GC exchange tick (µs; 0 disables).
    pub gc_tick_micros: u64,
    /// Visibility sampling rate (every k-th update; 0 disables).
    pub visibility_sample_every: u64,
    /// Stabilization topology: 0 = all-to-all broadcast, k ≥ 1 = k-ary
    /// aggregation tree (see `wren_core::WrenConfig::gossip_fanout`).
    pub gossip_fanout: u16,
    /// CPU service-time model.
    pub service: ServiceModel,
}

impl Topology {
    /// The paper's AWS deployment shape: `m` DCs (Virginia, Oregon,
    /// Ireland, Mumbai, Sydney in that order) × `n` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the 5 modeled regions.
    pub fn aws(m: u8, n: u16) -> Self {
        assert!(m >= 1 && m as usize <= AWS_REGIONS.len(), "1–5 DCs supported");
        Topology {
            n_dcs: m,
            n_partitions: n,
            cores_per_server: 2,
            intra_dc_one_way_micros: 250,
            intra_dc_jitter_micros: 80,
            loopback_micros: 60,
            inter_dc_jitter_frac: 0.05,
            skew_max_micros: 2_000,
            replication_tick_micros: 1_000,
            gossip_tick_micros: 5_000,
            gc_tick_micros: 0,
            visibility_sample_every: 0,
            gossip_fanout: 0,
            service: ServiceModel::default(),
        }
    }

    /// The inter-DC one-way latency matrix restricted to this topology's
    /// DCs.
    pub fn inter_matrix(&self) -> Vec<Vec<u64>> {
        let full = aws_latency_matrix();
        (0..self.n_dcs as usize)
            .map(|a| (0..self.n_dcs as usize).map(|b| full[a][b]).collect())
            .collect()
    }

    /// Total servers in the deployment.
    pub fn n_servers(&self) -> usize {
        self.n_dcs as usize * self.n_partitions as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wren_clock::Timestamp;

    #[test]
    fn aws_matrix_is_symmetric_with_zero_diagonal() {
        let m = aws_latency_matrix();
        for (a, row) in m.iter().enumerate() {
            assert_eq!(row[a], 0);
            for (b, cell) in row.iter().enumerate() {
                assert_eq!(*cell, m[b][a]);
            }
        }
    }

    #[test]
    fn topology_restricts_matrix() {
        let t = Topology::aws(3, 8);
        let m = t.inter_matrix();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0][1], 35_000);
        assert_eq!(t.n_servers(), 24);
    }

    #[test]
    fn wren_read_cost_includes_local_slice() {
        let s = ServiceModel::default();
        // Find keys on partition 0 and not.
        let mut local_key = None;
        let mut remote_key = None;
        for id in 0..1000u64 {
            let k = wren_protocol::Key(id);
            if k.partition(8).0 == 0 && local_key.is_none() {
                local_key = Some(k);
            }
            if k.partition(8).0 != 0 && remote_key.is_none() {
                remote_key = Some(k);
            }
        }
        let mk = |keys: Vec<wren_protocol::Key>| WrenMsg::TxReadReq {
            tx: wren_protocol::TxId::from_raw(1),
            keys,
        };
        let with_local = s.wren_cost(&mk(vec![local_key.unwrap()]), 0, 8);
        let without = s.wren_cost(&mk(vec![remote_key.unwrap()]), 0, 8);
        assert!(with_local > without, "local slice must add cost");
    }

    #[test]
    fn cure_costs_exceed_wren_for_vector_messages() {
        let s = ServiceModel::default();
        let wren = s.wren_cost(
            &WrenMsg::StableGossip {
                local: Timestamp::ZERO,
                remote: Timestamp::ZERO,
            },
            0,
            8,
        );
        let cure = s.cure_cost(
            &CureMsg::StableGossip {
                vv: wren_clock::VersionVector::new(5),
            },
            0,
            8,
        );
        assert!(cure > wren);
    }

    #[test]
    #[should_panic(expected = "1–5 DCs")]
    fn aws_rejects_six_dcs() {
        Topology::aws(6, 1);
    }
}
