//! CSV export for figure data, so the bench output can be re-plotted with
//! any tool (gnuplot, matplotlib, a spreadsheet).
//!
//! Files land under `target/figures/` by default (override with the
//! `WREN_FIGURE_DIR` environment variable).

use crate::RunResult;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// The directory figure CSVs are written to.
///
/// Defaults to `<workspace>/target/figures` (anchored at compile time so
/// it does not depend on the bench runner's working directory).
pub fn figure_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("WREN_FIGURE_DIR") {
        return PathBuf::from(dir);
    }
    // crates/harness → crates → workspace root
    let workspace = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    workspace.join("target").join("figures")
}

/// Writes one latency-throughput curve as CSV. Returns the file path.
///
/// Columns: `threads,throughput_tx_s,mean_ms,p50_ms,p95_ms,p99_ms,`
/// `blocked_frac,mean_block_ms`.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation / writing).
pub fn write_curve(
    figure: &str,
    series: &str,
    points: &[(u16, RunResult)],
) -> std::io::Result<PathBuf> {
    let dir = figure_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{figure}_{series}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(
        f,
        "threads,throughput_tx_s,mean_ms,p50_ms,p95_ms,p99_ms,blocked_frac,mean_block_ms"
    )?;
    for (threads, r) in points {
        writeln!(
            f,
            "{},{:.1},{:.3},{:.3},{:.3},{:.3},{:.4},{:.3}",
            threads,
            r.throughput,
            r.latency.mean_ms,
            r.latency.p50_ms,
            r.latency.p95_ms,
            r.latency.p99_ms,
            r.blocking.blocked_fraction,
            r.blocking.mean_block_ms,
        )?;
    }
    Ok(path)
}

/// Writes a CDF (Fig. 7b-style) as CSV with columns
/// `latency_micros,cumulative_fraction`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_cdf(figure: &str, series: &str, samples: &[u64]) -> std::io::Result<PathBuf> {
    let dir = figure_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{figure}_{series}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "latency_micros,cumulative_fraction")?;
    for (value, frac) in crate::cdf(samples, 100) {
        writeln!(f, "{value},{frac:.4}")?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunResult;

    #[test]
    fn writes_curve_and_cdf() {
        let tmp = std::env::temp_dir().join("wren-csv-test");
        std::env::set_var("WREN_FIGURE_DIR", &tmp);
        let r = RunResult {
            committed: 10,
            duration_secs: 1.0,
            throughput: 10.0,
            ..RunResult::default()
        };
        let p = write_curve("figX", "wren", &[(1, r)]).unwrap();
        let content = std::fs::read_to_string(&p).unwrap();
        assert!(content.starts_with("threads,"));
        assert!(content.lines().count() == 2);

        let p = write_cdf("figY", "wren_local", &[10, 20, 30, 40]).unwrap();
        let content = std::fs::read_to_string(&p).unwrap();
        assert!(content.starts_with("latency_micros,"));
        assert!(content.lines().count() > 2);
        std::env::remove_var("WREN_FIGURE_DIR");
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
