//! Shared plumbing between the Wren and Cure simulated clusters: node
//! layout, message envelopes and timer kinds.

use wren_protocol::{ClientId, Dest, ServerId};
use wren_sim::{Message, MsgCategory, NodeId};

/// Timer kind: apply/replication tick (Δ_R).
pub const TIMER_REPL: u32 = 1_000_000;
/// Timer kind: stabilization gossip tick (Δ_G).
pub const TIMER_GOSSIP: u32 = 1_000_001;
/// Timer kind: garbage-collection tick.
pub const TIMER_GC: u32 = 1_000_002;
/// Timer kinds below this value are client-session kickoffs (kind =
/// session index).
pub const TIMER_SESSION_BASE: u32 = 0;

/// A protocol message in flight, tagged with its logical source and
/// destination so multi-session client processes can demultiplex.
///
/// The envelope models transport addressing (TCP connection identity); it
/// contributes no payload bytes, so `wire_size` delegates to the inner
/// message and Fig. 7a accounting is unaffected.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Logical sender.
    pub src: Dest,
    /// Logical receiver.
    pub dst: Dest,
    /// The protocol message.
    pub msg: M,
}

impl<M: Message> Message for Envelope<M> {
    fn wire_size(&self) -> usize {
        self.msg.wire_size()
    }
    fn category(&self) -> MsgCategory {
        self.msg.category()
    }
}

/// Maps protocol identities to simulator node ids.
///
/// Node order: all servers DC-major (`dc * n + partition`), then one
/// client *process* per (DC, partition) in the same order — the paper
/// spawns one client process per partition per DC, collocated with the
/// coordinator it uses (§V-A). Each process runs `threads` closed-loop
/// sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// DCs.
    pub m: u8,
    /// Partitions per DC.
    pub n: u16,
    /// Sessions per client process.
    pub threads: u16,
}

impl Layout {
    /// Simulator node of a server.
    pub fn server_node(&self, s: ServerId) -> NodeId {
        NodeId::new((s.dc.index() * self.n as usize + s.partition.index()) as u32)
    }

    /// Simulator node of the client process collocated with `(dc, p)`.
    pub fn client_process_node(&self, dc: u8, p: u16) -> NodeId {
        let servers = self.m as usize * self.n as usize;
        NodeId::new((servers + dc as usize * self.n as usize + p as usize) as u32)
    }

    /// The id of session `t` of the client process at `(dc, p)`.
    pub fn client_id(&self, dc: u8, p: u16, t: u16) -> ClientId {
        let process = dc as u32 * self.n as u32 + p as u32;
        ClientId(process * self.threads as u32 + t as u32)
    }

    /// The client process node hosting `c`.
    pub fn client_node(&self, c: ClientId) -> NodeId {
        let servers = self.m as usize * self.n as usize;
        NodeId::new((servers + (c.0 / self.threads as u32) as usize) as u32)
    }

    /// The session index of `c` within its process.
    pub fn session_of(&self, c: ClientId) -> usize {
        (c.0 % self.threads as u32) as usize
    }

    /// The coordinator (collocated server) of client `c`.
    pub fn coordinator_of(&self, c: ClientId) -> ServerId {
        let process = c.0 / self.threads as u32;
        ServerId::new(
            (process / self.n as u32) as u8,
            (process % self.n as u32) as u16,
        )
    }

    /// Simulator node for a logical destination.
    pub fn node_of(&self, dest: Dest) -> NodeId {
        match dest {
            Dest::Server(s) => self.server_node(s),
            Dest::Client(c) => self.client_node(c),
        }
    }

    /// Total simulator nodes (servers + client processes).
    pub fn total_nodes(&self) -> usize {
        2 * self.m as usize * self.n as usize
    }

    /// The site (DC index) of each node, in node order — feeds the
    /// network model.
    pub fn sites(&self) -> Vec<u16> {
        let mut sites = Vec::with_capacity(self.total_nodes());
        for dc in 0..self.m {
            for _ in 0..self.n {
                sites.push(dc as u16);
            }
        }
        for dc in 0..self.m {
            for _ in 0..self.n {
                sites.push(dc as u16);
            }
        }
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trips() {
        let l = Layout { m: 3, n: 8, threads: 4 };
        assert_eq!(l.total_nodes(), 48);
        let s = ServerId::new(2, 5);
        assert_eq!(l.server_node(s).index(), 2 * 8 + 5);
        let c = l.client_id(2, 5, 3);
        assert_eq!(l.coordinator_of(c), s);
        assert_eq!(l.session_of(c), 3);
        assert_eq!(l.client_node(c), l.client_process_node(2, 5));
    }

    #[test]
    fn client_ids_are_unique() {
        let l = Layout { m: 2, n: 4, threads: 8 };
        let mut seen = std::collections::HashSet::new();
        for dc in 0..2 {
            for p in 0..4 {
                for t in 0..8 {
                    assert!(seen.insert(l.client_id(dc, p, t).0));
                }
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn sites_cover_servers_then_clients() {
        let l = Layout { m: 2, n: 2, threads: 1 };
        assert_eq!(l.sites(), vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }
}
