//! Experiment harness for the Wren reproduction.
//!
//! This crate turns the sans-io protocol crates into running clusters on
//! the deterministic simulator and extracts the metrics behind every
//! figure in the paper's evaluation (§V):
//!
//! * [`Topology`] — deployment shape: the paper's AWS regions (latency
//!   matrix), `m4.large`-like 2-core servers, NTP-style clock skew, tick
//!   intervals, and a calibrated CPU [`ServiceModel`];
//! * [`ExperimentSpec`] + [`run`] — one closed-loop experiment for
//!   [`SystemKind::Wren`], [`SystemKind::Cure`] or [`SystemKind::HCure`],
//!   with warm-up exclusion and deterministic seeding;
//! * [`RunResult`] — throughput, latency percentiles, per-transaction
//!   blocking times (Fig. 3b), bytes on the wire by category (Fig. 7a)
//!   and update-visibility samples (Fig. 7b);
//! * [`RtSpec`] + [`run_rt`] — the same closed-loop client model against
//!   the **real threaded runtime** (`wren-rt`), over in-process channels
//!   or loopback TCP ([`RtTransport`]), measuring wall-clock throughput
//!   and latency including every serialization and socket cost.
//!
//! # Example
//!
//! ```no_run
//! use wren_harness::{run, ExperimentSpec, SystemKind};
//!
//! let mut spec = ExperimentSpec::default_paper();
//! spec.threads_per_client = 2;
//! let result = run(SystemKind::Wren, &spec);
//! println!("{:.0} TX/s at {:.2} ms mean", result.throughput, result.latency.mean_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod csv;
mod cure_cluster;
mod experiment;
mod metrics;
mod rt_run;
mod topology;
mod wren_cluster;

pub use cure_cluster::{CureClientNode, CureServerNode};
pub use experiment::{run, ExperimentSpec, SystemKind};
pub use rt_run::{run_rt, RtRunResult, RtSpec, RtTransport};
pub use wren_rt::FsyncPolicy;
pub use metrics::{cdf, BlockingSummary, BytesSummary, Histogram, LatencySummary, RunResult};
pub use topology::{aws_latency_matrix, ServiceModel, Topology, AWS_REGIONS};
pub use wren_cluster::{Ticks, WrenClientNode, WrenServerNode};
