/// Cap on raw retained samples per histogram (mean still uses all
/// samples; percentiles use the first `CAP`).
const CAP: usize = 2_000_000;

/// A latency histogram: exact mean over all samples, percentiles over up
/// to two million retained raw samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample (microseconds).
    pub fn record(&mut self, micros: u64) {
        self.count += 1;
        self.sum += micros as u128;
        self.max = self.max.max(micros);
        if self.samples.len() < CAP {
            self.samples.push(micros);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean in microseconds (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (0 < p ≤ 100) in microseconds, 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for s in &other.samples {
            if self.samples.len() >= CAP {
                break;
            }
            self.samples.push(*s);
        }
    }

    /// Clears all state (warm-up boundary).
    pub fn reset(&mut self) {
        self.samples.clear();
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// The retained raw samples (for CDF output).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

/// Builds an empirical CDF over `points` evenly-spaced percentiles from
/// raw samples: returns `(value_micros, cumulative_fraction)` pairs —
/// the format of Fig. 7b.
pub fn cdf(samples: &[u64], points: usize) -> Vec<(u64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mut out = Vec::with_capacity(points);
    for i in 1..=points {
        let frac = i as f64 / points as f64;
        let rank = ((frac * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        out.push((sorted[rank - 1], frac));
    }
    out
}

/// Latency summary in milliseconds, for figure rows.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median (ms).
    pub p50_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
}

impl LatencySummary {
    /// Summarizes a histogram of microsecond samples.
    pub fn of(h: &Histogram) -> Self {
        LatencySummary {
            mean_ms: h.mean() / 1_000.0,
            p50_ms: h.percentile(50.0) as f64 / 1_000.0,
            p95_ms: h.percentile(95.0) as f64 / 1_000.0,
            p99_ms: h.percentile(99.0) as f64 / 1_000.0,
        }
    }
}

/// Read-blocking summary (Fig. 3b). Zero for Wren by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockingSummary {
    /// Transactions that had at least one blocked read.
    pub blocked_txs: u64,
    /// Mean blocking time of blocked transactions (ms) — the paper's
    /// metric: per transaction, the max over its blocked reads.
    pub mean_block_ms: f64,
    /// Fraction of committed transactions that blocked.
    pub blocked_fraction: f64,
}

/// Bytes on the wire per category (Fig. 7a).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BytesSummary {
    /// Cross-DC update replication bytes.
    pub replication: u64,
    /// Cross-DC heartbeat bytes.
    pub heartbeat: u64,
    /// Intra-DC stabilization gossip bytes.
    pub stabilization: u64,
    /// Client ↔ coordinator bytes.
    pub client_server: u64,
    /// Intra-DC transaction (slice + 2PC) bytes.
    pub intra_dc: u64,
    /// GC watermark exchange bytes.
    pub gc: u64,
}

/// Everything one experiment run produces.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Transactions committed inside the measurement window.
    pub committed: u64,
    /// Measurement window length (seconds).
    pub duration_secs: f64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Transaction latency summary.
    pub latency: LatencySummary,
    /// Read-blocking summary (zeros for Wren).
    pub blocking: BlockingSummary,
    /// Wire bytes by category during the measurement window.
    pub bytes: BytesSummary,
    /// Local update visibility samples (µs).
    pub visibility_local: Vec<u64>,
    /// Remote update visibility samples (µs).
    pub visibility_remote: Vec<u64>,
    /// Mean server CPU utilization over the whole run (0–1).
    pub server_cpu_utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.percentile(50.0), 50);
        assert_eq!(h.percentile(99.0), 99);
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let samples: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let curve = cdf(&samples, 20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_summary_converts_to_ms() {
        let mut h = Histogram::new();
        h.record(2_000);
        h.record(4_000);
        let s = LatencySummary::of(&h);
        assert!((s.mean_ms - 3.0).abs() < 1e-9);
        assert!(s.p99_ms >= s.p50_ms);
    }
}
