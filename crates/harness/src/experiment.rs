//! Experiment runner: builds a simulated cluster for one of the three
//! systems, applies the closed-loop workload, and collects the metrics
//! every figure of the paper is built from.

use crate::cluster::{Envelope, Layout, TIMER_GC, TIMER_GOSSIP, TIMER_REPL, TIMER_SESSION_BASE};
use crate::cure_cluster::{CureClientNode, CureServerNode};
use crate::wren_cluster::{Ticks, WrenClientNode, WrenServerNode};
use crate::{BlockingSummary, BytesSummary, Histogram, LatencySummary, RunResult, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use wren_clock::SkewedClock;
use wren_core::{WrenConfig, WrenServer};
use wren_cure::{CureConfig, CureServer};
use wren_protocol::ServerId;
use wren_sim::{MsgCategory, NetworkModel, NodeId, SimTime, Simulation, TrafficSnapshot};
use wren_workload::{Workload, WorkloadSpec};

/// Which system an experiment exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Wren: CANToR + BDT + BiST (nonblocking reads).
    Wren,
    /// Cure: per-DC vectors, physical clocks, blocking reads.
    Cure,
    /// H-Cure: Cure with hybrid logical clocks.
    HCure,
}

impl SystemKind {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Wren => "Wren",
            SystemKind::Cure => "Cure",
            SystemKind::HCure => "H-Cure",
        }
    }

    /// All three systems, in the paper's plotting order.
    pub const ALL: [SystemKind; 3] = [SystemKind::Cure, SystemKind::HCure, SystemKind::Wren];
}

/// Full description of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Deployment shape and timing.
    pub topology: Topology,
    /// Workload parameters.
    pub workload: WorkloadSpec,
    /// Closed-loop sessions per client process (the paper sweeps 1, 2, 4,
    /// 8, 16).
    pub threads_per_client: u16,
    /// Warm-up window (µs) excluded from all metrics.
    pub warmup_micros: u64,
    /// Measurement window (µs).
    pub measure_micros: u64,
    /// RNG seed: same seed → bit-identical results.
    pub seed: u64,
}

impl ExperimentSpec {
    /// The paper's default configuration: 3 DCs × 8 partitions, 95:5 mix,
    /// p=4, with a short default window suitable for tests. Benches scale
    /// the windows up.
    pub fn default_paper() -> Self {
        ExperimentSpec {
            topology: Topology::aws(3, 8),
            workload: WorkloadSpec::default(),
            threads_per_client: 4,
            warmup_micros: 500_000,
            measure_micros: 2_000_000,
            seed: 42,
        }
    }

    fn layout(&self) -> Layout {
        Layout {
            m: self.topology.n_dcs,
            n: self.topology.n_partitions,
            threads: self.threads_per_client,
        }
    }

    fn ticks(&self) -> Ticks {
        Ticks {
            replication: self.topology.replication_tick_micros,
            gossip: self.topology.gossip_tick_micros,
            gc: self.topology.gc_tick_micros,
        }
    }
}

/// Runs one experiment for `system`, returning its metrics.
pub fn run(system: SystemKind, spec: &ExperimentSpec) -> RunResult {
    match system {
        SystemKind::Wren => run_wren(spec),
        SystemKind::Cure => run_cure(spec, false),
        SystemKind::HCure => run_cure(spec, true),
    }
}

fn build_network(spec: &ExperimentSpec, layout: &Layout) -> NetworkModel {
    let t = &spec.topology;
    NetworkModel::with_sites(
        layout.sites(),
        t.inter_matrix(),
        t.intra_dc_one_way_micros,
        t.intra_dc_jitter_micros,
        t.inter_dc_jitter_frac,
    )
}

fn skews(spec: &ExperimentSpec) -> Vec<i64> {
    let t = &spec.topology;
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x5eed_c10c);
    (0..t.n_servers())
        .map(|_| {
            if t.skew_max_micros == 0 {
                0
            } else {
                rng.gen_range(-t.skew_max_micros..=t.skew_max_micros)
            }
        })
        .collect()
}

/// Arms the standard timers: staggered periodic ticks per server and
/// per-session kickoffs on the client processes.
fn arm_timers<M: wren_sim::Message>(
    sim: &mut Simulation<M>,
    spec: &ExperimentSpec,
    layout: &Layout,
) {
    let t = &spec.topology;
    for i in 0..t.n_servers() {
        let node = NodeId::new(i as u32);
        sim.start_timer(node, (i as u64 * 137) % t.replication_tick_micros + 1, TIMER_REPL);
        sim.start_timer(node, (i as u64 * 271) % t.gossip_tick_micros + 2, TIMER_GOSSIP);
        if t.gc_tick_micros > 0 {
            sim.start_timer(node, (i as u64 * 631) % t.gc_tick_micros + 3, TIMER_GC);
        }
    }
    for dc in 0..layout.m {
        for p in 0..layout.n {
            let node = layout.client_process_node(dc, p);
            for s in 0..layout.threads {
                sim.start_timer(node, s as u64 * 17, TIMER_SESSION_BASE + s as u32);
            }
        }
    }
}

fn colocate_clients<M: wren_sim::Message>(
    sim: &mut Simulation<M>,
    spec: &ExperimentSpec,
    layout: &Layout,
) {
    for dc in 0..layout.m {
        for p in 0..layout.n {
            let server = layout.server_node(ServerId::new(dc, p));
            let client = layout.client_process_node(dc, p);
            sim.network_mut()
                .set_pair_latency(server, client, spec.topology.loopback_micros);
        }
    }
}

struct WindowStats {
    committed: u64,
    latencies: Histogram,
    bytes: BytesSummary,
    cpu_utilization: f64,
}

fn bytes_since(sim_traffic: &wren_sim::TrafficStats, snap: &TrafficSnapshot) -> BytesSummary {
    BytesSummary {
        replication: sim_traffic.bytes_since(snap, MsgCategory::Replication),
        heartbeat: sim_traffic.bytes_since(snap, MsgCategory::Heartbeat),
        stabilization: sim_traffic.bytes_since(snap, MsgCategory::Stabilization),
        client_server: sim_traffic.bytes_since(snap, MsgCategory::ClientServer),
        intra_dc: sim_traffic.bytes_since(snap, MsgCategory::IntraDcTransaction),
        gc: sim_traffic.bytes_since(snap, MsgCategory::GarbageCollection),
    }
}

fn run_wren(spec: &ExperimentSpec) -> RunResult {
    let layout = spec.layout();
    let t = &spec.topology;
    let workload = Workload::compile(spec.workload.clone(), t.n_partitions);
    let warmup_end = spec.warmup_micros;
    let end = spec.warmup_micros + spec.measure_micros;

    let cfg = WrenConfig {
        n_dcs: t.n_dcs,
        n_partitions: t.n_partitions,
        replication_tick_micros: t.replication_tick_micros,
        gossip_tick_micros: t.gossip_tick_micros,
        gc_tick_micros: t.gc_tick_micros,
        visibility_sample_every: t.visibility_sample_every,
        gossip_fanout: t.gossip_fanout,
    };

    let mut sim: Simulation<Envelope<wren_protocol::WrenMsg>> =
        Simulation::new(spec.seed, build_network(spec, &layout));
    let offsets = skews(spec);

    for dc in 0..t.n_dcs {
        for p in 0..t.n_partitions {
            let sid = ServerId::new(dc, p);
            let idx = layout.server_node(sid).index();
            let server = WrenServer::new(sid, cfg, SkewedClock::new(offsets[idx], 0.0));
            sim.add_node(
                Box::new(WrenServerNode::new(server, t.service, layout, spec.ticks())),
                t.cores_per_server,
            );
        }
    }
    for dc in 0..t.n_dcs {
        for p in 0..t.n_partitions {
            sim.add_node(
                Box::new(WrenClientNode::new(dc, p, layout, workload.clone(), warmup_end)),
                0,
            );
        }
    }
    colocate_clients(&mut sim, spec, &layout);
    arm_timers(&mut sim, spec, &layout);

    // Warm-up, then reset window-scoped collectors.
    sim.run_until(SimTime::from_micros(warmup_end));
    let traffic_snap = sim.traffic().snapshot();
    let mut busy_snap = Vec::with_capacity(t.n_servers());
    for i in 0..t.n_servers() {
        busy_snap.push(sim.cpu_busy_micros(NodeId::new(i as u32)));
        let node = sim
            .typed_node_mut::<WrenServerNode>(NodeId::new(i as u32))
            .expect("server node");
        node.server.visibility_mut().reset();
    }

    sim.run_until(SimTime::from_micros(end));

    // Collect.
    let mut w = WindowStats {
        committed: 0,
        latencies: Histogram::new(),
        bytes: bytes_since(sim.traffic(), &traffic_snap),
        cpu_utilization: 0.0,
    };
    let mut vis_local = Vec::new();
    let mut vis_remote = Vec::new();
    let mut busy_total = 0u64;
    for (i, &busy_before) in busy_snap.iter().enumerate().take(t.n_servers()) {
        busy_total += sim.cpu_busy_micros(NodeId::new(i as u32)) - busy_before;
        let node = sim
            .typed_node_mut::<WrenServerNode>(NodeId::new(i as u32))
            .expect("server node");
        vis_local.extend_from_slice(node.server.visibility().local_samples());
        vis_remote.extend_from_slice(node.server.visibility().remote_samples());
    }
    for dc in 0..layout.m {
        for p in 0..layout.n {
            let node_id = layout.client_process_node(dc, p);
            let node = sim
                .typed_node_mut::<WrenClientNode>(node_id)
                .expect("client node");
            w.committed += node.committed;
            w.latencies.merge(&node.latencies);
        }
    }
    let capacity = t.n_servers() as u64 * t.cores_per_server as u64 * spec.measure_micros;
    w.cpu_utilization = busy_total as f64 / capacity as f64;

    finish(spec, w, BlockingSummary::default(), vis_local, vis_remote)
}

fn run_cure(spec: &ExperimentSpec, hlc: bool) -> RunResult {
    let layout = spec.layout();
    let t = &spec.topology;
    let workload = Workload::compile(spec.workload.clone(), t.n_partitions);
    let warmup_end = spec.warmup_micros;
    let end = spec.warmup_micros + spec.measure_micros;

    let cfg = CureConfig {
        n_dcs: t.n_dcs,
        n_partitions: t.n_partitions,
        replication_tick_micros: t.replication_tick_micros,
        gossip_tick_micros: t.gossip_tick_micros,
        gc_tick_micros: t.gc_tick_micros,
        visibility_sample_every: t.visibility_sample_every,
        hlc,
        gossip_fanout: t.gossip_fanout,
    };

    let mut sim: Simulation<Envelope<wren_protocol::CureMsg>> =
        Simulation::new(spec.seed, build_network(spec, &layout));
    let offsets = skews(spec);

    for dc in 0..t.n_dcs {
        for p in 0..t.n_partitions {
            let sid = ServerId::new(dc, p);
            let idx = layout.server_node(sid).index();
            let server = CureServer::new(sid, cfg, SkewedClock::new(offsets[idx], 0.0));
            sim.add_node(
                Box::new(CureServerNode::new(server, t.service, layout, spec.ticks())),
                t.cores_per_server,
            );
        }
    }
    for dc in 0..t.n_dcs {
        for p in 0..t.n_partitions {
            sim.add_node(
                Box::new(CureClientNode::new(
                    dc,
                    p,
                    layout,
                    workload.clone(),
                    warmup_end,
                    t.n_dcs,
                )),
                0,
            );
        }
    }
    colocate_clients(&mut sim, spec, &layout);
    arm_timers(&mut sim, spec, &layout);

    sim.run_until(SimTime::from_micros(warmup_end));
    let traffic_snap = sim.traffic().snapshot();
    let mut busy_snap = Vec::with_capacity(t.n_servers());
    for i in 0..t.n_servers() {
        busy_snap.push(sim.cpu_busy_micros(NodeId::new(i as u32)));
        let node = sim
            .typed_node_mut::<CureServerNode>(NodeId::new(i as u32))
            .expect("server node");
        node.server.visibility_mut().reset();
        node.server.reset_blocked_samples();
    }

    sim.run_until(SimTime::from_micros(end));

    let mut w = WindowStats {
        committed: 0,
        latencies: Histogram::new(),
        bytes: bytes_since(sim.traffic(), &traffic_snap),
        cpu_utilization: 0.0,
    };
    let mut vis_local = Vec::new();
    let mut vis_remote = Vec::new();
    let mut busy_total = 0u64;
    // Per-transaction blocking: the paper counts a transaction blocked if
    // any of its reads blocked, with duration = max over its reads.
    let mut per_tx_block: HashMap<wren_protocol::TxId, u64> = HashMap::new();
    for (i, &busy_before) in busy_snap.iter().enumerate().take(t.n_servers()) {
        busy_total += sim.cpu_busy_micros(NodeId::new(i as u32)) - busy_before;
        let node = sim
            .typed_node_mut::<CureServerNode>(NodeId::new(i as u32))
            .expect("server node");
        vis_local.extend_from_slice(node.server.visibility().local_samples());
        vis_remote.extend_from_slice(node.server.visibility().remote_samples());
        for (tx, dur) in node.server.blocked_samples() {
            let e = per_tx_block.entry(*tx).or_insert(0);
            *e = (*e).max(*dur);
        }
    }
    for dc in 0..layout.m {
        for p in 0..layout.n {
            let node_id = layout.client_process_node(dc, p);
            let node = sim
                .typed_node_mut::<CureClientNode>(node_id)
                .expect("client node");
            w.committed += node.committed;
            w.latencies.merge(&node.latencies);
        }
    }
    let capacity = t.n_servers() as u64 * t.cores_per_server as u64 * spec.measure_micros;
    w.cpu_utilization = busy_total as f64 / capacity as f64;

    let blocked_txs = per_tx_block.len() as u64;
    let mean_block = if blocked_txs == 0 {
        0.0
    } else {
        per_tx_block.values().sum::<u64>() as f64 / blocked_txs as f64 / 1_000.0
    };
    let blocking = BlockingSummary {
        blocked_txs,
        mean_block_ms: mean_block,
        blocked_fraction: if w.committed == 0 {
            0.0
        } else {
            blocked_txs as f64 / w.committed as f64
        },
    };
    finish(spec, w, blocking, vis_local, vis_remote)
}

fn finish(
    spec: &ExperimentSpec,
    w: WindowStats,
    blocking: BlockingSummary,
    visibility_local: Vec<u64>,
    visibility_remote: Vec<u64>,
) -> RunResult {
    let secs = spec.measure_micros as f64 / 1_000_000.0;
    RunResult {
        committed: w.committed,
        duration_secs: secs,
        throughput: w.committed as f64 / secs,
        latency: LatencySummary::of(&w.latencies),
        blocking,
        bytes: w.bytes,
        visibility_local,
        visibility_remote,
        server_cpu_utilization: w.cpu_utilization,
    }
}
