//! Simulator adapters for the Wren protocol: server nodes and closed-loop
//! client-process nodes.

use crate::cluster::{Envelope, Layout, TIMER_GC, TIMER_GOSSIP, TIMER_REPL};
use crate::{Histogram, ServiceModel};
use std::any::Any;
use wren_core::{WrenClient, WrenServer};
use wren_protocol::{Dest, Outgoing, WrenMsg};
use wren_sim::{Context, Node, NodeId};
use wren_workload::{TxShape, Workload};

/// Tick intervals handed to server nodes.
#[derive(Debug, Clone, Copy)]
pub struct Ticks {
    /// Δ_R in µs.
    pub replication: u64,
    /// Δ_G in µs.
    pub gossip: u64,
    /// GC interval in µs (0 disables).
    pub gc: u64,
}

/// A Wren partition server wrapped as a simulator node: charges CPU per
/// the [`ServiceModel`], re-arms its own periodic timers, and routes
/// state-machine outputs through the [`Layout`].
pub struct WrenServerNode {
    /// The protocol state machine.
    pub server: WrenServer,
    svc: ServiceModel,
    layout: Layout,
    ticks: Ticks,
}

impl WrenServerNode {
    /// Wraps `server` for simulation.
    pub fn new(server: WrenServer, svc: ServiceModel, layout: Layout, ticks: Ticks) -> Self {
        WrenServerNode {
            server,
            svc,
            layout,
            ticks,
        }
    }

    fn forward(&self, out: Vec<Outgoing<WrenMsg>>, ctx: &mut Context<'_, Envelope<WrenMsg>>) {
        let src = Dest::Server(self.server.id());
        for Outgoing { to, msg } in out {
            ctx.send(
                self.layout.node_of(to),
                Envelope { src, dst: to, msg },
            );
        }
    }
}

impl Node<Envelope<WrenMsg>> for WrenServerNode {
    fn service_micros(&self, env: &Envelope<WrenMsg>) -> u64 {
        self.svc
            .wren_cost(&env.msg, self.server.id().partition.0, self.layout.n)
    }

    fn timer_service_micros(&self, kind: u32) -> u64 {
        match kind {
            TIMER_REPL => self.svc.tick_base,
            TIMER_GOSSIP => self.svc.gossip_tick,
            TIMER_GC => self.svc.gc_tick,
            _ => 0,
        }
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        env: Envelope<WrenMsg>,
        ctx: &mut Context<'_, Envelope<WrenMsg>>,
    ) {
        let mut out = Vec::new();
        self.server
            .handle(env.src, env.msg, ctx.now().as_micros(), &mut out);
        self.forward(out, ctx);
    }

    fn on_timer(&mut self, kind: u32, ctx: &mut Context<'_, Envelope<WrenMsg>>) {
        let now = ctx.now().as_micros();
        let mut out = Vec::new();
        match kind {
            TIMER_REPL => {
                let applied = self.server.on_replication_tick(now, &mut out);
                ctx.consume(applied as u64 * self.svc.apply_per_version);
                ctx.set_timer(self.ticks.replication, TIMER_REPL);
            }
            TIMER_GOSSIP => {
                self.server.on_gossip_tick(now, &mut out);
                ctx.set_timer(self.ticks.gossip, TIMER_GOSSIP);
            }
            TIMER_GC => {
                self.server.on_gc_tick(now, &mut out);
                if self.ticks.gc > 0 {
                    ctx.set_timer(self.ticks.gc, TIMER_GC);
                }
            }
            other => debug_assert!(false, "unknown timer kind {other}"),
        }
        self.forward(out, ctx);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// One closed-loop client session inside a client process.
struct Session {
    client: WrenClient,
    shape: TxShape,
    tx_start_micros: u64,
    seq: u32,
}

/// A client process: `threads` closed-loop sessions collocated with one
/// coordinator partition, mirroring the paper's load generators (§V-A).
///
/// Latency is recorded per committed transaction once the warm-up window
/// has passed.
pub struct WrenClientNode {
    layout: Layout,
    workload: Workload,
    sessions: Vec<Session>,
    warmup_end_micros: u64,
    /// Committed-transaction latencies inside the measurement window.
    pub latencies: Histogram,
    /// Transactions committed inside the measurement window.
    pub committed: u64,
}

impl WrenClientNode {
    /// Creates the client process at `(dc, partition)` with one session
    /// per thread.
    pub fn new(
        dc: u8,
        partition: u16,
        layout: Layout,
        workload: Workload,
        warmup_end_micros: u64,
    ) -> Self {
        let coordinator = wren_protocol::ServerId::new(dc, partition);
        let sessions = (0..layout.threads)
            .map(|t| Session {
                client: WrenClient::new(layout.client_id(dc, partition, t), coordinator),
                shape: TxShape {
                    reads: Vec::new(),
                    writes: Vec::new(),
                },
                tx_start_micros: 0,
                seq: 0,
            })
            .collect();
        WrenClientNode {
            layout,
            workload,
            sessions,
            warmup_end_micros,
            latencies: Histogram::new(),
            committed: 0,
        }
    }

    fn send_to_coordinator(
        &self,
        session: usize,
        msg: WrenMsg,
        ctx: &mut Context<'_, Envelope<WrenMsg>>,
    ) {
        let s = &self.sessions[session];
        let coord = s.client.coordinator();
        ctx.send(
            self.layout.server_node(coord),
            Envelope {
                src: Dest::Client(s.client.id()),
                dst: Dest::Server(coord),
                msg,
            },
        );
    }

    fn begin_tx(&mut self, session: usize, ctx: &mut Context<'_, Envelope<WrenMsg>>) {
        let shape = self.workload.sample_tx(ctx.rng());
        let s = &mut self.sessions[session];
        s.shape = shape;
        s.tx_start_micros = ctx.now().as_micros();
        let msg = s.client.start();
        self.send_to_coordinator(session, msg, ctx);
    }

    fn issue_reads(&mut self, session: usize, ctx: &mut Context<'_, Envelope<WrenMsg>>) {
        let s = &mut self.sessions[session];
        let keys = s.shape.reads.clone();
        let outcome = s.client.read(&keys);
        match outcome.request {
            Some(req) => self.send_to_coordinator(session, req, ctx),
            None => self.write_and_commit(session, ctx),
        }
    }

    fn write_and_commit(&mut self, session: usize, ctx: &mut Context<'_, Envelope<WrenMsg>>) {
        let client_id = self.sessions[session].client.id().0;
        let s = &mut self.sessions[session];
        s.seq += 1;
        let seq = s.seq;
        let writes: Vec<_> = s
            .shape
            .writes
            .iter()
            .map(|k| (*k, self.workload.make_value(client_id, seq)))
            .collect();
        s.client.write(writes);
        let msg = s.client.commit();
        self.send_to_coordinator(session, msg, ctx);
    }
}

impl Node<Envelope<WrenMsg>> for WrenClientNode {
    fn on_message(
        &mut self,
        _from: NodeId,
        env: Envelope<WrenMsg>,
        ctx: &mut Context<'_, Envelope<WrenMsg>>,
    ) {
        let Dest::Client(cid) = env.dst else {
            debug_assert!(false, "server-bound message delivered to client node");
            return;
        };
        let session = self.layout.session_of(cid);
        match env.msg {
            msg @ WrenMsg::StartTxResp { .. } => {
                self.sessions[session].client.on_start_resp(msg);
                self.issue_reads(session, ctx);
            }
            msg @ WrenMsg::TxReadResp { .. } => {
                let _ = self.sessions[session].client.on_read_resp(msg);
                self.write_and_commit(session, ctx);
            }
            msg @ WrenMsg::CommitResp { .. } => {
                let _ = self.sessions[session].client.on_commit_resp(msg);
                let now = ctx.now().as_micros();
                if now >= self.warmup_end_micros {
                    self.latencies
                        .record(now - self.sessions[session].tx_start_micros);
                    self.committed += 1;
                }
                self.begin_tx(session, ctx);
            }
            other => debug_assert!(false, "unexpected client message {other:?}"),
        }
    }

    fn on_timer(&mut self, kind: u32, ctx: &mut Context<'_, Envelope<WrenMsg>>) {
        // Session kickoff.
        self.begin_tx(kind as usize, ctx);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
