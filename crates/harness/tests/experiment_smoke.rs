//! Smoke tests for the experiment harness: short runs of all three
//! systems with the paper's qualitative outcomes asserted.

use wren_harness::{run, ExperimentSpec, SystemKind, Topology};
use wren_workload::WorkloadSpec;

fn small_spec() -> ExperimentSpec {
    let mut topology = Topology::aws(3, 4);
    topology.visibility_sample_every = 4;
    ExperimentSpec {
        topology,
        workload: WorkloadSpec {
            keys_per_partition: 500,
            ..WorkloadSpec::default()
        },
        threads_per_client: 2,
        warmup_micros: 300_000,
        measure_micros: 1_200_000,
        seed: 7,
    }
}

#[test]
fn wren_run_commits_and_never_blocks() {
    let r = run(SystemKind::Wren, &small_spec());
    assert!(r.committed > 100, "only {} commits", r.committed);
    assert!(r.throughput > 0.0);
    assert!(r.latency.mean_ms > 0.0);
    assert_eq!(r.blocking.blocked_txs, 0, "Wren must never block reads");
    assert!(r.bytes.replication > 0, "replication traffic expected");
    assert!(r.bytes.stabilization > 0, "gossip traffic expected");
}

#[test]
fn cure_run_commits_and_blocks_some_reads() {
    let r = run(SystemKind::Cure, &small_spec());
    assert!(r.committed > 100, "only {} commits", r.committed);
    assert!(
        r.blocking.blocked_txs > 0,
        "Cure should block some reads under skew + pending commits"
    );
    assert!(r.blocking.mean_block_ms > 0.0);
}

#[test]
fn hcure_blocks_less_than_cure() {
    let spec = small_spec();
    let cure = run(SystemKind::Cure, &spec);
    let hcure = run(SystemKind::HCure, &spec);
    assert!(
        hcure.blocking.mean_block_ms < cure.blocking.mean_block_ms,
        "H-Cure mean block ({:.3} ms) should be below Cure's ({:.3} ms)",
        hcure.blocking.mean_block_ms,
        cure.blocking.mean_block_ms
    );
}

#[test]
fn wren_latency_beats_cure_at_equal_load() {
    let spec = small_spec();
    let wren = run(SystemKind::Wren, &spec);
    let cure = run(SystemKind::Cure, &spec);
    assert!(
        wren.latency.mean_ms < cure.latency.mean_ms,
        "Wren mean latency {:.2} ms should beat Cure's {:.2} ms",
        wren.latency.mean_ms,
        cure.latency.mean_ms
    );
    assert!(
        wren.throughput >= cure.throughput,
        "Wren throughput {:.0} should be at least Cure's {:.0}",
        wren.throughput,
        cure.throughput
    );
}

#[test]
fn wren_metadata_bytes_below_cure() {
    let spec = small_spec();
    let wren = run(SystemKind::Wren, &spec);
    let cure = run(SystemKind::Cure, &spec);
    // Normalize per committed transaction to control for throughput
    // differences (the paper normalizes at equal throughput).
    let wren_repl = wren.bytes.replication as f64 / wren.committed as f64;
    let cure_repl = cure.bytes.replication as f64 / cure.committed as f64;
    assert!(
        wren_repl < cure_repl,
        "Wren replication bytes/tx {wren_repl:.1} should be below Cure's {cure_repl:.1}"
    );
    let wren_stab = wren.bytes.stabilization as f64;
    let cure_stab = cure.bytes.stabilization as f64;
    assert!(
        wren_stab < cure_stab,
        "Wren stabilization bytes {wren_stab} should be below Cure's {cure_stab}"
    );
}

#[test]
fn visibility_latencies_are_sane() {
    let spec = small_spec();
    let wren = run(SystemKind::Wren, &spec);
    assert!(
        !wren.visibility_local.is_empty() && !wren.visibility_remote.is_empty(),
        "visibility sampling enabled but no samples"
    );
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64 / 1_000.0;
    let local = mean(&wren.visibility_local);
    let remote = mean(&wren.visibility_remote);
    // Local visibility: a few ms (Δ_R + Δ_G lag). Remote: tens of ms
    // (inter-DC one-way latency + stabilization).
    assert!(local > 0.5 && local < 50.0, "local visibility {local:.1} ms");
    assert!(remote > 20.0 && remote < 300.0, "remote visibility {remote:.1} ms");
    assert!(remote > local);
}

#[test]
fn identical_seeds_reproduce_identical_results() {
    let spec = small_spec();
    let a = run(SystemKind::Wren, &spec);
    let b = run(SystemKind::Wren, &spec);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.bytes, b.bytes);
}

#[test]
fn more_threads_increase_throughput_until_saturation() {
    let mut spec = small_spec();
    spec.topology.visibility_sample_every = 0;
    spec.threads_per_client = 1;
    let t1 = run(SystemKind::Wren, &spec).throughput;
    spec.threads_per_client = 4;
    let t4 = run(SystemKind::Wren, &spec).throughput;
    assert!(
        t4 > t1 * 1.5,
        "4 threads ({t4:.0} tx/s) should beat 1 thread ({t1:.0} tx/s)"
    );
}
