//! Smoke for the threaded-runtime driver: both transports complete a
//! small closed-loop workload and report sane numbers.

use wren_harness::{run_rt, RtSpec, RtTransport};

fn small(transport: RtTransport) -> RtSpec {
    RtSpec {
        dcs: 1,
        partitions: 2,
        read_workers: 2,
        transport,
        sessions_per_dc: 2,
        txs_per_session: 40,
        keys: 64,
        reads_per_tx: 2,
        writes_per_tx: 1,
        fsync: None,
    }
}

#[test]
fn rt_run_channel_smoke() {
    let result = run_rt(&small(RtTransport::Channel));
    assert_eq!(result.txs, 80);
    assert!(result.throughput > 0.0);
    assert!(result.mean_latency_ms > 0.0);
    assert!(result.p99_latency_ms >= result.mean_latency_ms * 0.5);
}

#[test]
fn rt_run_tcp_smoke() {
    let result = run_rt(&small(RtTransport::Tcp));
    assert_eq!(result.txs, 80);
    assert!(result.throughput > 0.0);
    assert!(result.mean_latency_ms > 0.0);
}

#[test]
fn rt_run_tcp_threaded_smoke() {
    let result = run_rt(&small(RtTransport::TcpThreaded));
    assert_eq!(result.txs, 80);
    assert!(result.throughput > 0.0);
    assert!(result.mean_latency_ms > 0.0);
}

#[test]
fn rt_run_tcp_uring_smoke() {
    // On hosts without io_uring this exercises the epoll fallback —
    // still a valid smoke of the spec plumbing.
    let result = run_rt(&small(RtTransport::TcpUring));
    assert_eq!(result.txs, 80);
    assert!(result.throughput > 0.0);
    assert!(result.mean_latency_ms > 0.0);
}

#[test]
fn rt_run_durable_smoke() {
    use wren_harness::{FsyncPolicy, RtSpec};
    let spec = RtSpec {
        fsync: Some(FsyncPolicy::Window {
            max_delay: std::time::Duration::from_micros(200),
            max_bytes: 1 << 20,
        }),
        ..small(RtTransport::Tcp)
    };
    let result = run_rt(&spec);
    assert_eq!(result.txs, 80);
    assert!(result.throughput > 0.0);
}
