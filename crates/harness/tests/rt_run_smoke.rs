//! Smoke for the threaded-runtime driver: both transports complete a
//! small closed-loop workload and report sane numbers.

use wren_harness::{run_rt, RtSpec, RtTransport};

fn small(transport: RtTransport) -> RtSpec {
    RtSpec {
        dcs: 1,
        partitions: 2,
        read_workers: 2,
        transport,
        sessions_per_dc: 2,
        txs_per_session: 40,
        keys: 64,
        reads_per_tx: 2,
        writes_per_tx: 1,
    }
}

#[test]
fn rt_run_channel_smoke() {
    let result = run_rt(&small(RtTransport::Channel));
    assert_eq!(result.txs, 80);
    assert!(result.throughput > 0.0);
    assert!(result.mean_latency_ms > 0.0);
    assert!(result.p99_latency_ms >= result.mean_latency_ms * 0.5);
}

#[test]
fn rt_run_tcp_smoke() {
    let result = run_rt(&small(RtTransport::Tcp));
    assert_eq!(result.txs, 80);
    assert!(result.throughput > 0.0);
    assert!(result.mean_latency_ms > 0.0);
}

#[test]
fn rt_run_tcp_threaded_smoke() {
    let result = run_rt(&small(RtTransport::TcpThreaded));
    assert_eq!(result.txs, 80);
    assert!(result.throughput > 0.0);
    assert!(result.mean_latency_ms > 0.0);
}
