//! Deterministic crash-recovery tests for the durability layer, pumped
//! sans-io exactly like `protocol_flow.rs` — but every server runs with
//! a real per-partition WAL, is crashed by *dropping* it (no seal, no
//! flush beyond what `FsyncPolicy::Always` already guaranteed at each
//! commit point), and is rebuilt with [`WrenServer::recover`].
//!
//! The oracle in each test is the state the cluster is *known* to have
//! acknowledged: writer-per-key unique values make the expected
//! last-writer-wins answer exact, so a recovered cluster either
//! converges to it or the WAL lost something it promised to keep.

use bytes::Bytes;
use std::path::{Path, PathBuf};
use wren_clock::{SkewedClock, Timestamp};
use wren_core::{DurableLog, FsyncPolicy, WrenClient, WrenConfig, WrenServer};
use wren_protocol::{ClientId, Dest, Key, Outgoing, RepTx, ServerId, TxId, Value, WrenMsg};

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wren-durrec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn val(i: u64) -> Value {
    Bytes::from(i.to_le_bytes().to_vec())
}

/// A synchronous pump over durable Wren servers. Mirrors the pump in
/// `protocol_flow.rs`, with one addition matching the runtime engine's
/// discipline: after every handled message and every tick, the server
/// hits a WAL commit point *before* its outputs are forwarded — no
/// effect leaves a server ahead of its log.
struct DurablePump {
    cfg: WrenConfig,
    root: PathBuf,
    servers: Vec<WrenServer>,
    to_clients: Vec<(ClientId, WrenMsg)>,
    now: u64,
}

impl DurablePump {
    fn new(m: u8, n: u16, root: PathBuf) -> Self {
        let cfg = WrenConfig::new(m, n);
        let mut pump = DurablePump {
            cfg,
            root,
            servers: Vec::new(),
            to_clients: Vec::new(),
            now: 0,
        };
        for dc in 0..m {
            for p in 0..n {
                let id = ServerId::new(dc, p);
                pump.servers.push(Self::boot(cfg, id, &pump.root));
            }
        }
        pump
    }

    fn boot(cfg: WrenConfig, id: ServerId, root: &Path) -> WrenServer {
        let dir = root.join(format!("dc{}_p{}", id.dc.0, id.partition.0));
        WrenServer::recover(id, cfg, SkewedClock::perfect(), &dir, FsyncPolicy::Always)
            .expect("recover")
    }

    fn idx(&self, id: ServerId) -> usize {
        id.dc.index() * self.cfg.n_partitions as usize + id.partition.index()
    }

    /// Drops every server where it stands — unsent batches, unflushed
    /// buffer tails and all — and rebuilds each from its directory.
    fn crash_and_recover_all(&mut self) {
        let cfg = self.cfg;
        let ids: Vec<ServerId> = self.servers.iter().map(|s| s.id()).collect();
        self.servers.clear(); // the crash: Drop never flushes
        for id in ids {
            self.servers.push(Self::boot(cfg, id, &self.root));
        }
        self.to_clients.clear(); // in-flight responses died with the "processes"
    }

    fn drain(&mut self, mut pending: Vec<(Dest, ServerId, WrenMsg)>) {
        while let Some((from, to_server, msg)) = pending.pop() {
            let now = self.now;
            let mut out = Vec::new();
            let i = self.idx(to_server);
            self.servers[i].handle(from, msg, now, &mut out);
            self.servers[i].log_commit_point().unwrap();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => pending.push((Dest::Server(to_server), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
    }

    fn send_from_client(&mut self, client: ClientId, coordinator: ServerId, msg: WrenMsg) {
        self.drain(vec![(Dest::Client(client), coordinator, msg)]);
    }

    fn client_resp(&mut self, client: ClientId) -> WrenMsg {
        let pos = self
            .to_clients
            .iter()
            .position(|(c, _)| *c == client)
            .expect("no response for client");
        self.to_clients.remove(pos).1
    }

    fn tick(&mut self, advance: u64, f: impl Fn(&mut WrenServer, u64, &mut Vec<Outgoing<WrenMsg>>)) {
        self.now += advance;
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            f(&mut self.servers[i], self.now, &mut out);
            self.servers[i].log_commit_point().unwrap();
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    fn stabilize(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.tick(1_000, |s, now, out| {
                s.on_replication_tick(now, out);
            });
            self.tick(1_000, |s, now, out| s.on_gossip_tick(now, out));
        }
    }

    fn tick_gc(&mut self) {
        self.tick(1_000, |s, _now, out| {
            s.on_gc_tick(0, out);
        });
    }

    /// Total stored versions across every server (all stripes).
    fn total_versions(&self) -> usize {
        self.servers
            .iter()
            .map(|srv| {
                let store = srv.store();
                (0..store.n_stripes())
                    .map(|i| store.with_stripe(i, |s| s.iter().map(|(_, c)| c.len()).sum::<usize>()))
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Full client transaction against the pump (start → read → write →
/// commit), returning the read results.
fn run_tx(
    pump: &mut DurablePump,
    client: &mut WrenClient,
    reads: &[Key],
    writes: &[(Key, Value)],
) -> Vec<(Key, Option<Value>)> {
    let coord = client.coordinator();
    let id = client.id();
    pump.send_from_client(id, coord, client.start());
    client.on_start_resp(pump.client_resp(id));

    let mut results = Vec::new();
    if !reads.is_empty() {
        let outcome = client.read(reads);
        results.extend(outcome.local.clone());
        if let Some(req) = outcome.request {
            pump.send_from_client(id, coord, req);
            results.extend(client.on_read_resp(pump.client_resp(id)));
        }
    }
    if !writes.is_empty() {
        client.write(writes.iter().cloned());
    }
    pump.send_from_client(id, coord, client.commit());
    let ct = client.on_commit_resp(pump.client_resp(id));
    // Read-only commits legitimately report a zero timestamp.
    assert!(writes.is_empty() || !ct.is_zero(), "commit must succeed");
    results
}

fn value_of(results: &[(Key, Option<Value>)], key: Key) -> Option<Value> {
    results
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.clone())
        .expect("key missing from results")
}

/// The tentpole oracle, deterministic edition: a multi-DC cluster
/// acknowledges a stream of writes (with checkpoints rotating some
/// servers' logs mid-stream), every process crashes where it stands,
/// and the recovered cluster must still converge every fresh reader to
/// the exact last-writer-wins state that was acknowledged.
#[test]
fn crashed_cluster_recovers_acknowledged_state() {
    let root = tmp_root("full");
    let mut pump = DurablePump::new(2, 2, root.clone());

    // Writer-per-key: client 1 (DC 0) owns even keys, client 2 (DC 1)
    // owns odd keys, values strictly increasing — the expected final
    // value per key is exact.
    let mut alice = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let mut bob = WrenClient::new(ClientId(2), ServerId::new(1, 0));
    let keys: Vec<Key> = (0..6u64).map(Key).collect();
    let mut expected: Vec<(Key, u64)> = Vec::new();

    for round in 1..=8u64 {
        for (ki, key) in keys.iter().enumerate() {
            let v = round * 100 + ki as u64;
            let client = if ki % 2 == 0 { &mut alice } else { &mut bob };
            run_tx(&mut pump, client, &[], &[(*key, val(v))]);
            expected.retain(|(k, _)| k != key);
            expected.push((*key, v));
        }
        pump.stabilize(2);
        if round == 4 {
            // Rotate half the logs mid-stream: recovery must stitch
            // checkpointed servers and log-only servers together.
            for i in 0..pump.servers.len() / 2 {
                pump.servers[i].write_checkpoint().unwrap();
            }
        }
    }

    pump.crash_and_recover_all();
    pump.stabilize(6);

    // Fresh clients (no caches) in both DCs read every key.
    for dc in 0..2u8 {
        let mut reader = WrenClient::new(ClientId(100 + dc as u32), ServerId::new(dc, 0));
        let results = run_tx(&mut pump, &mut reader, &keys, &[]);
        for (key, v) in &expected {
            assert_eq!(
                value_of(&results, *key),
                Some(val(*v)),
                "DC {dc} lost acknowledged write {v} to {key:?} across the crash"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&root);
}

/// Satellite: GC-vs-checkpoint interaction. Old versions are collected,
/// a checkpoint then snapshots the trimmed store, the cluster crashes,
/// and recovery must neither resurrect the collected versions (version
/// counts match the pre-crash store exactly) nor drop the live ones
/// (every key still reads its newest value).
#[test]
fn checkpoint_after_gc_neither_resurrects_nor_drops() {
    let root = tmp_root("gc");
    let mut pump = DurablePump::new(2, 2, root.clone());
    let mut writer = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let keys: Vec<Key> = (0..4u64).map(Key).collect();

    // Heavy overwrites so chains grow...
    for round in 1..=10u64 {
        for key in &keys {
            run_tx(&mut pump, &mut writer, &[], &[(*key, val(round))]);
        }
        pump.stabilize(2);
    }
    let before_gc = pump.total_versions();

    // ...then GC. Two exchange rounds: contribute, then act on the
    // gossiped DC-wide minimum. Stabilization in between keeps the
    // watermark advancing past the old versions.
    for _ in 0..4 {
        pump.tick_gc();
        pump.stabilize(2);
    }
    let after_gc = pump.total_versions();
    assert!(
        after_gc < before_gc,
        "GC must collect overwritten versions ({before_gc} -> {after_gc})"
    );

    for srv in &mut pump.servers {
        srv.write_checkpoint().unwrap();
    }
    pump.crash_and_recover_all();

    assert_eq!(
        pump.total_versions(),
        after_gc,
        "recovery resurrected GC'd versions or dropped live ones"
    );
    pump.stabilize(4);
    let mut reader = WrenClient::new(ClientId(9), ServerId::new(1, 1));
    let results = run_tx(&mut pump, &mut reader, &keys, &[]);
    for key in &keys {
        assert_eq!(
            value_of(&results, *key),
            Some(val(10)),
            "live newest version of {key:?} lost across GC + checkpoint + crash"
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}

/// Satellite: recovery-time smoke. Replaying a 10k-record log into a
/// fresh server must finish well under the 2 s budget the CI step
/// enforces (the bound is only asserted in release builds; debug builds
/// run the same replay for coverage).
#[test]
fn replaying_10k_records_is_fast() {
    let root = tmp_root("smoke");
    let dir = root.join("dc0_p0");
    let n: u64 = 10_000;
    {
        let boot = DurableLog::open(&dir, FsyncPolicy::Off).unwrap();
        assert!(boot.ops.is_empty());
        let mut log = boot.log;
        for i in 0..n {
            let ct = Timestamp::from_micros(1_000 + i);
            let tx = TxId::new(ServerId::new(1, 0), i);
            log.log_remote_batch(
                1,
                true,
                ct,
                &[RepTx {
                    tx,
                    rst: Timestamp::ZERO,
                    writes: vec![(Key(i % 512), val(i))],
                }],
            );
        }
        log.seal().unwrap();
    }

    let start = std::time::Instant::now();
    let server = WrenServer::recover(
        ServerId::new(0, 0),
        WrenConfig::new(2, 1),
        SkewedClock::perfect(),
        &dir,
        FsyncPolicy::Off,
    )
    .unwrap();
    let elapsed = start.elapsed();

    let store = server.store();
    let total: usize = (0..store.n_stripes())
        .map(|i| store.with_stripe(i, |s| s.iter().map(|(_, c)| c.len()).sum::<usize>()))
        .sum();
    assert_eq!(total as u64, n, "every replayed record must land");
    if !cfg!(debug_assertions) {
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "10k-record replay took {elapsed:?} (budget 2 s)"
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}
