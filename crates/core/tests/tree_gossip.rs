//! Tree-structured BiST (the §IV-B "partitions organized as a tree"
//! optimization): same stable times as broadcast, far fewer messages.

use bytes::Bytes;
use wren_clock::{SkewedClock, Timestamp};
use wren_core::{WrenClient, WrenConfig, WrenServer};
use wren_protocol::{ClientId, Dest, Key, Outgoing, ServerId, WrenMsg};

/// Pump with a per-round stabilization message counter.
struct Pump {
    cfg: WrenConfig,
    servers: Vec<WrenServer>,
    to_clients: Vec<(ClientId, WrenMsg)>,
    now: u64,
    gossip_msgs: u64,
}

impl Pump {
    fn new(cfg: WrenConfig) -> Self {
        let mut servers = Vec::new();
        for dc in 0..cfg.n_dcs {
            for p in 0..cfg.n_partitions {
                servers.push(WrenServer::new(
                    ServerId::new(dc, p),
                    cfg,
                    SkewedClock::perfect(),
                ));
            }
        }
        Pump {
            cfg,
            servers,
            to_clients: Vec::new(),
            now: 0,
            gossip_msgs: 0,
        }
    }

    fn idx(&self, id: ServerId) -> usize {
        id.dc.index() * self.cfg.n_partitions as usize + id.partition.index()
    }

    fn drain(&mut self, mut pending: Vec<(Dest, ServerId, WrenMsg)>) {
        while let Some((from, to_server, msg)) = pending.pop() {
            if matches!(
                msg,
                WrenMsg::StableGossip { .. } | WrenMsg::GossipUp { .. } | WrenMsg::GossipDown { .. }
            ) {
                self.gossip_msgs += 1;
            }
            let now = self.now;
            let i = self.idx(to_server);
            let mut out = Vec::new();
            self.servers[i].handle(from, msg, now, &mut out);
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => pending.push((Dest::Server(to_server), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
    }

    fn tick_all(&mut self, advance: u64) {
        self.now += advance;
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            self.servers[i].on_replication_tick(self.now, &mut out);
            self.servers[i].on_gossip_tick(self.now, &mut out);
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    /// Gossip rounds only, at a frozen instant: version clocks stop
    /// moving, so both dissemination schemes converge to the same fixed
    /// point.
    fn gossip_only(&mut self) {
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            self.servers[i].on_gossip_tick(self.now, &mut out);
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    fn commit_one(&mut self, client: &mut WrenClient, key: Key, v: &[u8]) {
        let id = client.id();
        let coord = client.coordinator();
        self.drain(vec![(Dest::Client(id), coord, client.start())]);
        let resp = self.resp(id);
        client.on_start_resp(resp);
        client.write([(key, Bytes::copy_from_slice(v))]);
        self.drain(vec![(Dest::Client(id), coord, client.commit())]);
        let resp = self.resp(id);
        client.on_commit_resp(resp);
    }

    fn resp(&mut self, client: ClientId) -> WrenMsg {
        let pos = self
            .to_clients
            .iter()
            .position(|(c, _)| *c == client)
            .expect("no response");
        self.to_clients.remove(pos).1
    }

    fn min_lst(&self) -> Timestamp {
        self.servers.iter().map(|s| s.lst()).min().unwrap()
    }
}

#[test]
fn tree_gossip_advances_lst_on_every_partition() {
    let cfg = WrenConfig {
        gossip_fanout: 2,
        ..WrenConfig::new(1, 7)
    };
    let mut pump = Pump::new(cfg);
    let mut client = WrenClient::new(ClientId(1), ServerId::new(0, 3));
    pump.commit_one(&mut client, Key(0), b"x");

    // Depth of a 2-ary tree over 7 partitions is 2; a few rounds suffice
    // for up-aggregation + down-dissemination.
    for _ in 0..4 {
        pump.tick_all(1_000);
    }
    let lst = pump.min_lst();
    assert!(
        !lst.is_zero(),
        "every partition must learn a nonzero LST through the tree"
    );
}

#[test]
fn tree_and_broadcast_agree_on_stable_times() {
    let run = |fanout: u16| {
        let cfg = WrenConfig {
            gossip_fanout: fanout,
            ..WrenConfig::new(1, 8)
        };
        let mut pump = Pump::new(cfg);
        let mut client = WrenClient::new(ClientId(1), ServerId::new(0, 0));
        for i in 0..5u64 {
            pump.commit_one(&mut client, Key(i), b"v");
            pump.tick_all(1_000);
        }
        // Freeze time: gossip-only rounds reach the fixed point (the DC's
        // minimum version clock) under either dissemination scheme — the
        // tree just needs `depth` extra rounds.
        for _ in 0..6 {
            pump.gossip_only();
        }
        let fixed_point = pump
            .servers
            .iter()
            .map(|s| s.version_clock())
            .min()
            .unwrap();
        (pump.min_lst(), fixed_point, pump.gossip_msgs)
    };

    let (lst_bcast, fp_bcast, msgs_bcast) = run(0);
    let (lst_tree, fp_tree, msgs_tree) = run(2);
    assert_eq!(lst_bcast, fp_bcast, "broadcast LST reaches the fixed point");
    assert_eq!(lst_tree, fp_tree, "tree LST reaches the fixed point");
    assert_eq!(
        lst_bcast, lst_tree,
        "tree and broadcast must converge to the same LST"
    );
    assert!(
        msgs_tree < msgs_bcast / 2,
        "tree should use far fewer messages: {msgs_tree} vs {msgs_bcast}"
    );
}

#[test]
fn tree_mode_preserves_read_your_writes_and_visibility() {
    let cfg = WrenConfig {
        gossip_fanout: 3,
        ..WrenConfig::new(1, 8)
    };
    let mut pump = Pump::new(cfg);
    let mut writer = WrenClient::new(ClientId(1), ServerId::new(0, 2));
    let mut reader = WrenClient::new(ClientId(2), ServerId::new(0, 5));

    pump.commit_one(&mut writer, Key(9), b"tree");
    for _ in 0..6 {
        pump.tick_all(1_000);
    }

    // Reader on another partition sees the stabilized write.
    let id = reader.id();
    let coord = reader.coordinator();
    pump.drain(vec![(Dest::Client(id), coord, reader.start())]);
    let resp = pump.resp(id);
    reader.on_start_resp(resp);
    let outcome = reader.read(&[Key(9)]);
    let req = outcome.request.expect("server read");
    pump.drain(vec![(Dest::Client(id), coord, req)]);
    let resp = pump.resp(id);
    let res = reader.on_read_resp(resp);
    assert_eq!(
        res[0].1.as_deref(),
        Some(b"tree".as_slice()),
        "write must become visible through tree-computed stable times"
    );
    pump.drain(vec![(Dest::Client(id), coord, reader.commit())]);
    let resp = pump.resp(id);
    reader.on_commit_resp(resp);
}

#[test]
fn single_partition_tree_degenerates_gracefully() {
    let cfg = WrenConfig {
        gossip_fanout: 2,
        ..WrenConfig::new(1, 1)
    };
    let mut pump = Pump::new(cfg);
    let mut client = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    pump.commit_one(&mut client, Key(0), b"solo");
    pump.tick_all(1_000);
    pump.tick_all(1_000);
    assert!(!pump.min_lst().is_zero());
    assert_eq!(pump.gossip_msgs, 0, "a single partition exchanges nothing");
}
