//! End-to-end protocol flow tests: a miniature multi-DC, multi-partition
//! cluster pumped synchronously (no simulator), validating Algorithms 1–4
//! wiring: snapshots, 2PC, replication, BiST and garbage collection.

use bytes::Bytes;
use wren_clock::{SkewedClock, Timestamp};
use wren_core::{WrenClient, WrenConfig, WrenServer};
use wren_protocol::{ClientId, Dest, Key, Outgoing, ServerId, Value, WrenMsg};

/// A synchronous message pump over a full mesh of Wren servers.
struct Pump {
    cfg: WrenConfig,
    servers: Vec<WrenServer>, // index = dc * n_partitions + partition
    /// Messages destined to clients, collected for the test to consume.
    to_clients: Vec<(ClientId, WrenMsg)>,
    now: u64,
}

impl Pump {
    fn new(m: u8, n: u16) -> Self {
        let cfg = WrenConfig::new(m, n);
        let mut servers = Vec::new();
        for dc in 0..m {
            for p in 0..n {
                servers.push(WrenServer::new(
                    ServerId::new(dc, p),
                    cfg,
                    SkewedClock::perfect(),
                ));
            }
        }
        Pump {
            cfg,
            servers,
            to_clients: Vec::new(),
            now: 0,
        }
    }

    fn idx(&self, id: ServerId) -> usize {
        id.dc.index() * self.cfg.n_partitions as usize + id.partition.index()
    }

    fn server(&mut self, id: ServerId) -> &mut WrenServer {
        let i = self.idx(id);
        &mut self.servers[i]
    }

    /// Delivers every outgoing message (and its cascading replies) until
    /// the network is quiet. Client-bound messages are queued for the test.
    fn drain(&mut self, mut pending: Vec<(Dest, ServerId, WrenMsg)>) {
        while let Some((from, to_server, msg)) = pending.pop() {
            let now = self.now;
            let mut out = Vec::new();
            let i = self.idx(to_server);
            self.servers[i].handle(from, msg, now, &mut out);
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => pending.push((Dest::Server(to_server), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
    }

    /// Sends one client message to `coordinator` and drains the cascade.
    #[allow(clippy::wrong_self_convention)] // "from" = message provenance, not conversion
    fn from_client(&mut self, client: ClientId, coordinator: ServerId, msg: WrenMsg) {
        self.drain(vec![(Dest::Client(client), coordinator, msg)]);
    }

    /// Pops the unique response waiting for `client`.
    fn client_resp(&mut self, client: ClientId) -> WrenMsg {
        let pos = self
            .to_clients
            .iter()
            .position(|(c, _)| *c == client)
            .expect("no response for client");
        self.to_clients.remove(pos).1
    }

    /// Advances time and runs one replication tick on every server.
    fn tick_replication(&mut self, advance: u64) {
        self.now += advance;
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            self.servers[i].on_replication_tick(self.now, &mut out);
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    /// Advances time and runs one gossip tick on every server.
    fn tick_gossip(&mut self, advance: u64) {
        self.now += advance;
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            self.servers[i].on_gossip_tick(self.now, &mut out);
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    fn tick_gc(&mut self, advance: u64) {
        self.now += advance;
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            self.servers[i].on_gc_tick(self.now, &mut out);
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    /// Runs replication+gossip rounds until watermarks stabilize.
    fn stabilize(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.tick_replication(1_000);
            self.tick_gossip(1_000);
        }
    }
}

fn val(s: &str) -> Value {
    Bytes::copy_from_slice(s.as_bytes())
}

/// Runs a full client transaction: start, optional reads, writes, commit.
/// Returns (read results, commit timestamp).
fn run_tx(
    pump: &mut Pump,
    client: &mut WrenClient,
    reads: &[Key],
    writes: &[(Key, &str)],
) -> (Vec<(Key, Option<Value>)>, Timestamp) {
    let coord = client.coordinator();
    let id = client.id();
    pump.from_client(id, coord, client.start());
    client.on_start_resp(pump.client_resp(id));

    let mut results = Vec::new();
    if !reads.is_empty() {
        let outcome = client.read(reads);
        results.extend(outcome.local.clone());
        if let Some(req) = outcome.request {
            pump.from_client(id, coord, req);
            results.extend(client.on_read_resp(pump.client_resp(id)));
        }
    }
    if !writes.is_empty() {
        client.write(writes.iter().map(|(k, v)| (*k, val(v))));
    }
    pump.from_client(id, coord, client.commit());
    let ct = client.on_commit_resp(pump.client_resp(id));
    (results, ct)
}

fn value_of(results: &[(Key, Option<Value>)], key: Key) -> Option<Value> {
    results
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.clone())
        .expect("key missing from results")
}

/// Picks `n` keys that all live on distinct partitions (for `n_partitions`
/// partitions), so multi-partition paths are genuinely exercised.
fn keys_on_distinct_partitions(n_partitions: u16, n: usize) -> Vec<Key> {
    let mut keys = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut k = 0u64;
    while keys.len() < n {
        let key = Key(k);
        let p = key.partition(n_partitions);
        if seen.insert(p) {
            keys.push(key);
        }
        k += 1;
    }
    keys
}

#[test]
fn single_dc_write_then_read_after_stabilization() {
    let mut pump = Pump::new(1, 2);
    let coord = ServerId::new(0, 0);
    let mut alice = WrenClient::new(ClientId(1), coord);
    let mut bob = WrenClient::new(ClientId(2), coord);

    let keys = keys_on_distinct_partitions(2, 2);
    let (k0, k1) = (keys[0], keys[1]);

    let (_, ct) = run_tx(&mut pump, &mut alice, &[], &[(k0, "x0"), (k1, "y0")]);
    assert!(!ct.is_zero());

    // Before stabilization Bob's snapshot excludes the write.
    let (results, _) = run_tx(&mut pump, &mut bob, &[k0], &[]);
    assert_eq!(value_of(&results, k0), None, "not yet in the stable snapshot");

    pump.stabilize(3);

    let (results, _) = run_tx(&mut pump, &mut bob, &[k0, k1], &[]);
    assert_eq!(value_of(&results, k0), Some(val("x0")));
    assert_eq!(value_of(&results, k1), Some(val("y0")));
}

#[test]
fn client_reads_own_writes_before_stabilization() {
    let mut pump = Pump::new(1, 2);
    let coord = ServerId::new(0, 0);
    let mut alice = WrenClient::new(ClientId(1), coord);
    let keys = keys_on_distinct_partitions(2, 2);

    let (_, ct) = run_tx(&mut pump, &mut alice, &[], &[(keys[0], "mine")]);
    assert!(!ct.is_zero());

    // No stabilization ran: the stable snapshot cannot include the write,
    // yet Alice must see it (client-side cache).
    let (results, _) = run_tx(&mut pump, &mut alice, &[keys[0]], &[]);
    assert_eq!(value_of(&results, keys[0]), Some(val("mine")));
    assert!(alice.stats().hits_cache >= 1, "cache must serve the read");
}

#[test]
fn atomicity_all_or_nothing_across_partitions() {
    let mut pump = Pump::new(1, 4);
    let coord = ServerId::new(0, 0);
    let mut writer = WrenClient::new(ClientId(1), coord);
    let mut reader = WrenClient::new(ClientId(2), coord);
    let keys = keys_on_distinct_partitions(4, 4);

    let refs: Vec<(Key, &str)> = keys.iter().map(|k| (*k, "v1")).collect();
    run_tx(&mut pump, &mut writer, &[], &refs);

    // At any stabilization point, the reader sees all writes or none.
    for round in 0..4 {
        let (results, _) = run_tx(&mut pump, &mut reader, &keys, &[]);
        let seen: Vec<bool> = keys
            .iter()
            .map(|k| value_of(&results, *k).is_some())
            .collect();
        assert!(
            seen.iter().all(|s| *s) || seen.iter().all(|s| !*s),
            "atomicity violated at round {round}: {seen:?}"
        );
        pump.tick_replication(1_000);
        pump.tick_gossip(1_000);
    }
    let (results, _) = run_tx(&mut pump, &mut reader, &keys, &[]);
    for k in &keys {
        assert_eq!(value_of(&results, *k), Some(val("v1")));
    }
}

#[test]
fn geo_replication_delivers_remote_updates() {
    let mut pump = Pump::new(2, 2);
    let coord0 = ServerId::new(0, 0);
    let coord1 = ServerId::new(1, 0);
    let mut alice = WrenClient::new(ClientId(1), coord0); // DC 0
    let mut bob = WrenClient::new(ClientId(2), coord1); // DC 1
    let keys = keys_on_distinct_partitions(2, 2);

    run_tx(&mut pump, &mut alice, &[], &[(keys[0], "geo")]);
    pump.stabilize(4);

    let (results, _) = run_tx(&mut pump, &mut bob, &[keys[0]], &[]);
    assert_eq!(
        value_of(&results, keys[0]),
        Some(val("geo")),
        "update must replicate to the remote DC and become stable there"
    );
}

#[test]
fn remote_update_invisible_until_rst_covers_it() {
    let mut pump = Pump::new(2, 1);
    let mut alice = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let mut bob = WrenClient::new(ClientId(2), ServerId::new(1, 0));

    run_tx(&mut pump, &mut alice, &[], &[(Key(0), "remote")]);
    // Replication tick ships the batch, but DC1's RST has not advanced
    // (no gossip yet): the remote update must stay invisible.
    pump.tick_replication(1_000);
    let (results, _) = run_tx(&mut pump, &mut bob, &[Key(0)], &[]);
    assert_eq!(value_of(&results, Key(0)), None);

    pump.stabilize(3);
    let (results, _) = run_tx(&mut pump, &mut bob, &[Key(0)], &[]);
    assert_eq!(value_of(&results, Key(0)), Some(val("remote")));
}

#[test]
fn causality_across_clients_and_keys() {
    // The photo-album anomaly (§II-C): Alice writes x (permissions), then
    // y (photo). Any snapshot containing y must contain x.
    let mut pump = Pump::new(1, 2);
    let coord = ServerId::new(0, 0);
    let mut alice = WrenClient::new(ClientId(1), coord);
    let mut bob = WrenClient::new(ClientId(2), coord);
    let keys = keys_on_distinct_partitions(2, 2);
    let (x, y) = (keys[0], keys[1]);

    run_tx(&mut pump, &mut alice, &[], &[(x, "acl-private")]);
    pump.stabilize(2);
    run_tx(&mut pump, &mut alice, &[], &[(y, "photo")]);

    for _ in 0..5 {
        let (results, _) = run_tx(&mut pump, &mut bob, &[y, x], &[]);
        if value_of(&results, y).is_some() {
            assert_eq!(
                value_of(&results, x),
                Some(val("acl-private")),
                "snapshot contains y but not its causal dependency x"
            );
        }
        pump.tick_replication(500);
        pump.tick_gossip(500);
    }
}

#[test]
fn snapshots_are_monotonic_per_client() {
    let mut pump = Pump::new(1, 2);
    let coord = ServerId::new(0, 0);
    let mut c = WrenClient::new(ClientId(1), coord);
    let mut last_lst = Timestamp::ZERO;
    for i in 0..5 {
        let id = c.id();
        pump.from_client(id, coord, c.start());
        let resp = pump.client_resp(id);
        let WrenMsg::StartTxResp { lst, rst, .. } = resp.clone() else {
            panic!()
        };
        assert!(lst >= last_lst, "snapshot went backwards");
        assert!(rst < lst || lst.is_zero(), "remote snapshot must stay below local");
        last_lst = lst;
        c.on_start_resp(resp);
        c.write([(Key(i), val("v"))]);
        pump.from_client(id, coord, c.commit());
        c.on_commit_resp(pump.client_resp(id));
        pump.stabilize(1);
    }
}

#[test]
fn version_clock_never_retreats_below_pending_commit() {
    // The nonblocking-safety invariant: after the version clock reaches ub,
    // no transaction commits with ct ≤ ub.
    let mut pump = Pump::new(1, 2);
    let coord = ServerId::new(0, 0);
    let mut c = WrenClient::new(ClientId(1), coord);
    let keys = keys_on_distinct_partitions(2, 2);

    let mut max_clock_seen = Timestamp::ZERO;
    for i in 0..10 {
        let (_, ct) = run_tx(
            &mut pump,
            &mut c,
            &[],
            &[(keys[i % 2], "v")],
        );
        // ct must exceed every version clock observed before the commit.
        assert!(
            ct > max_clock_seen,
            "commit timestamp {ct:?} not above the installed snapshot {max_clock_seen:?}"
        );
        pump.tick_replication(300);
        for dc_p in [ServerId::new(0, 0), ServerId::new(0, 1)] {
            max_clock_seen = max_clock_seen.max(pump.server(dc_p).version_clock());
        }
    }
}

#[test]
fn stores_converge_across_dcs_after_quiescence() {
    let mut pump = Pump::new(3, 2);
    let mut clients: Vec<WrenClient> = (0..3)
        .map(|dc| WrenClient::new(ClientId(dc as u32), ServerId::new(dc, 0)))
        .collect();
    let keys = keys_on_distinct_partitions(2, 2);

    // Concurrent conflicting writes from every DC.
    for (i, c) in clients.iter_mut().enumerate() {
        let tag = format!("from-dc{i}");
        let coord = c.coordinator();
        let id = c.id();
        pump.from_client(id, coord, c.start());
        c.on_start_resp(pump.client_resp(id));
        c.write([(keys[0], val(&tag)), (keys[1], val(&tag))]);
        pump.from_client(id, coord, c.commit());
        c.on_commit_resp(pump.client_resp(id));
    }
    pump.stabilize(6);

    // All replicas of each partition hold the same newest version (LWW
    // convergence).
    for p in 0..2u16 {
        let mut newest: Option<(Timestamp, u8, u64)> = None;
        for dc in 0..3u8 {
            let server = pump.server(ServerId::new(dc, p));
            for key in &keys {
                if key.partition(2).0 != p {
                    continue;
                }
                let got = server
                    .store()
                    .newest(key)
                    .map(|v| wren_storage::Versioned::order_key(&v));
                match (&newest, got) {
                    (None, Some(k)) => newest = Some(k),
                    (Some(prev), Some(k)) => {
                        assert_eq!(*prev, k, "replicas diverge on partition {p}")
                    }
                    _ => {}
                }
            }
            newest = None; // compare per key, reset across keys
        }
    }
}

#[test]
fn gc_prunes_old_versions_but_preserves_reads() {
    let mut pump = Pump::new(1, 1);
    let coord = ServerId::new(0, 0);
    let mut c = WrenClient::new(ClientId(1), coord);

    for i in 0..10 {
        let v = format!("v{i}");
        let id = c.id();
        pump.from_client(id, coord, c.start());
        c.on_start_resp(pump.client_resp(id));
        c.write([(Key(0), val(&v))]);
        pump.from_client(id, coord, c.commit());
        c.on_commit_resp(pump.client_resp(id));
        pump.stabilize(1);
    }
    let before = pump.server(coord).store().stats().versions;
    assert!(before >= 10, "all versions retained before GC");

    pump.tick_gc(1_000);
    pump.tick_gc(1_000);
    let after = pump.server(coord).store().stats().versions;
    assert!(after < before, "GC must prune overwritten versions");

    // The freshest version is still readable.
    let (results, _) = run_tx(&mut pump, &mut c, &[Key(0)], &[]);
    assert_eq!(value_of(&results, Key(0)), Some(val("v9")));
}

#[test]
fn concurrent_conflicting_writes_resolve_by_lww() {
    let mut pump = Pump::new(2, 1);
    let mut a = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let mut b = WrenClient::new(ClientId(2), ServerId::new(1, 0));

    // Both write key 0 concurrently (neither sees the other).
    let (_, ct_a) = run_tx(&mut pump, &mut a, &[], &[(Key(0), "from-a")]);
    let (_, ct_b) = run_tx(&mut pump, &mut b, &[], &[(Key(0), "from-b")]);
    pump.stabilize(5);

    let winner = if (ct_a, 0u8) > (ct_b, 1u8) { "from-a" } else { "from-b" };
    let mut fresh = WrenClient::new(ClientId(3), ServerId::new(0, 0));
    let (results, _) = run_tx(&mut pump, &mut fresh, &[Key(0)], &[]);
    assert_eq!(value_of(&results, Key(0)), Some(val(winner)));

    let mut fresh_b = WrenClient::new(ClientId(4), ServerId::new(1, 0));
    let (results, _) = run_tx(&mut pump, &mut fresh_b, &[Key(0)], &[]);
    assert_eq!(
        value_of(&results, Key(0)),
        Some(val(winner)),
        "both DCs must converge on the same LWW winner"
    );
}
