//! Focused unit tests of `WrenServer`'s internal rules: snapshot
//! assignment, prepared/committed bookkeeping, the version-clock safety
//! invariant and heartbeat emission.

use bytes::Bytes;
use wren_clock::{SkewedClock, Timestamp};
use wren_core::{WrenConfig, WrenServer};
use wren_protocol::{ClientId, Dest, Key, ServerId, TxId, WrenMsg};

fn server(m: u8, n: u16) -> WrenServer {
    WrenServer::new(ServerId::new(0, 0), WrenConfig::new(m, n), SkewedClock::perfect())
}

fn start_tx(s: &mut WrenServer, now: u64) -> (TxId, Timestamp, Timestamp) {
    let mut out = Vec::new();
    s.handle(
        Dest::Client(ClientId(1)),
        WrenMsg::StartTxReq {
            lst: Timestamp::ZERO,
            rst: Timestamp::ZERO,
        },
        now,
        &mut out,
    );
    let WrenMsg::StartTxResp { tx, lst, rst } = out.pop().unwrap().msg else {
        panic!("expected StartTxResp");
    };
    (tx, lst, rst)
}

#[test]
fn snapshot_remote_component_stays_below_local() {
    let mut s = server(3, 1);
    // Raise rst above lst via remote heartbeats.
    let mut out = Vec::new();
    for dc in 1..3u8 {
        s.handle(
            Dest::Server(ServerId::new(dc, 0)),
            WrenMsg::Heartbeat {
                t: Timestamp::from_micros(1_000_000),
            },
            0,
            &mut out,
        );
    }
    // Tick so the local version clock and then the gossip state advance a
    // little (far below the remote heartbeats).
    s.on_replication_tick(10, &mut out);
    s.on_gossip_tick(11, &mut out);
    let (_, lst, rst) = start_tx(&mut s, 12);
    assert!(
        rst < lst || lst.is_zero(),
        "remote snapshot must be strictly below local: rst={rst:?} lst={lst:?}"
    );
}

#[test]
fn start_raises_server_watermarks_to_clients() {
    let mut s = server(1, 1);
    let mut out = Vec::new();
    s.handle(
        Dest::Client(ClientId(1)),
        WrenMsg::StartTxReq {
            lst: Timestamp::from_micros(500),
            rst: Timestamp::from_micros(200),
        },
        0,
        &mut out,
    );
    assert!(s.lst() >= Timestamp::from_micros(500));
    assert!(s.rst() >= Timestamp::from_micros(200));
}

#[test]
fn prepare_then_commit_moves_between_lists() {
    let mut s = server(1, 1);
    let (tx, lt, rt) = start_tx(&mut s, 0);
    let mut out = Vec::new();
    s.handle(
        Dest::Server(ServerId::new(0, 0)),
        WrenMsg::PrepareReq {
            tx,
            lt,
            rt,
            ht: Timestamp::ZERO,
            writes: vec![(Key(1), Bytes::from_static(b"v"))],
        },
        10,
        &mut out,
    );
    assert_eq!(s.prepared_len(), 1);
    assert_eq!(s.committed_len(), 0);
    let WrenMsg::PrepareResp { pt, .. } = out.pop().unwrap().msg else {
        panic!("expected PrepareResp");
    };

    s.handle(
        Dest::Server(ServerId::new(0, 0)),
        WrenMsg::Commit { tx, ct: pt },
        20,
        &mut out,
    );
    assert_eq!(s.prepared_len(), 0);
    assert_eq!(s.committed_len(), 1);

    // Apply tick installs it and advances the version clock past ct.
    let applied = s.on_replication_tick(30, &mut out);
    assert_eq!(applied, 1);
    assert_eq!(s.committed_len(), 0);
    assert!(s.version_clock() >= pt);
}

#[test]
fn version_clock_is_capped_by_pending_prepares() {
    let mut s = server(1, 1);
    let (tx, lt, rt) = start_tx(&mut s, 0);
    let mut out = Vec::new();
    s.handle(
        Dest::Server(ServerId::new(0, 0)),
        WrenMsg::PrepareReq {
            tx,
            lt,
            rt,
            ht: Timestamp::ZERO,
            writes: vec![(Key(1), Bytes::from_static(b"v"))],
        },
        10,
        &mut out,
    );
    let WrenMsg::PrepareResp { pt, .. } = out.pop().unwrap().msg else {
        panic!()
    };
    // Even much later, the version clock must not pass the pending
    // proposal (no hole may open under a possible future commit).
    s.on_replication_tick(1_000_000, &mut out);
    assert!(
        s.version_clock() < pt,
        "version clock {:?} overtook pending proposal {:?}",
        s.version_clock(),
        pt
    );
}

#[test]
fn proposals_always_exceed_installed_snapshot() {
    // The nonblocking-safety invariant at the unit level: interleave
    // ticks (which advance the version clock) with prepares; every
    // proposal must be strictly above the version clock at proposal time.
    let mut s = server(1, 1);
    let mut out = Vec::new();
    for round in 0..50u64 {
        let now = round * 137;
        s.on_replication_tick(now, &mut out);
        let vc = s.version_clock();
        let (tx, lt, rt) = start_tx(&mut s, now + 1);
        s.handle(
            Dest::Server(ServerId::new(0, 0)),
            WrenMsg::PrepareReq {
                tx,
                lt,
                rt,
                ht: Timestamp::ZERO,
                writes: vec![(Key(round), Bytes::from_static(b"v"))],
            },
            now + 2,
            &mut out,
        );
        let pt = out
            .iter()
            .rev()
            .find_map(|o| match &o.msg {
                WrenMsg::PrepareResp { pt, .. } => Some(*pt),
                _ => None,
            })
            .unwrap();
        assert!(pt > vc, "proposal {pt:?} not above version clock {vc:?}");
        s.handle(
            Dest::Server(ServerId::new(0, 0)),
            WrenMsg::Commit { tx, ct: pt },
            now + 3,
            &mut out,
        );
        out.clear();
    }
}

#[test]
fn idle_tick_sends_heartbeats_to_every_sibling() {
    let mut s = server(4, 1);
    let mut out = Vec::new();
    s.on_replication_tick(1_000, &mut out);
    let heartbeats: Vec<_> = out
        .iter()
        .filter_map(|o| match (&o.to, &o.msg) {
            (_, WrenMsg::Heartbeat { t }) => Some((o.to, *t)),
            _ => None,
        })
        .collect();
    assert_eq!(heartbeats.len(), 3, "one heartbeat per remote sibling");
    assert_eq!(s.stats().heartbeats_sent, 3);
}

#[test]
fn replicate_applies_versions_and_raises_vv() {
    let mut s = server(2, 1);
    let mut out = Vec::new();
    let batch = wren_protocol::ReplicateBatch {
        ct: Timestamp::from_micros(100),
        txs: vec![wren_protocol::RepTx {
            tx: TxId::new(ServerId::new(1, 0), 1),
            rst: Timestamp::from_micros(40),
            writes: vec![(Key(7), Bytes::from_static(b"remote"))],
        }],
    };
    s.handle(
        Dest::Server(ServerId::new(1, 0)),
        WrenMsg::Replicate { batch },
        0,
        &mut out,
    );
    assert_eq!(s.stats().remote_versions_applied, 1);
    let stored = s.store().newest(&Key(7)).unwrap();
    assert_eq!(stored.ut, Timestamp::from_micros(100));
    assert_eq!(stored.rdt, Timestamp::from_micros(40));
    assert_eq!(stored.sr, wren_protocol::DcId(1));
}

#[test]
fn read_only_commit_clears_context_without_2pc() {
    let mut s = server(1, 1);
    let (tx, _, _) = start_tx(&mut s, 0);
    let mut out = Vec::new();
    s.handle(
        Dest::Client(ClientId(1)),
        WrenMsg::CommitReq {
            tx,
            hwt: Timestamp::ZERO,
            writes: vec![],
        },
        10,
        &mut out,
    );
    assert_eq!(out.len(), 1, "only the client response, no 2PC traffic");
    let WrenMsg::CommitResp { ct, .. } = &out[0].msg else {
        panic!()
    };
    assert!(ct.is_zero());
    assert_eq!(s.prepared_len(), 0);
    assert_eq!(s.stats().txs_coordinated, 0);
}
