//! **Wren**: the paper's primary contribution, as sans-io state machines.
//!
//! Wren (Spirovska, Didona, Zwaenepoel — DSN 2018) is the first
//! Transactional Causal Consistency system that combines **nonblocking
//! reads** with **sharding**. This crate implements its three protocols
//! exactly as specified in Algorithms 1–4 of the paper:
//!
//! * **CANToR** (Client-Assisted Nonblocking Transactional Reads) — a
//!   transaction's snapshot is the union of a *local stable snapshot*
//!   (installed by every partition of the DC, so reads never wait) and a
//!   *client-side cache* holding the client's own not-yet-stable writes
//!   ([`WrenClient`]).
//! * **BDT** (Binary Dependency Time) — every item carries exactly two
//!   scalar timestamps: `ut` (local dependencies) and `rdt` (remote
//!   dependencies), regardless of the number of DCs or partitions
//!   ([`wren_protocol::WrenVersion`]).
//! * **BiST** (Binary Stable Time) — partitions gossip two scalars and
//!   derive the LST/RST watermarks that define snapshots
//!   ([`WrenServer::on_gossip_tick`]).
//!
//! The state machines perform no I/O and read no clocks: drivers (the
//! deterministic simulator in `wren-harness`, the threaded runtime in
//! `wren-rt`) deliver messages and ticks, which makes every protocol
//! behaviour unit-testable and every experiment reproducible.
//!
//! # Example: one client, one server, in-process
//!
//! ```
//! use wren_core::{WrenClient, WrenConfig, WrenServer};
//! use wren_clock::SkewedClock;
//! use wren_protocol::{ClientId, Dest, Key, Outgoing, ServerId};
//! use bytes::Bytes;
//!
//! let cfg = WrenConfig::new(1, 1);
//! let sid = ServerId::new(0, 0);
//! let mut server = WrenServer::new(sid, cfg, SkewedClock::perfect());
//! let mut client = WrenClient::new(ClientId(0), sid);
//! let mut out = Vec::new();
//!
//! // START
//! let msg = client.start();
//! server.handle(Dest::Client(client.id()), msg, 0, &mut out);
//! client.on_start_resp(out.pop().unwrap().msg);
//!
//! // WRITE + COMMIT
//! client.write([(Key(1), Bytes::from_static(b"hello"))]);
//! let msg = client.commit();
//! server.handle(Dest::Client(client.id()), msg, 10, &mut out);
//! let ct = client.on_commit_resp(out.pop().unwrap().msg);
//! assert!(!ct.is_zero());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod config;
pub mod durability;
pub mod metrics;
mod server;
mod visibility;

pub use client::{ClientStats, ReadOutcome, WrenClient};
pub use config::WrenConfig;
pub use durability::{DurableBoot, DurableLog, WalOp};
pub use metrics::{ServerMetrics, ServerTrace, TxEvent};
pub use wren_storage::FsyncPolicy;
pub use server::{ServerStats, SliceReader, WrenServer};
pub use visibility::VisibilitySampler;
